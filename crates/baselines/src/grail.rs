//! GRAIL (Paparrizos & Franklin, VLDB 2019) — the state-of-the-art *non-deep-learning*
//! representation-learning baseline used in §6.4 (Fig. 5).
//!
//! GRAIL selects landmark series, builds a kernel matrix between every series and the
//! landmarks, and uses the kernel representation for downstream tasks with classical
//! classifiers. This reproduction keeps that structure:
//!
//! * landmarks are chosen with k-means over z-normalised series (our stand-in for GRAIL's
//!   k-shape-style landmark selection);
//! * the kernel is a shift-invariant normalised cross-correlation (a SINK-style
//!   similarity), evaluated over a small set of circular shifts;
//! * classification is 1-nearest-neighbour in the representation space.
//!
//! GRAIL only supports univariate series, exactly as the paper notes.

use rand::Rng;
use rita_core::group::kmeans_matmul;
use rita_core::tasks::timed;
use rita_data::TimeseriesDataset;
use rita_tensor::NdArray;

/// Configuration of the GRAIL baseline.
#[derive(Debug, Clone, Copy)]
pub struct GrailConfig {
    /// Number of landmark series.
    pub landmarks: usize,
    /// Number of circular shifts evaluated on each side when computing the
    /// shift-invariant similarity (0 = plain correlation).
    pub shifts: usize,
    /// Stride between evaluated shifts.
    pub shift_step: usize,
    /// RBF width applied on top of the correlation distance.
    pub gamma: f32,
}

impl Default for GrailConfig {
    fn default() -> Self {
        Self { landmarks: 16, shifts: 4, shift_step: 4, gamma: 1.0 }
    }
}

/// A fitted GRAIL model: landmarks plus the training-set representations and labels.
pub struct Grail {
    /// Configuration.
    pub config: GrailConfig,
    /// Landmark series, shape `(k, length)`.
    pub landmarks: NdArray,
    train_features: Vec<Vec<f32>>,
    train_labels: Vec<usize>,
    /// Wall-clock seconds spent fitting (landmark selection + training representations).
    pub fit_seconds: f64,
}

/// z-normalises a 1-D slice (zero mean, unit variance).
fn z_normalise(x: &[f32]) -> Vec<f32> {
    let n = x.len().max(1) as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    x.iter().map(|v| (v - mean) / std).collect()
}

/// Shift-invariant normalised correlation between two z-normalised series: the maximum
/// dot product over the evaluated circular shifts, divided by the length.
fn sink_similarity(a: &[f32], b: &[f32], shifts: usize, step: usize) -> f32 {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let mut best = f32::NEG_INFINITY;
    let mut evaluate = |offset: i64| {
        let mut dot = 0.0f32;
        #[allow(clippy::needless_range_loop)] // wrap-around index math needs both i and j
        for i in 0..n {
            let j = (i as i64 + offset).rem_euclid(n as i64) as usize;
            dot += a[i] * b[j];
        }
        best = best.max(dot / n as f32);
    };
    evaluate(0);
    for s in 1..=shifts {
        let offset = (s * step) as i64;
        evaluate(offset);
        evaluate(-offset);
    }
    best
}

impl Grail {
    /// Fits the model on a labelled univariate dataset.
    pub fn fit(config: GrailConfig, data: &TimeseriesDataset, _rng: &mut impl Rng) -> Self {
        assert_eq!(data.channels(), 1, "GRAIL only supports univariate timeseries");
        let labels = data.labels.clone().expect("GRAIL classification needs labels");
        assert!(!data.is_empty(), "empty training set");
        let length = data.length();

        let ((landmarks, train_features), fit_seconds) = timed(|| {
            // z-normalised series matrix (n, length)
            let mut flat = Vec::with_capacity(data.len() * length);
            for s in &data.samples {
                flat.extend(z_normalise(&s.as_slice()[..length]));
            }
            let matrix = NdArray::from_vec(flat, &[data.len(), length]).expect("series matrix");
            // Landmark selection: k-means centroids over the series themselves.
            let k = config.landmarks.min(data.len());
            let grouping = kmeans_matmul(&matrix, k, 5);
            let landmarks = grouping.centers;
            // Training representations.
            let features: Vec<Vec<f32>> = (0..data.len())
                .map(|i| {
                    represent_row(
                        &matrix.as_slice()[i * length..(i + 1) * length],
                        &landmarks,
                        &config,
                    )
                })
                .collect();
            (landmarks, features)
        });

        Self { config, landmarks, train_features, train_labels: labels, fit_seconds }
    }

    /// The kernel representation of one raw univariate series.
    pub fn represent(&self, series: &NdArray) -> Vec<f32> {
        let length = self.landmarks.shape()[1];
        let raw = &series.as_slice()[..length.min(series.len())];
        let z = z_normalise(raw);
        represent_row(&z, &self.landmarks, &self.config)
    }

    /// 1-NN classification of one series.
    pub fn classify(&self, series: &NdArray) -> usize {
        let feat = self.represent(series);
        let mut best = 0usize;
        let mut best_dist = f32::INFINITY;
        for (i, train_feat) in self.train_features.iter().enumerate() {
            let dist: f32 = feat.iter().zip(train_feat).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        self.train_labels[best]
    }

    /// Accuracy on a labelled univariate dataset.
    pub fn evaluate(&self, data: &TimeseriesDataset) -> f32 {
        let labels = data.labels.as_ref().expect("evaluation needs labels");
        if labels.is_empty() {
            return 0.0;
        }
        let correct =
            data.samples.iter().zip(labels).filter(|(s, &l)| self.classify(s) == l).count();
        correct as f32 / labels.len() as f32
    }

    /// Number of landmarks actually selected.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.shape()[0]
    }
}

fn represent_row(z: &[f32], landmarks: &NdArray, config: &GrailConfig) -> Vec<f32> {
    let k = landmarks.shape()[0];
    let length = landmarks.shape()[1];
    let ld = landmarks.as_slice();
    (0..k)
        .map(|i| {
            let corr = sink_similarity(
                z,
                &ld[i * length..(i + 1) * length],
                config.shifts,
                config.shift_step,
            );
            // RBF on the correlation distance keeps features in (0, 1].
            (-config.gamma * (1.0 - corr).max(0.0)).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn univariate_data(n: usize, seed: u64) -> TimeseriesDataset {
        let multi =
            TimeseriesDataset::generate_reduced(DatasetKind::Rwhar, n, 0, 80, &mut rng(seed));
        multi.to_univariate(0)
    }

    #[test]
    fn z_normalisation_properties() {
        let z = z_normalise(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f32 = z.iter().sum::<f32>() / 4.0;
        let var: f32 = z.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sink_similarity_detects_shifted_copies() {
        let n = 64;
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut b = a.clone();
        b.rotate_left(4);
        let a = z_normalise(&a);
        let b = z_normalise(&b);
        let with_shifts = sink_similarity(&a, &b, 4, 2);
        let without = sink_similarity(&a, &b, 0, 1);
        assert!(with_shifts > without, "{with_shifts} vs {without}");
        assert!(with_shifts > 0.95);
        // self-similarity is 1
        assert!((sink_similarity(&a, &a, 0, 1) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fit_and_classify_beats_chance_on_easy_classes() {
        let mut r = rng(1);
        let data = univariate_data(48, 2);
        let grail = Grail::fit(GrailConfig { landmarks: 8, ..Default::default() }, &data, &mut r);
        assert_eq!(grail.num_landmarks(), 8);
        assert!(grail.fit_seconds > 0.0);
        let acc = grail.evaluate(&data);
        // 8 classes → chance = 0.125; nearest-neighbour on the training set should beat it.
        assert!(acc > 0.3, "accuracy {acc}");
    }

    #[test]
    fn representation_dimension_equals_landmarks() {
        let mut r = rng(3);
        let data = univariate_data(20, 4);
        let grail = Grail::fit(GrailConfig { landmarks: 6, ..Default::default() }, &data, &mut r);
        let feat = grail.represent(&data.samples[0]);
        assert_eq!(feat.len(), 6);
        assert!(feat.iter().all(|&f| (0.0..=1.0 + 1e-6).contains(&f)));
    }

    #[test]
    #[should_panic(expected = "univariate")]
    fn rejects_multivariate_input() {
        let mut r = rng(5);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Wisdm, 10, 0, 40, &mut r);
        let _ = Grail::fit(GrailConfig::default(), &data, &mut r);
    }
}
