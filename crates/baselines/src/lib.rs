//! # rita-baselines
//!
//! The two external baselines of the RITA evaluation, reimplemented on the same substrate
//! so comparisons isolate the *algorithmic* differences:
//!
//! * [`tst`] — TST (Zerveas et al., KDD 2021), the state-of-the-art Transformer framework
//!   for timeseries representation learning: per-timestamp tokens, batch normalisation,
//!   and a concatenated-output classifier (§6.2 of the RITA paper discusses why these
//!   choices hurt on long series).
//! * [`grail`] — GRAIL (Paparrizos & Franklin, VLDB 2019), the state-of-the-art
//!   non-deep-learning representation learner: landmark selection + shift-invariant
//!   kernel features + a classical classifier (Fig. 5 of the paper).
//!
//! The other comparison points of the paper — Vanilla self-attention, Performer and
//! Linformer inside the RITA architecture — live in `rita-core::attention`, because the
//! paper builds them by swapping RITA's attention module.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grail;
pub mod tst;

pub use grail::{Grail, GrailConfig};
pub use tst::{TstClassifier, TstConfig, TstImputer, TstModel};
