//! TST (Zerveas et al., KDD 2021) — the state-of-the-art Transformer baseline the RITA
//! paper compares against.
//!
//! TST differs from RITA in exactly the ways §6.2.1 calls out:
//!
//! 1. every *timestamp* (not window) is a token, embedded with a per-timestep linear map,
//!    so the sequence length equals the raw series length;
//! 2. **batch normalisation** replaces layer normalisation, which becomes biased when
//!    long series force tiny batches;
//! 3. classification flattens (concatenates) the output of every timestamp into one huge
//!    vector before a linear classifier, which overfits on long series.
//!
//! All three are reproduced faithfully so the failure modes the paper reports can be
//! observed in the benchmark harness.

use rand::Rng;
use rita_core::attention::{merge_heads, split_heads, Attention, VanillaAttention};
use rita_data::batch::{batch_indices, make_batch, make_masked_batch};
use rita_data::TimeseriesDataset;
use rita_nn::layers::{BatchNorm1d, Dropout, FeedForward, Linear};
use rita_nn::loss::{accuracy, cross_entropy_logits, masked_mse};
use rita_nn::optim::{clip_grad_norm, AdamW, Optimizer};
use rita_nn::{no_grad, BufferVisitor, BufferVisitorMut, Module, ParamVisitor, Var};
use rita_tensor::NdArray;

use rita_core::tasks::{timed, EpochMetrics, TrainConfig, TrainReport};

/// Hyper-parameters of the TST baseline.
#[derive(Debug, Clone, Copy)]
pub struct TstConfig {
    /// Number of input channels.
    pub channels: usize,
    /// Maximum raw series length (every timestamp is a token).
    pub max_len: usize,
    /// Hidden dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Encoder layers.
    pub n_layers: usize,
    /// Feed-forward hidden size.
    pub ff_hidden: usize,
    /// Dropout probability.
    pub dropout: f32,
}

impl TstConfig {
    /// A small configuration for CPU-scale runs.
    pub fn tiny(channels: usize, max_len: usize) -> Self {
        Self {
            channels,
            max_len,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            ff_hidden: 32,
            dropout: 0.0,
        }
    }
}

/// One TST encoder layer: vanilla attention + feed-forward with batch norm.
struct TstLayer {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    attention: VanillaAttention,
    bn1: BatchNorm1d,
    bn2: BatchNorm1d,
    ff: FeedForward,
    dropout: Dropout,
    heads: usize,
}

impl TstLayer {
    fn new(cfg: &TstConfig, rng: &mut impl Rng) -> Self {
        let d = cfg.d_model;
        Self {
            q: Linear::new(d, d, rng),
            k: Linear::new(d, d, rng),
            v: Linear::new(d, d, rng),
            out: Linear::new(d, d, rng),
            attention: VanillaAttention::new(),
            bn1: BatchNorm1d::new(d),
            bn2: BatchNorm1d::new(d),
            ff: FeedForward::new(d, cfg.ff_hidden, cfg.dropout, rng),
            dropout: Dropout::new(cfg.dropout),
            heads: cfg.n_heads,
        }
    }

    fn forward(&mut self, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        let q = split_heads(&self.q.forward(x), self.heads);
        let k = split_heads(&self.k.forward(x), self.heads);
        let v = split_heads(&self.v.forward(x), self.heads);
        let attended = merge_heads(&self.attention.forward(&q, &k, &v));
        let attended = self.dropout.forward(&self.out.forward(&attended), training, rng);
        let x = self.bn1.forward(&x.add(&attended), training);
        let ff_out = self.dropout.forward(&self.ff.forward(&x, training, rng), training, rng);
        self.bn2.forward(&x.add(&ff_out), training)
    }

    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        for (name, lin) in [("q", &self.q), ("k", &self.k), ("v", &self.v), ("out", &self.out)] {
            v.scope(name, |v| lin.visit_params(v));
        }
        v.scope("bn1", |v| self.bn1.visit_params(v));
        v.scope("bn2", |v| self.bn2.visit_params(v));
        v.scope("ff", |v| self.ff.visit_params(v));
    }

    // Batch-norm running statistics are the buffers that make an evaluated TST model
    // reproducible; forward them so the generic checkpoint recipe sees them.
    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("bn1", |v| self.bn1.visit_buffers(v));
        v.scope("bn2", |v| self.bn2.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("bn1", |v| self.bn1.visit_buffers_mut(v));
        v.scope("bn2", |v| self.bn2.visit_buffers_mut(v));
    }
}

/// The TST backbone: per-timestep embedding + encoder stack.
pub struct TstModel {
    /// Configuration.
    pub config: TstConfig,
    embed: Linear,
    positional: NdArray,
    layers: Vec<TstLayer>,
}

impl TstModel {
    /// Builds the backbone.
    pub fn new(config: TstConfig, rng: &mut impl Rng) -> Self {
        let embed = Linear::new(config.channels, config.d_model, rng);
        let positional = sinusoidal(config.max_len, config.d_model);
        let layers = (0..config.n_layers).map(|_| TstLayer::new(&config, rng)).collect();
        Self { config, embed, positional, layers }
    }

    /// Encodes `(batch, channels, length)` into `(batch, length, d_model)`.
    pub fn encode(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let shape = x.shape();
        assert_eq!(shape[1], self.config.channels, "channel mismatch");
        let len = shape[2];
        assert!(len <= self.config.max_len, "series longer than max_len");
        // (B, C, L) -> (B, L, C) -> linear -> (B, L, d)
        let tokens = Var::constant(x.clone()).permute(&[0, 2, 1]);
        let embedded = self.embed.forward(&tokens);
        let pos = self.positional.slice_axis(0, 0, len).expect("positional slice");
        let mut h = embedded.add(&Var::constant(pos));
        for layer in &mut self.layers {
            h = layer.forward(&h, training, rng);
        }
        h
    }
}

impl Module for TstModel {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("embed", |v| self.embed.visit_params(v));
        for (i, l) in self.layers.iter().enumerate() {
            v.scope_indexed("layers", i, |v| l.visit_params(v));
        }
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        for (i, l) in self.layers.iter().enumerate() {
            v.scope_indexed("layers", i, |v| l.visit_buffers(v));
        }
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            v.scope_indexed("layers", i, |v| l.visit_buffers_mut(v));
        }
    }
}

fn sinusoidal(len: usize, d: usize) -> NdArray {
    let mut data = vec![0.0f32; len * d];
    for pos in 0..len {
        for i in 0..d {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
            data[pos * d + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    NdArray::from_vec(data, &[len, d]).expect("positional table")
}

/// TST with its concatenated-output linear classifier.
pub struct TstClassifier {
    /// Backbone.
    pub model: TstModel,
    /// The (large) classification head over the flattened outputs.
    pub head: Linear,
    series_len: usize,
    num_classes: usize,
}

impl TstClassifier {
    /// Builds a classifier for series of exactly `series_len` timestamps.
    pub fn new(
        config: TstConfig,
        series_len: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(series_len <= config.max_len);
        let model = TstModel::new(config, rng);
        // The overfitting-prone part: one weight per (timestamp × feature × class).
        let head = Linear::new(series_len * config.d_model, num_classes, rng);
        Self { model, head, series_len, num_classes }
    }

    /// Class logits.
    pub fn logits(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let h = self.model.encode(x, training, rng); // (B, L, d)
        let shape = h.shape();
        assert_eq!(shape[1], self.series_len, "series length changed between batches");
        let flat = h.reshape(&[shape[0], shape[1] * shape[2]]);
        self.head.forward(&flat)
    }

    /// One training epoch.
    pub fn train_epoch(
        &mut self,
        data: &TimeseriesDataset,
        opt: &mut AdamW,
        cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> EpochMetrics {
        let (loss, seconds) = timed(|| {
            let mut sum = 0.0;
            let mut batches = 0;
            for idx in batch_indices(data.len(), cfg.batch_size, true, rng) {
                let batch = make_batch(data, &idx);
                opt.zero_grad();
                let loss =
                    cross_entropy_logits(&self.logits(&batch.inputs, true, rng), &batch.labels);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&opt.parameters(), cfg.grad_clip);
                }
                opt.step();
                sum += loss.item();
                batches += 1;
            }
            sum / batches.max(1) as f32
        });
        EpochMetrics { loss, seconds }
    }

    /// Full training run.
    pub fn train(
        &mut self,
        data: &TimeseriesDataset,
        cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> TrainReport {
        let mut opt = AdamW::new(self.parameters(), cfg.lr, cfg.weight_decay);
        let mut report = TrainReport::default();
        for _ in 0..cfg.epochs {
            report.push(self.train_epoch(data, &mut opt, cfg, rng));
        }
        report
    }

    /// Accuracy on a labelled dataset.
    pub fn evaluate(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> f32 {
        let mut weighted = 0.0;
        for idx in batch_indices(data.len(), batch_size, false, rng) {
            let batch = make_batch(data, &idx);
            let logits = no_grad(|| self.logits(&batch.inputs, false, rng).to_array());
            weighted += accuracy(&logits, &batch.labels) * idx.len() as f32;
        }
        weighted / data.len().max(1) as f32
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl Module for TstClassifier {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("model", |v| self.model.visit_params(v));
        v.scope("head", |v| self.head.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("model", |v| self.model.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("model", |v| self.model.visit_buffers_mut(v));
    }
}

/// TST with a per-timestep linear reconstruction head (imputation).
pub struct TstImputer {
    /// Backbone.
    pub model: TstModel,
    /// Per-timestep decoder back to the input channels.
    pub decoder: Linear,
}

impl TstImputer {
    /// Builds the imputer.
    pub fn new(config: TstConfig, rng: &mut impl Rng) -> Self {
        let decoder = Linear::new(config.d_model, config.channels, rng);
        Self { model: TstModel::new(config, rng), decoder }
    }

    /// Reconstructs `(batch, channels, length)`.
    pub fn reconstruct(&mut self, observed: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let h = self.model.encode(observed, training, rng); // (B, L, d)
        self.decoder.forward(&h).permute(&[0, 2, 1]) // (B, C, L)
    }

    /// One masked-reconstruction training epoch.
    pub fn train_epoch(
        &mut self,
        data: &TimeseriesDataset,
        opt: &mut AdamW,
        cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> EpochMetrics {
        let (loss, seconds) = timed(|| {
            let mut sum = 0.0;
            let mut batches = 0;
            for idx in batch_indices(data.len(), cfg.batch_size, true, rng) {
                let batch = make_masked_batch(data, &idx, cfg.mask_rate, rng);
                opt.zero_grad();
                let recon = self.reconstruct(&batch.observed, true, rng);
                let loss = masked_mse(&recon, &batch.targets, &batch.mask);
                loss.backward();
                if cfg.grad_clip > 0.0 {
                    clip_grad_norm(&opt.parameters(), cfg.grad_clip);
                }
                opt.step();
                sum += loss.item();
                batches += 1;
            }
            sum / batches.max(1) as f32
        });
        EpochMetrics { loss, seconds }
    }

    /// Full training run.
    pub fn train(
        &mut self,
        data: &TimeseriesDataset,
        cfg: &TrainConfig,
        rng: &mut impl Rng,
    ) -> TrainReport {
        let mut opt = AdamW::new(self.parameters(), cfg.lr, cfg.weight_decay);
        let mut report = TrainReport::default();
        for _ in 0..cfg.epochs {
            report.push(self.train_epoch(data, &mut opt, cfg, rng));
        }
        report
    }

    /// Masked MSE on held-out data.
    pub fn evaluate(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        mask_rate: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        let mut weighted = 0.0;
        for idx in batch_indices(data.len(), batch_size, false, rng) {
            let batch = make_masked_batch(data, &idx, mask_rate, rng);
            let mse = no_grad(|| {
                let recon = self.reconstruct(&batch.observed, false, rng);
                masked_mse(&recon, &batch.targets, &batch.mask).item()
            });
            weighted += mse * idx.len() as f32;
        }
        weighted / data.len().max(1) as f32
    }
}

impl Module for TstImputer {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("model", |v| self.model.visit_params(v));
        v.scope("decoder", |v| self.decoder.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("model", |v| self.model.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("model", |v| self.model.visit_buffers_mut(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    /// The batch-norm running statistics must be visible to the generic checkpoint
    /// recipe (`named_buffers`), or a serialized TST model would silently evaluate
    /// with freshly-initialized statistics after a restore.
    #[test]
    fn batch_norm_running_stats_are_named_buffers() {
        let mut rng = SeedableRng64::seed_from_u64(0);
        let clf = TstClassifier::new(TstConfig::tiny(3, 20), 20, 2, &mut rng);
        let buffers = clf.named_buffers();
        // 2 layers x 2 batch norms x 2 running stats.
        assert_eq!(buffers.len(), 8, "{buffers:?}");
        assert!(
            buffers.iter().any(|(p, _)| p.as_str() == "model.layers.0.bn1.running_mean"),
            "{buffers:?}"
        );
        assert!(buffers.iter().all(|(p, _)| p.as_str().contains("running_")));
    }

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn tiny_data(n: usize, len: usize, seed: u64) -> TimeseriesDataset {
        TimeseriesDataset::generate_reduced(DatasetKind::Hhar, n, 0, len, &mut rng(seed))
    }

    #[test]
    fn encode_shape_is_per_timestep() {
        let mut r = rng(0);
        let mut m = TstModel::new(TstConfig::tiny(3, 40), &mut r);
        let x = NdArray::randn(&[2, 3, 40], 1.0, &mut r);
        assert_eq!(m.encode(&x, false, &mut r).shape(), vec![2, 40, 16]);
    }

    #[test]
    fn classifier_head_is_much_larger_than_rita_style_head() {
        let mut r = rng(1);
        let clf = TstClassifier::new(TstConfig::tiny(3, 40), 40, 5, &mut r);
        // 40 timestamps × 16 features × 5 classes ≫ 16 × 5
        assert!(clf.head.num_parameters() > 16 * 5 * 10);
        assert_eq!(clf.num_classes(), 5);
    }

    #[test]
    fn classifier_trains_and_loss_decreases() {
        let mut r = rng(2);
        let data = tiny_data(12, 30, 3);
        let mut clf = TstClassifier::new(TstConfig::tiny(3, 30), 30, 5, &mut r);
        let cfg = TrainConfig { epochs: 3, batch_size: 6, lr: 3e-3, ..Default::default() };
        let report = clf.train(&data, &cfg, &mut r);
        assert!(report.final_loss() <= report.epochs[0].loss * 1.05);
        let acc = clf.evaluate(&data, 6, &mut r);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn imputer_reconstruction_shape_and_training() {
        let mut r = rng(4);
        let data = tiny_data(8, 30, 5);
        let mut imp = TstImputer::new(TstConfig::tiny(3, 30), &mut r);
        let x = NdArray::randn(&[2, 3, 30], 1.0, &mut r);
        assert_eq!(imp.reconstruct(&x, false, &mut r).shape(), vec![2, 3, 30]);
        let cfg = TrainConfig { epochs: 2, batch_size: 4, lr: 3e-3, ..Default::default() };
        let report = imp.train(&data, &cfg, &mut r);
        assert!(report.final_loss().is_finite());
        assert!(imp.evaluate(&data, 4, 0.2, &mut r) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "longer than max_len")]
    fn encode_rejects_overlong_series() {
        let mut r = rng(6);
        let mut m = TstModel::new(TstConfig::tiny(3, 20), &mut r);
        let x = NdArray::zeros(&[1, 3, 30]);
        let _ = m.encode(&x, false, &mut r);
    }
}
