//! Criterion micro-benchmarks for the attention mechanisms: forward-pass cost as the
//! number of windows grows. This is the micro-level version of Fig. 4(b) and the §6.3.2
//! speed-up claim — group attention's advantage over vanilla attention should widen with
//! the sequence length.
//!
//! Variants named `*_unfused` run the materialised score/softmax oracle chains; the
//! unsuffixed variants run the fused streaming kernels (the defaults), so every run
//! measures the fusion win directly.
//!
//! Besides the human-readable table on stdout, the run writes every measurement to
//! `BENCH_attention.json` (config, n, mean, min per variant) so the perf trajectory
//! tracked in `CHANGES.md` is diffable across PRs. `RITA_QUICK=1` shrinks the sweep to
//! seconds-scale smoke sizes (CI runs it on every push and uploads the JSON artifact).

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use rita_core::attention::{
    Attention, AttentionKind, GroupAttention, GroupAttentionConfig, LinformerAttention,
    PerformerAttention, VanillaAttention,
};
use rita_nn::{no_grad, Var};
use rita_tensor::{NdArray, SeedableRng64};

fn quick() -> bool {
    std::env::var("RITA_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn qkv(n: usize, dh: usize, seed: u64) -> (Var, Var, Var) {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    // Periodic-looking keys: a handful of prototypes plus small noise, the regime group
    // attention exploits.
    let prototypes = NdArray::randn(&[8, dh], 1.0, &mut rng);
    let mut kdata = Vec::with_capacity(n * dh);
    for i in 0..n {
        let p = i % 8;
        for j in 0..dh {
            kdata.push(prototypes.as_slice()[p * dh + j] + 0.05 * (i as f32 % 3.0));
        }
    }
    let k = Var::constant(NdArray::from_vec(kdata, &[1, 1, n, dh]).unwrap());
    let q = Var::constant(NdArray::randn(&[1, 1, n, dh], 1.0, &mut rng));
    let v = Var::constant(NdArray::randn(&[1, 1, n, dh], 1.0, &mut rng));
    (q, k, v)
}

fn group_config(initial_groups: usize, unfused: bool, dense: bool) -> GroupAttentionConfig {
    GroupAttentionConfig {
        initial_groups,
        adaptive: false,
        unfused,
        dense_matrices: dense,
        ..Default::default()
    }
}

fn bench_attention_forward(c: &mut Criterion) {
    let dh = 32;
    let mut group = c.benchmark_group("attention_forward");
    group.sample_size(if quick() { 3 } else { 10 });
    let ns: &[usize] = if quick() { &[64, 256] } else { &[256, 1024, 4096] };
    for &n in ns {
        let (q, k, v) = qkv(n, dh, 1);
        let groups = 16.min(n);
        group.bench_with_input(BenchmarkId::new("vanilla", n), &n, |b, _| {
            let mut attn = VanillaAttention::new();
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("vanilla_unfused", n), &n, |b, _| {
            // The pre-fusion chain (materialised scores + softmax), kept as the perf
            // baseline for the fused kernel above.
            let mut attn = VanillaAttention::unfused();
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group", n), &n, |b, _| {
            let mut attn = GroupAttention::new(group_config(groups, false, false));
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_unfused", n), &n, |b, _| {
            let mut attn = GroupAttention::new(group_config(groups, true, false));
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_dense", n), &n, |b, _| {
            // The pre-sparse-pipeline formulation (dense one-hot grouping matrices),
            // kept as the perf baseline for the segment-sum default above.
            let mut attn = GroupAttention::new(group_config(groups, true, true));
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("performer", n), &n, |b, _| {
            let mut rng = SeedableRng64::seed_from_u64(2);
            let mut attn = PerformerAttention::new(dh, 32, &mut rng);
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("linformer", n), &n, |b, _| {
            let mut rng = SeedableRng64::seed_from_u64(3);
            let mut attn = LinformerAttention::new(n, 32, &mut rng);
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
    }
    group.finish();
    // Silence "unused" warnings for the kinds enum re-export used only at compile time.
    let _ = AttentionKind::Vanilla.name();
}

/// Multi-head configuration: exercises the head-split views and the batched kernels'
/// batch×heads parallelism (batch 4 × heads 8), the regime the encoder actually runs.
fn qkv_multihead(b: usize, h: usize, n: usize, dh: usize, seed: u64) -> (Var, Var, Var) {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let prototypes = NdArray::randn(&[8, dh], 1.0, &mut rng);
    let mut kdata = Vec::with_capacity(b * h * n * dh);
    for _ in 0..b * h {
        for i in 0..n {
            let p = i % 8;
            for j in 0..dh {
                kdata.push(prototypes.as_slice()[p * dh + j] + 0.05 * (i as f32 % 3.0));
            }
        }
    }
    let k = Var::constant(NdArray::from_vec(kdata, &[b, h, n, dh]).unwrap());
    let q = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut rng));
    let v = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut rng));
    (q, k, v)
}

fn bench_attention_forward_multihead(c: &mut Criterion) {
    let (b, h, dh) = (4, 8, 32);
    let mut group = c.benchmark_group("attention_forward_b4h8");
    group.sample_size(if quick() { 3 } else { 10 });
    let ns: &[usize] = if quick() { &[64] } else { &[256, 1024] };
    for &n in ns {
        let (q, k, v) = qkv_multihead(b, h, n, dh, 1);
        let groups = 16.min(n);
        group.bench_with_input(BenchmarkId::new("vanilla", n), &n, |bch, _| {
            let mut attn = VanillaAttention::new();
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("vanilla_unfused", n), &n, |bch, _| {
            let mut attn = VanillaAttention::unfused();
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group", n), &n, |bch, _| {
            let mut attn = GroupAttention::new(group_config(groups, false, false));
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_unfused", n), &n, |bch, _| {
            let mut attn = GroupAttention::new(group_config(groups, true, false));
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_dense", n), &n, |bch, _| {
            let mut attn = GroupAttention::new(group_config(groups, true, true));
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention_forward, bench_attention_forward_multihead);

/// Human-readable config label for a benchmark group name.
fn config_label(group: &str) -> &'static str {
    match group {
        "attention_forward" => "b1 h1 dh32",
        "attention_forward_b4h8" => "b4 h8 dh32",
        _ => "unknown",
    }
}

/// Serialises the recorded measurements to `BENCH_attention.json` (no JSON dependency in
/// the workspace, so the writer is hand-rolled; every emitted value is a number or a
/// string without escapes).
fn write_json(records: &[criterion::BenchRecord]) -> std::io::Result<()> {
    use std::io::Write;
    // Cargo runs bench binaries from the package directory; anchor the default output
    // at the workspace root so CI and humans find one canonical file. Quick-mode runs
    // (CI smoke, local sanity checks) write a sibling file instead of truncating the
    // committed full-mode rows that CHANGES.md tracks across PRs.
    let default_name = if quick() { "BENCH_attention.quick.json" } else { "BENCH_attention.json" };
    let path = std::env::var("RITA_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"benchmark\": \"attention_forward\",")?;
    writeln!(f, "  \"quick\": {},", quick())?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in records.iter().enumerate() {
        let (variant, n) = r.name.split_once('/').unwrap_or((r.name.as_str(), "0"));
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"config\": \"{}\", \"variant\": \"{}\", \"n\": {}, \
             \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}{}",
            config_label(&r.group),
            variant,
            n,
            r.mean_ns,
            r.min_ns,
            r.samples,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("\nwrote {} ({} results)", path, records.len());
    Ok(())
}

fn main() {
    benches();
    let records = criterion::take_records();
    if let Err(e) = write_json(&records) {
        eprintln!("failed to write BENCH_attention.json: {e}");
        std::process::exit(1);
    }
}
