//! Criterion micro-benchmarks for the attention mechanisms: forward-pass cost as the
//! number of windows grows. This is the micro-level version of Fig. 4(b) and the §6.3.2
//! speed-up claim — group attention's advantage over vanilla attention should widen with
//! the sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rita_core::attention::{
    Attention, AttentionKind, GroupAttention, GroupAttentionConfig, LinformerAttention,
    PerformerAttention, VanillaAttention,
};
use rita_nn::{no_grad, Var};
use rita_tensor::{NdArray, SeedableRng64};

fn qkv(n: usize, dh: usize, seed: u64) -> (Var, Var, Var) {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    // Periodic-looking keys: a handful of prototypes plus small noise, the regime group
    // attention exploits.
    let prototypes = NdArray::randn(&[8, dh], 1.0, &mut rng);
    let mut kdata = Vec::with_capacity(n * dh);
    for i in 0..n {
        let p = i % 8;
        for j in 0..dh {
            kdata.push(prototypes.as_slice()[p * dh + j] + 0.05 * (i as f32 % 3.0));
        }
    }
    let k = Var::constant(NdArray::from_vec(kdata, &[1, 1, n, dh]).unwrap());
    let q = Var::constant(NdArray::randn(&[1, 1, n, dh], 1.0, &mut rng));
    let v = Var::constant(NdArray::randn(&[1, 1, n, dh], 1.0, &mut rng));
    (q, k, v)
}

fn bench_attention_forward(c: &mut Criterion) {
    let dh = 32;
    let mut group = c.benchmark_group("attention_forward");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let (q, k, v) = qkv(n, dh, 1);
        group.bench_with_input(BenchmarkId::new("vanilla", n), &n, |b, _| {
            let mut attn = VanillaAttention::new();
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group", n), &n, |b, _| {
            let mut attn = GroupAttention::new(GroupAttentionConfig {
                initial_groups: 16,
                adaptive: false,
                ..Default::default()
            });
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_dense", n), &n, |b, _| {
            // The pre-sparse-pipeline formulation (dense one-hot grouping matrices),
            // kept as the perf baseline for the segment-sum default above.
            let mut attn = GroupAttention::new(GroupAttentionConfig {
                initial_groups: 16,
                adaptive: false,
                dense_matrices: true,
                ..Default::default()
            });
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("performer", n), &n, |b, _| {
            let mut rng = SeedableRng64::seed_from_u64(2);
            let mut attn = PerformerAttention::new(dh, 32, &mut rng);
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("linformer", n), &n, |b, _| {
            let mut rng = SeedableRng64::seed_from_u64(3);
            let mut attn = LinformerAttention::new(n, 32, &mut rng);
            b.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
    }
    group.finish();
    // Silence "unused" warnings for the kinds enum re-export used only at compile time.
    let _ = AttentionKind::Vanilla.name();
}

/// Multi-head configuration: exercises the head-split views and the batched matmul's
/// batch×heads parallelism (batch 4 × heads 8), the regime the encoder actually runs.
fn qkv_multihead(b: usize, h: usize, n: usize, dh: usize, seed: u64) -> (Var, Var, Var) {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let prototypes = NdArray::randn(&[8, dh], 1.0, &mut rng);
    let mut kdata = Vec::with_capacity(b * h * n * dh);
    for _ in 0..b * h {
        for i in 0..n {
            let p = i % 8;
            for j in 0..dh {
                kdata.push(prototypes.as_slice()[p * dh + j] + 0.05 * (i as f32 % 3.0));
            }
        }
    }
    let k = Var::constant(NdArray::from_vec(kdata, &[b, h, n, dh]).unwrap());
    let q = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut rng));
    let v = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut rng));
    (q, k, v)
}

fn bench_attention_forward_multihead(c: &mut Criterion) {
    let (b, h, dh) = (4, 8, 32);
    let mut group = c.benchmark_group("attention_forward_b4h8");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let (q, k, v) = qkv_multihead(b, h, n, dh, 1);
        group.bench_with_input(BenchmarkId::new("vanilla", n), &n, |bch, _| {
            let mut attn = VanillaAttention::new();
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group", n), &n, |bch, _| {
            let mut attn = GroupAttention::new(GroupAttentionConfig {
                initial_groups: 16,
                adaptive: false,
                ..Default::default()
            });
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
        group.bench_with_input(BenchmarkId::new("group_dense", n), &n, |bch, _| {
            let mut attn = GroupAttention::new(GroupAttentionConfig {
                initial_groups: 16,
                adaptive: false,
                dense_matrices: true,
                ..Default::default()
            });
            bch.iter(|| no_grad(|| attn.forward(&q, &k, &v).to_array()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention_forward, bench_attention_forward_multihead);
criterion_main!(benches);
