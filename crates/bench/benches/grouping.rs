//! Criterion micro-benchmarks for the grouping step (§4.4): the matmul-formulated k-means
//! against the naive pairwise-difference formulation, the cost of assembling the
//! group-softmax inputs, and the sparse segment-sum pipeline against the dense one-hot
//! matrix formulation of the grouping constants. This is the ablation DESIGN.md calls
//! out for the "GPU friendly" distance formulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rita_core::group::{kmeans_matmul, kmeans_pairwise};
use rita_tensor::{NdArray, SeedableRng64};

fn keys(n: usize, d: usize) -> NdArray {
    let mut rng = SeedableRng64::seed_from_u64(7);
    NdArray::randn(&[n, d], 1.0, &mut rng)
}

fn bench_kmeans_formulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_grouping");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let x = keys(n, 32);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| kmeans_matmul(&x, 64, 2));
        });
        group.bench_with_input(BenchmarkId::new("pairwise", n), &n, |b, _| {
            b.iter(|| kmeans_pairwise(&x, 64, 2));
        });
    }
    group.finish();
}

fn bench_kmeans_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_iterations");
    group.sample_size(10);
    let x = keys(1024, 32);
    for &iters in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("iters", iters), &iters, |b, &iters| {
            b.iter(|| kmeans_matmul(&x, 64, iters));
        });
    }
    group.finish();
}

/// Applying the grouping constants: the dense path builds the one-hot `(N, n)`
/// averaging/summation matrices and pays two `O(N·n·d)` products; the sparse path is two
/// `O(n·d)` segment sums plus a broadcast scale. This is the tentpole ablation — the
/// quantity that used to dominate the non-score cost of group attention.
fn bench_grouping_constants(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping_constants");
    group.sample_size(10);
    let (d, n_groups) = (32usize, 64usize);
    for &n in &[256usize, 1024, 4096] {
        let x = keys(n, d);
        let g = kmeans_matmul(&x, n_groups, 2);
        let inv_counts = NdArray::from_vec(
            g.counts.iter().map(|&c| 1.0 / (c.max(1) as f32)).collect(),
            &[n_groups, 1],
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("dense_matrices", n), &n, |b, _| {
            b.iter(|| {
                let s = g.averaging_matrix();
                let m = g.sum_matrix();
                let reps = s.matmul(&x).unwrap();
                let agg = m.matmul(&x).unwrap();
                (reps, agg)
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse_segment_sum", n), &n, |b, _| {
            b.iter(|| {
                let sums = x.segment_sum(&g.assignments, n_groups).unwrap();
                let reps = sums.mul(&inv_counts).unwrap();
                let agg = x.segment_sum(&g.assignments, n_groups).unwrap();
                (reps, agg)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans_formulations,
    bench_kmeans_iterations,
    bench_grouping_constants
);
criterion_main!(benches);
