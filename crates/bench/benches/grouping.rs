//! Criterion micro-benchmarks for the grouping step (§4.4): the matmul-formulated k-means
//! against the naive pairwise-difference formulation, and the cost of assembling the
//! group-softmax inputs. This is the ablation DESIGN.md calls out for the "GPU friendly"
//! distance formulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rita_core::group::{kmeans_matmul, kmeans_pairwise};
use rita_tensor::{NdArray, SeedableRng64};

fn keys(n: usize, d: usize) -> NdArray {
    let mut rng = SeedableRng64::seed_from_u64(7);
    NdArray::randn(&[n, d], 1.0, &mut rng)
}

fn bench_kmeans_formulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_grouping");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let x = keys(n, 32);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| kmeans_matmul(&x, 64, 2));
        });
        group.bench_with_input(BenchmarkId::new("pairwise", n), &n, |b, _| {
            b.iter(|| kmeans_pairwise(&x, 64, 2));
        });
    }
    group.finish();
}

fn bench_kmeans_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_iterations");
    group.sample_size(10);
    let x = keys(1024, 32);
    for &iters in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("iters", iters), &iters, |b, &iters| {
            b.iter(|| kmeans_matmul(&x, 64, iters));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans_formulations, bench_kmeans_iterations);
criterion_main!(benches);
