//! Inference-throughput benchmark: the `no_grad` autograd forward (the only serving
//! path before `rita-infer` existed) against the planned-graph executor, on a fused
//! group-attention classifier, swept over batch size × head count.
//!
//! The plan path compiles the forward graph once per `(batch, length)` bucket —
//! topological schedule, peephole-fused nodes, ahead-of-time buffer lifetimes — and
//! interprets it with no per-op `Var` allocation and pool-recycled activation
//! buffers, so its advantage is largest at small batches where per-op overhead
//! dominates the kernel time — exactly the regime a low-latency serving tier lives
//! in. Steady-state timing includes plan-cache hits only (the one-time compile
//! happens in the warm-up parity check).
//!
//! Besides the human-readable table (with requests/s), every measurement goes to
//! `BENCH_inference.json` (`BENCH_inference.quick.json` under `RITA_QUICK=1`, as CI
//! runs it), mirroring the attention bench's machine-readable emitter.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use rita_core::attention::AttentionKind;
use rita_core::checkpoint::Checkpoint;
use rita_core::model::RitaConfig;
use rita_core::tasks::Classifier;
use rita_infer::{InferModel, Precision};
use rita_nn::no_grad;
use rita_tensor::{NdArray, QuantMatrix, SeedableRng64};

fn quick() -> bool {
    std::env::var("RITA_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A small serving-shaped classifier: fused group attention, frozen schedule.
fn classifier(heads: usize, rng: &mut SeedableRng64) -> Classifier {
    let config = RitaConfig {
        channels: 3,
        max_len: 120,
        d_model: 32,
        n_heads: heads,
        n_layers: 2,
        ff_hidden: 64,
        dropout: 0.0,
        attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 8, adaptive: false },
        ..Default::default()
    };
    Classifier::new(config, 5, rng)
}

fn bench_inference(c: &mut Criterion) {
    let batches: &[usize] = if quick() { &[1, 4] } else { &[1, 4, 16] };
    let head_counts: &[usize] = if quick() { &[2] } else { &[2, 4] };
    for &heads in head_counts {
        let mut rng = SeedableRng64::seed_from_u64(7);
        let mut clf = classifier(heads, &mut rng);
        let infer = InferModel::from_checkpoint(&Checkpoint::of_classifier(&clf, None))
            .expect("load checkpoint into the planned-graph engine");
        let group_name = format!("inference_forward_h{heads}");
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(if quick() { 3 } else { 10 });
        for &b in batches {
            let x = NdArray::randn(&[b, 3, 120], 1.0, &mut rng);
            // Sanity: both paths agree bit-for-bit before we time them (this also
            // compiles and caches the plan, so the timed loop is all cache hits).
            let reference = no_grad(|| clf.logits(&x, false, &mut rng).to_array());
            assert_eq!(
                reference.as_slice(),
                infer.logits(&x).as_slice(),
                "planned forward diverged from the no_grad Var forward"
            );
            group.bench_with_input(BenchmarkId::new("var_no_grad", b), &b, |bch, _| {
                bch.iter(|| no_grad(|| clf.logits(&x, false, &mut rng).to_array()));
            });
            group.bench_with_input(BenchmarkId::new("planned", b), &b, |bch, _| {
                bch.iter(|| infer.logits(&x));
            });
        }
        group.finish();
    }
}

/// The precision rows ISSUE 10's acceptance criterion reads: `matmul` against
/// `matmul_quant` on inference-shaped GEMMs — skinny activations against wide
/// projection weights, the shape every transformer projection and FFN layer
/// executes. The int8 path must clear 1.5x; `main` enforces that on full runs.
fn bench_precision(c: &mut Criterion) {
    let shapes: &[(usize, usize, usize)] = if quick() {
        &[(4, 256, 1024)]
    } else {
        &[(4, 256, 1024), (16, 512, 512), (64, 256, 1024)]
    };
    let mut rng = SeedableRng64::seed_from_u64(13);
    for &(m, k, n) in shapes {
        let a = NdArray::randn(&[m, k], 1.0, &mut rng);
        let w = NdArray::randn(&[k, n], 0.05, &mut rng);
        let wq = QuantMatrix::quantize(w.as_slice(), k, n);
        // Sanity before timing: the quantized product must stay within per-channel
        // quantization error of the exact one (coarse bound; the tight ones live in
        // the rita-tensor unit tests and tests/quantized_accuracy.rs).
        let exact = a.matmul(&w).expect("f32 gemm");
        let approx = a.matmul_quant(&wq).expect("int8 gemm");
        for (e, q) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((e - q).abs() < 0.5, "int8 gemm diverged: {e} vs {q}");
        }
        let group_name = format!("gemm_k{k}_n{n}");
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(if quick() { 3 } else { 10 });
        group.bench_with_input(BenchmarkId::new("f32", m), &m, |bch, _| {
            bch.iter(|| a.matmul(&w).expect("f32 gemm"));
        });
        group.bench_with_input(BenchmarkId::new("int8", m), &m, |bch, _| {
            bch.iter(|| a.matmul_quant(&wq).expect("int8 gemm"));
        });
        group.finish();
    }

    // Model-level precision rows on a quantization-sized classifier (d_model 256):
    // the whole planned forward under f32 vs int8 weights vs int8+bf16 K/V.
    let config = RitaConfig {
        channels: 3,
        max_len: 120,
        d_model: 256,
        n_heads: 8,
        n_layers: 2,
        ff_hidden: 1024,
        dropout: 0.0,
        attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 8, adaptive: false },
        ..Default::default()
    };
    let ckpt = Checkpoint::of_classifier(&Classifier::new(config, 5, &mut rng), None);
    let variants: &[(&str, Precision)] = &[
        ("planned_f32", Precision::F32),
        ("planned_int8", Precision::Int8),
        ("planned_int8_bf16", Precision::Int8Bf16),
    ];
    let batches: &[usize] = if quick() { &[4] } else { &[4, 16] };
    let mut group = c.benchmark_group("inference_forward_d256");
    group.sample_size(if quick() { 3 } else { 10 });
    for &b in batches {
        let x = NdArray::randn(&[b, 3, 120], 1.0, &mut rng);
        for (name, precision) in variants {
            let model = InferModel::from_checkpoint_with(&ckpt, *precision)
                .expect("load checkpoint at the requested precision");
            assert!(
                model.logits(&x).as_slice().iter().all(|v| v.is_finite()),
                "{name} forward produced non-finite logits"
            );
            group.bench_with_input(BenchmarkId::new(*name, b), &b, |bch, _| {
                bch.iter(|| model.logits(&x));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_precision);

/// Serialises the recorded measurements to `BENCH_inference.json` (same hand-rolled
/// writer as the attention bench; quick-mode runs write a sibling file so CI smoke
/// runs never truncate the committed full-mode rows).
fn write_json(records: &[criterion::BenchRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let default_name = if quick() { "BENCH_inference.quick.json" } else { "BENCH_inference.json" };
    let path = std::env::var("RITA_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"benchmark\": \"inference_forward\",")?;
    writeln!(f, "  \"quick\": {},", quick())?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in records.iter().enumerate() {
        let (variant, b) = r.name.split_once('/').unwrap_or((r.name.as_str(), "0"));
        let batch: f64 = b.parse().unwrap_or(0.0);
        let mean_ns = r.mean_ns as f64;
        let requests_per_s = if mean_ns > 0.0 { batch * 1e9 / mean_ns } else { 0.0 };
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"config\": \"{}\", \"variant\": \"{}\", \"batch\": {}, \
             \"mean_ns\": {}, \"min_ns\": {}, \"requests_per_s\": {:.1}, \
             \"samples\": {}}}{}",
            r.group, variant, b, r.mean_ns, r.min_ns, requests_per_s, r.samples, comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("\nwrote {} ({} results)", path, records.len());
    Ok(())
}

fn main() {
    benches();
    let records = criterion::take_records();

    // Headline for the precision rows: int8 GEMM speedup per shape. Full runs
    // enforce ISSUE 10's >= 1.5x acceptance bar; quick CI smoke runs only report.
    for r in &records {
        if !r.group.starts_with("gemm_") || !r.name.starts_with("int8/") {
            continue;
        }
        let twin = r.name.replace("int8/", "f32/");
        let f32_row = records
            .iter()
            .find(|c| c.group == r.group && c.name == twin)
            .expect("every int8 gemm row has an f32 twin");
        let speedup = f32_row.mean_ns as f64 / r.mean_ns.max(1) as f64;
        println!(
            "{} m={}: int8/f32 speedup {speedup:.2}x",
            r.group,
            r.name.trim_start_matches("int8/")
        );
        assert!(
            quick() || speedup >= 1.5,
            "int8 GEMM must be >= 1.5x f32 at inference shapes, got {speedup:.2}x for {}",
            r.group
        );
    }

    if let Err(e) = write_json(&records) {
        eprintln!("failed to write BENCH_inference.json: {e}");
        std::process::exit(1);
    }
}
