//! Closed-loop serving load bench: the continuous-batching `Server` against serial
//! one-request-at-a-time serving, swept over offered load × request-length mix.
//!
//! Each load point runs a fixed-duration closed loop: `clients` threads each submit a
//! request, wait for the answer, and immediately submit the next — offered load scales
//! with the client count. The serial baseline serves the same traffic through a
//! mutex-serialized single-call `InferSession` (the service discipline `rita-infer`
//! had before the server existed): its throughput is pinned at the one-at-a-time rate
//! while queueing pushes its tail latency up with every added client. The continuous
//! server instead folds concurrent same-length requests into predictor-sized batches,
//! so throughput climbs with load.
//!
//! Before any timing, every request in every mix is served once through the server
//! and asserted **bit-identical** to the single-call `InferSession` logits — the
//! batching layer must be invisible in the answers.
//!
//! Rows go to `BENCH_serving.json` (`BENCH_serving.quick.json` under `RITA_QUICK=1`,
//! as CI runs it): mode × mix × clients with throughput, p50/p99 latency, shed rate,
//! and the mean executed batch size.
//!
//! A third mode, `chaos`, reruns the top load point with a worker panic injected
//! every 500th batch (every 50th under `RITA_QUICK`): the fault-injection row
//! quantifies what supervised respawn costs against the clean `continuous` row —
//! crashed batches fail typed, everything else keeps its exactness guarantee.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rita_core::attention::AttentionKind;
use rita_core::checkpoint::Checkpoint;
use rita_core::model::RitaConfig;
use rita_core::tasks::Classifier;
use rita_infer::chaos::{self, ChaosConfig, Injection};
use rita_infer::{
    BreakerPolicy, InferSession, ModelRegistry, Precision, ServeError, Server, ServerConfig,
};
use rita_tensor::{worker_budget, NdArray, SeedableRng64};

fn quick() -> bool {
    std::env::var("RITA_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The serving-shaped classifier the inference bench uses (fused group attention,
/// frozen schedule).
fn checkpoint() -> Checkpoint {
    let mut rng = SeedableRng64::seed_from_u64(7);
    let config = RitaConfig {
        channels: 3,
        max_len: 120,
        d_model: 32,
        n_layers: 2,
        ff_hidden: 64,
        dropout: 0.0,
        attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 8, adaptive: false },
        ..Default::default()
    };
    Checkpoint::of_classifier(&Classifier::new(config, 5, &mut rng), None)
}

/// A quantization-sized classifier (d_model 256): at this width the projection and
/// FFN GEMMs dominate each batch, so the f32-vs-int8 serving rows measure the
/// kernels rather than batching overhead.
fn large_checkpoint() -> Checkpoint {
    let mut rng = SeedableRng64::seed_from_u64(7);
    let config = RitaConfig {
        channels: 3,
        max_len: 120,
        d_model: 256,
        n_heads: 8,
        n_layers: 2,
        ff_hidden: 1024,
        dropout: 0.0,
        attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 8, adaptive: false },
        ..Default::default()
    };
    Checkpoint::of_classifier(&Classifier::new(config, 5, &mut rng), None)
}

/// One measured load point.
struct Row {
    mix: &'static str,
    mode: &'static str,
    clients: usize,
    duration_s: f64,
    served: usize,
    shed: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
    /// Admitted requests that came back as typed failures (crashed batches).
    failed: u64,
    /// Worker panics injected during the window (`chaos` mode only).
    panics: u64,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Runs one fixed-duration closed loop: `clients` threads round-robin over
/// `requests`, calling `serve` and recording per-request latency. Only completions
/// after the warmup cut count.
fn closed_loop(
    clients: usize,
    requests: &[NdArray],
    warmup: Duration,
    window: Duration,
    serve: impl Fn(usize, &NdArray) -> bool + Sync,
) -> (usize, Vec<u64>, f64) {
    let start = Instant::now();
    let deadline = start + warmup + window;
    let latencies: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let serve = &serve;
                s.spawn(move || {
                    let mut recorded = Vec::new();
                    let mut i = c; // phase-shift clients across the length mix
                    loop {
                        let begin = Instant::now();
                        if begin >= deadline {
                            return recorded;
                        }
                        let ok = serve(c, &requests[i % requests.len()]);
                        let end = Instant::now();
                        if ok && end.duration_since(start) >= warmup && end <= deadline {
                            recorded.push(end.duration_since(begin).as_micros() as u64);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let measured = start.elapsed().as_secs_f64() - warmup.as_secs_f64();
    (all.len(), all, measured)
}

fn main() {
    let quick = quick();
    let ckpt = checkpoint();
    let session = InferSession::from_checkpoint(&ckpt).expect("load checkpoint");
    let workers = worker_budget().min(2);
    let server_config = ServerConfig {
        workers,
        max_batch: 6,
        slo: Duration::from_millis(50),
        linger: Duration::from_micros(100),
        ..Default::default()
    };

    // Two length mixes: clients cycle through a mix phase-shifted, so the live queue
    // always holds several lengths and the batcher has to bucket.
    let mixes: &[(&str, &[usize])] = &[("short", &[48, 64]), ("long", &[88, 120])];
    let loads: &[usize] = if quick { &[2, 6] } else { &[2, 6, 16] };
    let (warmup, window) = if quick {
        (Duration::from_millis(100), Duration::from_millis(400))
    } else {
        (Duration::from_millis(300), Duration::from_secs(3))
    };

    let mut rng = SeedableRng64::seed_from_u64(11);
    let request_sets: Vec<(&str, Vec<NdArray>)> = mixes
        .iter()
        .map(|(name, lengths)| {
            let reqs = (0..8)
                .map(|i| NdArray::randn(&[3, lengths[i % lengths.len()]], 1.0, &mut rng))
                .collect();
            (*name, reqs)
        })
        .collect();

    // Parity gate: every request must come back from the server bit-identical to the
    // single-call session before anything is timed.
    {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(&ckpt).expect("publish checkpoint");
        let server = Server::start(registry, server_config);
        for (mix, requests) in &request_sets {
            for (i, r) in requests.iter().enumerate() {
                let want = session.classify_logits(std::slice::from_ref(r)).expect("single-call");
                let got = server.classify("parity", r.clone()).expect("served");
                assert_eq!(
                    got.logits.as_slice(),
                    want[0].as_slice(),
                    "mix {mix} request {i}: served logits diverged from the single-call session"
                );
            }
        }
        server.shutdown();
        println!("parity: every served output is bit-identical to the single-call session");
    }

    let mut rows: Vec<Row> = Vec::new();
    for (mix, requests) in &request_sets {
        for &clients in loads {
            // Serial baseline: the same closed-loop traffic, one request at a time.
            let serial = Mutex::new(&session);
            let (served, lat, secs) = closed_loop(clients, requests, warmup, window, |_, r| {
                let guard = serial.lock().expect("serial session");
                let out = guard.classify(std::slice::from_ref(r)).expect("serial classify");
                std::hint::black_box(out[0].class);
                true
            });
            rows.push(Row {
                mix,
                mode: "serial",
                clients,
                duration_s: secs,
                served,
                shed: 0,
                throughput_rps: served as f64 / secs,
                p50_us: percentile(&lat, 0.5),
                p99_us: percentile(&lat, 0.99),
                mean_batch: 1.0,
                failed: 0,
                panics: 0,
            });

            // Continuous batching: fresh server per load point so metrics are scoped.
            let registry = Arc::new(ModelRegistry::new());
            registry.publish(&ckpt).expect("publish checkpoint");
            let server = Server::start(registry, server_config);
            let (served, lat, secs) = closed_loop(clients, requests, warmup, window, |c, r| {
                let tenant = ["tenant-a", "tenant-b", "tenant-c"][c % 3];
                server.classify(tenant, r.clone()).is_ok()
            });
            let snap = server.metrics().snapshot();
            rows.push(Row {
                mix,
                mode: "continuous",
                clients,
                duration_s: secs,
                served,
                shed: snap.shed(),
                throughput_rps: served as f64 / secs,
                p50_us: percentile(&lat, 0.5),
                p99_us: percentile(&lat, 0.99),
                mean_batch: snap.batch_size.mean,
                failed: snap.tenants.iter().map(|(_, t)| t.failed).sum(),
                panics: 0,
            });
            server.shutdown();

            let (s, c) = (&rows[rows.len() - 2], &rows[rows.len() - 1]);
            println!(
                "{mix:>5} x{clients:<2} serial {:>7.0} r/s (p99 {:>6}us) | continuous {:>7.0} r/s \
                 (p99 {:>6}us, mean batch {:.1})",
                s.throughput_rps, s.p99_us, c.throughput_rps, c.p99_us, c.mean_batch
            );
        }

        // Fault-injection row at the top load point: one worker panic per `crash_every`
        // batches. The breaker is disabled — the row measures the raw cost of crashed
        // batches + supervised respawn, not reject-fast behaviour.
        let clients = loads.iter().copied().max().unwrap();
        let crash_every = if quick { 50 } else { 500 };
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(&ckpt).expect("publish checkpoint");
        let mut chaos_cfg = server_config;
        chaos_cfg.breaker = BreakerPolicy { threshold: 0, ..Default::default() };
        let server = Server::start(registry, chaos_cfg);
        let guard = chaos::inject(ChaosConfig {
            worker_panic: Injection::every(crash_every),
            ..Default::default()
        });
        let (served, lat, secs) = closed_loop(clients, requests, warmup, window, |c, r| {
            let tenant = ["tenant-a", "tenant-b", "tenant-c"][c % 3];
            match server.classify(tenant, r.clone()) {
                Ok(_) => true,
                Err(ServeError::Internal { .. }) | Err(ServeError::Overloaded { .. }) => false,
                Err(e) => panic!("unexpected serve error under chaos: {e}"),
            }
        });
        drop(guard);
        let snap = server.metrics().snapshot();
        rows.push(Row {
            mix,
            mode: "chaos",
            clients,
            duration_s: secs,
            served,
            shed: snap.shed(),
            throughput_rps: served as f64 / secs,
            p50_us: percentile(&lat, 0.5),
            p99_us: percentile(&lat, 0.99),
            mean_batch: snap.batch_size.mean,
            failed: snap.tenants.iter().map(|(_, t)| t.failed).sum(),
            panics: snap.faults.worker_panics,
        });
        server.shutdown();
        let r = rows.last().unwrap();
        println!(
            "{mix:>5} x{clients:<2} chaos  {:>7.0} r/s (p99 {:>6}us, {} panics, {} failed, \
             1 crash per {crash_every} batches)",
            r.throughput_rps, r.p99_us, r.panics, r.failed
        );
    }

    // Precision rows (ISSUE 10): the d_model-256 model served f32 against int8 at
    // the top load point. Both servers run the same continuous-batching discipline
    // over identical traffic; the only difference is the precision the registry
    // binds at publish, so the throughput ratio isolates the quantized kernels.
    let top = loads.iter().copied().max().unwrap();
    let large = large_checkpoint();
    for (mix, requests) in &request_sets {
        for (mode, precision) in
            [("continuous_f32_d256", Precision::F32), ("continuous_int8_d256", Precision::Int8)]
        {
            let registry = Arc::new(ModelRegistry::new());
            registry.publish_with(&large, precision).expect("publish d256 checkpoint");
            let server = Server::start(Arc::clone(&registry), server_config);
            // Sanity before timing: the served answer must be finite at this
            // precision (bit-parity is an f32-only guarantee).
            let probe = server.classify("parity", requests[0].clone()).expect("probe request");
            assert!(
                probe.logits.as_slice().iter().all(|v| v.is_finite()),
                "{mode}: served logits must be finite"
            );
            let (served, lat, secs) = closed_loop(top, requests, warmup, window, |c, r| {
                let tenant = ["tenant-a", "tenant-b", "tenant-c"][c % 3];
                server.classify(tenant, r.clone()).is_ok()
            });
            let snap = server.metrics().snapshot();
            rows.push(Row {
                mix,
                mode,
                clients: top,
                duration_s: secs,
                served,
                shed: snap.shed(),
                throughput_rps: served as f64 / secs,
                p50_us: percentile(&lat, 0.5),
                p99_us: percentile(&lat, 0.99),
                mean_batch: snap.batch_size.mean,
                failed: snap.tenants.iter().map(|(_, t)| t.failed).sum(),
                panics: 0,
            });
            server.shutdown();
            let r = rows.last().unwrap();
            println!(
                "{mix:>5} x{top:<2} {mode:<20} {:>7.0} r/s (p99 {:>6}us, mean batch {:.1})",
                r.throughput_rps, r.p99_us, r.mean_batch
            );
        }
    }

    // The headline the sweep exists for: at the highest load point, batching wins.
    for (mix, _) in &request_sets {
        let top = loads.iter().copied().max().unwrap();
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.mix == *mix && r.mode == mode && r.clients == top)
                .expect("row present")
        };
        let (serial, continuous) = (find("serial"), find("continuous"));
        println!(
            "mix {mix}: continuous/serial throughput at {top} clients = {:.2}x",
            continuous.throughput_rps / serial.throughput_rps
        );
        let faulted = find("chaos");
        println!(
            "mix {mix}: chaos/clean throughput at {top} clients = {:.2}x ({} crashed batches)",
            faulted.throughput_rps / continuous.throughput_rps,
            faulted.failed
        );
        let (f32_row, int8_row) = (find("continuous_f32_d256"), find("continuous_int8_d256"));
        let speedup = int8_row.throughput_rps / f32_row.throughput_rps;
        println!("mix {mix}: int8/f32 d256 throughput at {top} clients = {speedup:.2}x");
        // ISSUE 10's serving acceptance bar; quick CI smoke runs only report.
        assert!(
            quick || speedup >= 1.2,
            "quantized serving must be >= 1.2x f32 at the top load point, got {speedup:.2}x"
        );
    }

    if let Err(e) = write_json(&rows, workers, quick) {
        eprintln!("failed to write BENCH_serving.json: {e}");
        std::process::exit(1);
    }
}

/// Same hand-rolled emitter as the attention and inference benches; quick-mode runs
/// write a sibling file so CI smoke runs never truncate the committed full-mode rows.
fn write_json(rows: &[Row], workers: usize, quick: bool) -> std::io::Result<()> {
    use std::io::Write;
    let default_name = if quick { "BENCH_serving.quick.json" } else { "BENCH_serving.json" };
    let path = std::env::var("RITA_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"benchmark\": \"serving_load\",")?;
    writeln!(f, "  \"quick\": {quick},")?;
    writeln!(f, "  \"workers\": {workers},")?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let shed_rate = r.shed as f64 / (r.served as f64 + r.shed as f64).max(1.0);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"mix\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \
             \"duration_s\": {:.3}, \"served\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"mean_batch\": {:.2}, \"failed\": {}, \"worker_panics\": {}}}{}",
            r.mix,
            r.mode,
            r.clients,
            r.duration_s,
            r.served,
            r.shed,
            shed_rate,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.mean_batch,
            r.failed,
            r.panics,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    println!("\nwrote {} ({} results)", path, rows.len());
    Ok(())
}
