//! Figure 3: full-label classification on the multivariate datasets — accuracy (a) and
//! training time per epoch (b) for TST and the four RITA-architecture attention variants.

use rita_bench::experiments::{
    attention_variants, generate_split, run_classification, run_tst_classification,
};
use rita_bench::table::{fmt_pct, fmt_secs};
use rita_bench::{Scale, Table};
use rita_data::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let datasets = [DatasetKind::Wisdm, DatasetKind::Hhar, DatasetKind::Rwhar, DatasetKind::Ecg];
    let mut acc =
        Table::new(&["Dataset", "TST", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    let mut time =
        Table::new(&["Dataset", "TST", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    for kind in datasets {
        eprintln!("[fig3] running {} ...", kind.name());
        let split = generate_split(kind, scale, 42);
        let windows = scale.length(kind) / 5;
        let tst = run_tst_classification(kind, scale, &split, 1);
        let mut acc_row = vec![kind.name().to_string(), fmt_pct(tst.accuracy)];
        let mut time_row = vec![kind.name().to_string(), fmt_secs(tst.epoch_seconds)];
        for (_, attention) in attention_variants(windows) {
            let r = run_classification(kind, scale, attention, &split, 1);
            acc_row.push(fmt_pct(r.accuracy));
            time_row.push(fmt_secs(r.epoch_seconds));
        }
        acc.add_row(acc_row);
        time.add_row(time_row);
    }
    acc.print("Fig. 3(a): full-label classification accuracy (multi-variate data)");
    time.print("Fig. 3(b): training time per epoch in seconds");
}
