//! Figure 4: varying the length of the MGH-style series — imputation MSE and training
//! time per epoch as the length grows, showing that group attention's advantage widens
//! (and that Vanilla hits the memory wall at paper scale).

use rand::SeedableRng;
use rita_bench::experiments::{attention_variants, run_imputation, would_oom_at_paper_scale};
use rita_bench::table::{fmt_f32, fmt_secs};
use rita_bench::{Scale, Table};
use rita_data::{DatasetKind, TimeseriesDataset};
use rita_tensor::SeedableRng64;

fn main() {
    let scale = Scale::from_args();
    let (lengths, paper_lengths): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Reduced => (vec![200, 400, 600, 800, 1000], vec![2000, 4000, 6000, 8000, 10000]),
        Scale::Full => (vec![2000, 4000, 6000, 8000, 10000], vec![2000, 4000, 6000, 8000, 10000]),
    };
    let mut rng = SeedableRng64::seed_from_u64(11);
    let max_len = *lengths.last().unwrap();
    let base = TimeseriesDataset::generate_reduced(
        DatasetKind::Mgh,
        scale.train_size(DatasetKind::Mgh),
        scale.valid_size(DatasetKind::Mgh),
        max_len,
        &mut rng,
    );
    let mut mse_table =
        Table::new(&["Length (paper)", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    let mut time_table =
        Table::new(&["Length (paper)", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    for (i, &len) in lengths.iter().enumerate() {
        eprintln!("[fig4] length {len} ...");
        let truncated = base.truncate_length(len).split_at(scale.train_size(DatasetKind::Mgh));
        let windows = len / 5;
        let mut mse_row = vec![format!("{len} ({})", paper_lengths[i])];
        let mut time_row = vec![format!("{len} ({})", paper_lengths[i])];
        for (name, attention) in attention_variants(windows) {
            if would_oom_at_paper_scale(name, paper_lengths[i]) {
                mse_row.push("N/A (OOM)".into());
                time_row.push("N/A".into());
                continue;
            }
            let r = run_imputation(DatasetKind::Mgh, scale, attention, &truncated, 13);
            mse_row.push(fmt_f32(r.mse));
            time_row.push(fmt_secs(r.epoch_seconds));
        }
        mse_table.add_row(mse_row);
        time_table.add_row(time_row);
    }
    mse_table.print("Fig. 4(a): imputation MSE vs. series length (MGH-style data)");
    time_table.print("Fig. 4(b): training time per epoch (s) vs. series length");
}
