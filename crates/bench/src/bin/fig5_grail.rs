//! Figure 5: comparison against the non-deep-learning baseline GRAIL on the three
//! univariate datasets — accuracy and training time.

use rita_bench::experiments::{generate_split, run_classification, run_grail};
use rita_bench::table::{fmt_pct, fmt_secs};
use rita_bench::{Scale, Table};
use rita_core::attention::AttentionKind;
use rita_data::{DataSplit, DatasetKind};

fn main() {
    let scale = Scale::from_args();
    let mut table =
        Table::new(&["Dataset", "GRAIL acc", "RITA acc", "GRAIL time/s", "RITA time/s"]);
    for (multi, uni) in [
        (DatasetKind::Wisdm, DatasetKind::WisdmUni),
        (DatasetKind::Hhar, DatasetKind::HharUni),
        (DatasetKind::Rwhar, DatasetKind::RwharUni),
    ] {
        eprintln!("[fig5] running {} ...", uni.name());
        let split = generate_split(multi, scale, 33);
        let uni_split =
            DataSplit { train: split.train.to_univariate(0), valid: split.valid.to_univariate(0) };
        let (grail_acc, grail_secs) = run_grail(&uni_split, 3);
        let attention = AttentionKind::Group { epsilon: 2.0, initial_groups: 16, adaptive: true };
        let rita = run_classification(uni, scale, attention, &uni_split, 3);
        table.add_row(vec![
            uni.name().into(),
            fmt_pct(grail_acc),
            fmt_pct(rita.accuracy),
            fmt_secs(grail_secs),
            fmt_secs(rita.epoch_seconds * scale.epochs() as f64),
        ]);
    }
    table.print(
        "Fig. 5: RITA (Group Attn.) vs GRAIL on uni-variate data (accuracy, total training time)",
    );
}
