//! Table 1: dataset statistics — the paper-scale specification of every dataset and the
//! reduced synthetic instantiation the harness actually trains on.

use rita_bench::{Scale, Table};
use rita_data::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let mut paper =
        Table::new(&["Dataset", "Train. Size", "Valid. Size", "Length", "Channel", "Classes"]);
    for kind in DatasetKind::MULTIVARIATE {
        let s = kind.paper_spec();
        paper.add_row(vec![
            kind.name().into(),
            s.train_size.to_string(),
            s.valid_size.to_string(),
            s.length.to_string(),
            s.channels.to_string(),
            if s.num_classes == 0 { "N/A".into() } else { s.num_classes.to_string() },
        ]);
    }
    paper.print("Table 1 (paper scale): dataset statistics");

    let mut reduced =
        Table::new(&["Dataset", "Train. Size", "Valid. Size", "Length", "Channel", "Classes"]);
    for kind in DatasetKind::MULTIVARIATE {
        let s = kind.paper_spec();
        reduced.add_row(vec![
            kind.name().into(),
            scale.train_size(kind).to_string(),
            scale.valid_size(kind).to_string(),
            scale.length(kind).to_string(),
            s.channels.to_string(),
            if s.num_classes == 0 { "N/A".into() } else { s.num_classes.to_string() },
        ]);
    }
    reduced.print(&format!("Table 1 (this harness, {scale:?} scale): synthetic equivalents"));
}
