//! Table 2: imputation MSE and training time per epoch on the multivariate datasets,
//! including the MGH-style long series on which TST and Vanilla run out of memory at
//! paper scale.

use rita_bench::experiments::{
    attention_variants, generate_split, run_imputation, run_tst_imputation,
    would_oom_at_paper_scale,
};
use rita_bench::table::{fmt_f32, fmt_secs};
use rita_bench::{Scale, Table};
use rita_data::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(&["Dataset", "Length", "Method", "MSE", "Time/s"]);
    for kind in DatasetKind::MULTIVARIATE {
        eprintln!("[table2] running {} ...", kind.name());
        let split = generate_split(kind, scale, 7);
        let paper_len = kind.paper_spec().length;
        let windows = scale.length(kind) / 5;

        if would_oom_at_paper_scale("TST", paper_len) {
            table.add_row(vec![
                kind.name().into(),
                paper_len.to_string(),
                "TST".into(),
                "N/A (OOM)".into(),
                "N/A".into(),
            ]);
        } else {
            let r = run_tst_imputation(kind, scale, &split, 3);
            table.add_row(vec![
                kind.name().into(),
                paper_len.to_string(),
                "TST".into(),
                fmt_f32(r.mse),
                fmt_secs(r.epoch_seconds),
            ]);
        }
        for (name, attention) in attention_variants(windows) {
            if would_oom_at_paper_scale(name, paper_len) {
                table.add_row(vec![
                    kind.name().into(),
                    paper_len.to_string(),
                    name.into(),
                    "N/A (OOM)".into(),
                    "N/A".into(),
                ]);
                continue;
            }
            let r = run_imputation(kind, scale, attention, &split, 3);
            table.add_row(vec![
                kind.name().into(),
                paper_len.to_string(),
                name.into(),
                fmt_f32(r.mse),
                fmt_secs(r.epoch_seconds),
            ]);
        }
    }
    table.print("Table 2: imputation results (multi-variate data; OOM cells follow the paper-scale memory model)");
}
