//! Table 3: self-supervised pretraining + few-label fine-tuning vs. training from scratch,
//! for TST and the four RITA-architecture attention variants.

use rand::SeedableRng;
use rita_bench::experiments::{
    attention_variants, generate_split, rita_config, run_tst_classification,
};
use rita_bench::table::fmt_pct;
use rita_bench::{Scale, Table};
use rita_core::tasks::{finetune_classifier, pretrain, train_from_scratch, TrainConfig};
use rita_data::DatasetKind;
use rita_tensor::SeedableRng64;

fn main() {
    let scale = Scale::from_args();
    let datasets = [DatasetKind::Wisdm, DatasetKind::Hhar, DatasetKind::Rwhar, DatasetKind::Ecg];
    let few_labels_per_class = match scale {
        Scale::Reduced => 4,
        Scale::Full => 100,
    };
    let mut table = Table::new(&["Dataset", "Method", "Scratch", "Pretrained"]);
    for kind in datasets {
        eprintln!("[table3] running {} ...", kind.name());
        let split = generate_split(kind, scale, 21);
        let few = split.train.few_labels_per_class(few_labels_per_class);
        let classes = kind.paper_spec().num_classes;
        let windows = scale.length(kind) / 5;
        let cfg = TrainConfig {
            epochs: scale.epochs(),
            batch_size: scale.batch_size(),
            lr: 1e-3,
            ..Default::default()
        };

        // TST row: scratch only at reduced scale (its pretraining objective is the same
        // cloze task; we report scratch twice the paper's gap is driven by the RITA rows).
        let tst = run_tst_classification(kind, scale, &split, 5);
        table.add_row(vec![kind.name().into(), "TST".into(), fmt_pct(tst.accuracy), "-".into()]);

        for (name, attention) in attention_variants(windows) {
            let config = rita_config(kind, scale, attention);
            let mut rng = SeedableRng64::seed_from_u64(5);
            let (mut scratch_clf, _) = train_from_scratch(config, classes, &few, &cfg, &mut rng);
            let scratch_acc = scratch_clf.evaluate(&split.valid, cfg.batch_size, &mut rng);

            let mut rng = SeedableRng64::seed_from_u64(5);
            let outcome = pretrain(config, &split.train, &cfg, &mut rng);
            let (mut pre_clf, _) =
                finetune_classifier(outcome.model, classes, &few, &cfg, &mut rng);
            let pre_acc = pre_clf.evaluate(&split.valid, cfg.batch_size, &mut rng);

            table.add_row(vec![
                kind.name().into(),
                name.into(),
                fmt_pct(scratch_acc),
                fmt_pct(pre_acc),
            ]);
        }
    }
    table.print("Table 3: pretrain + few-label finetuning accuracy (scratch vs. pretrained)");
}
