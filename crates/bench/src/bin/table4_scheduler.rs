//! Table 4: the adaptive scheduler vs. a fixed number of groups N — accuracy / MSE and
//! training time, varying the error bound ε for the dynamic scheduler and N for the fixed
//! baseline.

use rand::SeedableRng;
use rita_bench::experiments::{generate_split, rita_config};
use rita_bench::table::{fmt_f32, fmt_pct, fmt_secs};
use rita_bench::{Scale, Table};
use rita_core::attention::AttentionKind;
use rita_core::tasks::{Classifier, Imputer, TrainConfig};
use rita_data::DatasetKind;
use rita_tensor::SeedableRng64;

fn main() {
    let scale = Scale::from_args();
    let cfg = TrainConfig {
        epochs: scale.epochs(),
        batch_size: scale.batch_size(),
        lr: 1e-3,
        ..Default::default()
    };

    // --- ECG classification ---
    let mut table = Table::new(&["Dataset", "Task", "Scheduler", "Parameter", "Metric", "Time/s"]);
    let split = generate_split(DatasetKind::Ecg, scale, 55);
    let windows = scale.length(DatasetKind::Ecg) / 5;
    for eps in [1.5f32, 2.0, 3.0] {
        eprintln!("[table4] ECG dynamic eps={eps}");
        let attention =
            AttentionKind::Group { epsilon: eps, initial_groups: windows / 2, adaptive: true };
        let mut rng = SeedableRng64::seed_from_u64(4);
        let mut clf = Classifier::new(rita_config(DatasetKind::Ecg, scale, attention), 9, &mut rng);
        let report = clf.train(&split.train, &cfg, &mut rng);
        let acc = clf.evaluate(&split.valid, cfg.batch_size, &mut rng);
        table.add_row(vec![
            "ECG".into(),
            "Class.".into(),
            "Dynamic".into(),
            format!("{eps}"),
            fmt_pct(acc),
            fmt_secs(report.total_seconds()),
        ]);
    }
    for n in [windows / 8, windows / 4, windows / 2, windows] {
        eprintln!("[table4] ECG fixed N={n}");
        let attention =
            AttentionKind::Group { epsilon: 2.0, initial_groups: n.max(2), adaptive: false };
        let mut rng = SeedableRng64::seed_from_u64(4);
        let mut clf = Classifier::new(rita_config(DatasetKind::Ecg, scale, attention), 9, &mut rng);
        let report = clf.train(&split.train, &cfg, &mut rng);
        let acc = clf.evaluate(&split.valid, cfg.batch_size, &mut rng);
        table.add_row(vec![
            "ECG".into(),
            "Class.".into(),
            "Fixed".into(),
            n.max(2).to_string(),
            fmt_pct(acc),
            fmt_secs(report.total_seconds()),
        ]);
    }

    // --- MGH imputation ---
    let split = generate_split(DatasetKind::Mgh, scale, 56);
    let windows = scale.length(DatasetKind::Mgh) / 5;
    for eps in [1.5f32, 2.0, 3.0] {
        eprintln!("[table4] MGH dynamic eps={eps}");
        let attention =
            AttentionKind::Group { epsilon: eps, initial_groups: windows / 2, adaptive: true };
        let mut rng = SeedableRng64::seed_from_u64(4);
        let mut imp = Imputer::new(rita_config(DatasetKind::Mgh, scale, attention), &mut rng);
        let report = imp.train(&split.train, &cfg, &mut rng);
        let mse = imp.evaluate(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng);
        table.add_row(vec![
            "MGH".into(),
            "Imput.".into(),
            "Dynamic".into(),
            format!("{eps}"),
            fmt_f32(mse),
            fmt_secs(report.total_seconds()),
        ]);
    }
    for n in [windows / 8, windows / 4, windows / 2, windows] {
        eprintln!("[table4] MGH fixed N={n}");
        let attention =
            AttentionKind::Group { epsilon: 2.0, initial_groups: n.max(2), adaptive: false };
        let mut rng = SeedableRng64::seed_from_u64(4);
        let mut imp = Imputer::new(rita_config(DatasetKind::Mgh, scale, attention), &mut rng);
        let report = imp.train(&split.train, &cfg, &mut rng);
        let mse = imp.evaluate(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng);
        table.add_row(vec![
            "MGH".into(),
            "Imput.".into(),
            "Fixed".into(),
            n.max(2).to_string(),
            fmt_f32(mse),
            fmt_secs(report.total_seconds()),
        ]);
    }
    table.print("Table 4: adaptive scheduling vs fixed N");
}
