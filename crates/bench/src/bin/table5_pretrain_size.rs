//! Table 5: the effect of the pretraining-set size — few-label accuracy after pretraining
//! on growing fractions of the unlabeled WISDM-style data.

use rand::SeedableRng;
use rita_bench::experiments::{generate_split, rita_config};
use rita_bench::table::fmt_pct;
use rita_bench::{Scale, Table};
use rita_core::attention::AttentionKind;
use rita_core::tasks::{finetune_classifier, pretrain, train_from_scratch, TrainConfig};
use rita_data::DatasetKind;
use rita_tensor::SeedableRng64;

fn main() {
    let scale = Scale::from_args();
    let kind = DatasetKind::Wisdm;
    let split = generate_split(kind, scale, 77);
    let few = split.train.few_labels_per_class(match scale {
        Scale::Reduced => 3,
        Scale::Full => 100,
    });
    let classes = kind.paper_spec().num_classes;
    let windows = scale.length(kind) / 5;
    let attention =
        AttentionKind::Group { epsilon: 2.0, initial_groups: (windows / 4).max(4), adaptive: true };
    let config = rita_config(kind, scale, attention);
    let cfg = TrainConfig {
        epochs: scale.epochs(),
        batch_size: scale.batch_size(),
        lr: 1e-3,
        ..Default::default()
    };

    let mut table = Table::new(&["Pretrain fraction", "Pretrain size", "Few-label accuracy"]);
    // No pretraining (scratch).
    let mut rng = SeedableRng64::seed_from_u64(9);
    let (mut scratch, _) = train_from_scratch(config, classes, &few, &cfg, &mut rng);
    table.add_row(vec![
        "0% (scratch)".into(),
        "0".into(),
        fmt_pct(scratch.evaluate(&split.valid, cfg.batch_size, &mut rng)),
    ]);

    for fraction in [0.2f32, 0.4, 0.6, 0.8, 1.0] {
        eprintln!("[table5] fraction {fraction}");
        let subset = split.train.take_fraction(fraction);
        let mut rng = SeedableRng64::seed_from_u64(9);
        let outcome = pretrain(config, &subset, &cfg, &mut rng);
        let (mut clf, _) = finetune_classifier(outcome.model, classes, &few, &cfg, &mut rng);
        let acc = clf.evaluate(&split.valid, cfg.batch_size, &mut rng);
        table.add_row(vec![
            format!("{:.0}%", fraction * 100.0),
            subset.len().to_string(),
            fmt_pct(acc),
        ]);
    }
    table.print("Table 5: increasing sizes of the pretraining set (WISDM-style data)");
}
