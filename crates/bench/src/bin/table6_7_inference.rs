//! Tables 6 and 7: inference time for classification and imputation across the attention
//! mechanisms and TST.

use rita_bench::experiments::{
    attention_variants, generate_split, run_classification, run_imputation, run_tst_classification,
    run_tst_imputation, would_oom_at_paper_scale,
};
use rita_bench::table::fmt_secs;
use rita_bench::{Scale, Table};
use rita_data::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let class_datasets =
        [DatasetKind::Wisdm, DatasetKind::Hhar, DatasetKind::Rwhar, DatasetKind::Ecg];
    let mut t6 =
        Table::new(&["Dataset", "TST", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    for kind in class_datasets {
        eprintln!("[table6] {}", kind.name());
        let split = generate_split(kind, scale, 91);
        let windows = scale.length(kind) / 5;
        let tst = run_tst_classification(kind, scale, &split, 2);
        let mut row = vec![kind.name().to_string(), fmt_secs(tst.inference_seconds)];
        for (_, attention) in attention_variants(windows) {
            let r = run_classification(kind, scale, attention, &split, 2);
            row.push(fmt_secs(r.inference_seconds));
        }
        t6.add_row(row);
    }
    t6.print("Table 6: inference time, classification (seconds over the validation set)");

    let mut t7 =
        Table::new(&["Dataset", "TST", "Vanilla", "Performer", "Linformer", "Group Attn."]);
    for kind in DatasetKind::MULTIVARIATE {
        eprintln!("[table7] {}", kind.name());
        let split = generate_split(kind, scale, 92);
        let windows = scale.length(kind) / 5;
        let paper_len = kind.paper_spec().length;
        let mut row = vec![kind.name().to_string()];
        if would_oom_at_paper_scale("TST", paper_len) {
            row.push("N/A".into());
        } else {
            row.push(fmt_secs(run_tst_imputation(kind, scale, &split, 2).inference_seconds));
        }
        for (name, attention) in attention_variants(windows) {
            if would_oom_at_paper_scale(name, paper_len) {
                row.push("N/A".into());
                continue;
            }
            let r = run_imputation(kind, scale, attention, &split, 2);
            row.push(fmt_secs(r.inference_seconds));
        }
        t7.add_row(row);
    }
    t7.print("Table 7: inference time, imputation (seconds over the validation set)");
}
