//! Shared experiment runners used by the table/figure binaries.
//!
//! Every runner takes an [`AttentionKind`] (or a baseline), trains on a generated dataset
//! split, and reports the metrics the paper's tables contain: accuracy or MSE, mean
//! training seconds per epoch, and inference seconds.

use rand::SeedableRng;
use rita_baselines::{Grail, GrailConfig, TstClassifier, TstConfig, TstImputer};
use rita_core::attention::AttentionKind;
use rita_core::model::RitaConfig;
use rita_core::scheduler::MemoryModel;
use rita_core::tasks::{timed, Classifier, Imputer, TrainConfig};
use rita_data::{DataSplit, DatasetKind, TimeseriesDataset};
use rita_tensor::SeedableRng64;

use crate::scale::Scale;

/// The attention variants compared throughout the evaluation, in the paper's column order.
pub fn attention_variants(max_windows: usize) -> Vec<(&'static str, AttentionKind)> {
    vec![
        ("Vanilla", AttentionKind::Vanilla),
        ("Performer", AttentionKind::Performer { features: 32 }),
        ("Linformer", AttentionKind::Linformer { proj_dim: (max_windows / 4).clamp(4, 64) }),
        (
            "Group Attn.",
            AttentionKind::Group {
                epsilon: 2.0,
                initial_groups: (max_windows / 4).clamp(4, 64),
                adaptive: true,
            },
        ),
    ]
}

/// Result of a classification experiment.
#[derive(Debug, Clone, Copy)]
pub struct ClassificationResult {
    /// Validation accuracy.
    pub accuracy: f32,
    /// Mean training seconds per epoch.
    pub epoch_seconds: f64,
    /// Inference seconds over the validation set.
    pub inference_seconds: f64,
}

/// Result of an imputation experiment.
#[derive(Debug, Clone, Copy)]
pub struct ImputationResult {
    /// Masked-position MSE on the validation set.
    pub mse: f32,
    /// Mean training seconds per epoch.
    pub epoch_seconds: f64,
    /// Inference seconds over the validation set.
    pub inference_seconds: f64,
}

/// Generates the train/validation split for `kind` at the given scale.
pub fn generate_split(kind: DatasetKind, scale: Scale, seed: u64) -> DataSplit {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let ds = TimeseriesDataset::generate_reduced(
        kind,
        scale.train_size(kind),
        scale.valid_size(kind),
        scale.length(kind),
        &mut rng,
    );
    ds.split()
}

/// Builds the RITA configuration used by the harness for a dataset.
pub fn rita_config(kind: DatasetKind, scale: Scale, attention: AttentionKind) -> RitaConfig {
    let spec = kind.paper_spec();
    RitaConfig {
        channels: spec.channels,
        max_len: scale.length(kind),
        window: 5,
        stride: 5,
        d_model: 32,
        n_heads: 2,
        n_layers: scale.layers(),
        ff_hidden: 64,
        dropout: 0.1,
        attention,
    }
}

fn train_cfg(scale: Scale) -> TrainConfig {
    TrainConfig {
        epochs: scale.epochs(),
        batch_size: scale.batch_size(),
        lr: 3e-3,
        ..Default::default()
    }
}

/// Trains and evaluates a RITA-architecture classifier with the given attention mechanism.
pub fn run_classification(
    kind: DatasetKind,
    scale: Scale,
    attention: AttentionKind,
    split: &DataSplit,
    seed: u64,
) -> ClassificationResult {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let config = rita_config(kind, scale, attention);
    let num_classes = kind.paper_spec().num_classes;
    let mut clf = Classifier::new(config, num_classes, &mut rng);
    let cfg = train_cfg(scale);
    let report = clf.train(&split.train, &cfg, &mut rng);
    let accuracy = clf.evaluate(&split.valid, cfg.batch_size, &mut rng);
    let inference_seconds = clf.inference_seconds(&split.valid, cfg.batch_size, &mut rng);
    ClassificationResult { accuracy, epoch_seconds: report.mean_epoch_seconds(), inference_seconds }
}

/// Trains and evaluates the TST baseline on the same split.
pub fn run_tst_classification(
    kind: DatasetKind,
    scale: Scale,
    split: &DataSplit,
    seed: u64,
) -> ClassificationResult {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let spec = kind.paper_spec();
    let len = scale.length(kind);
    let config = TstConfig {
        channels: spec.channels,
        max_len: len,
        d_model: 32,
        n_heads: 2,
        n_layers: scale.layers(),
        ff_hidden: 64,
        dropout: 0.1,
    };
    let mut clf = TstClassifier::new(config, len, spec.num_classes, &mut rng);
    let cfg = train_cfg(scale);
    let mut report = rita_core::tasks::TrainReport::default();
    let mut opt =
        rita_nn::optim::AdamW::new(rita_nn::Module::parameters(&clf), cfg.lr, cfg.weight_decay);
    for _ in 0..cfg.epochs {
        report.push(clf.train_epoch(&split.train, &mut opt, &cfg, &mut rng));
    }
    let accuracy = clf.evaluate(&split.valid, cfg.batch_size, &mut rng);
    let (_, inference_seconds) = timed(|| clf.evaluate(&split.valid, cfg.batch_size, &mut rng));
    ClassificationResult { accuracy, epoch_seconds: report.mean_epoch_seconds(), inference_seconds }
}

/// Trains and evaluates a RITA-architecture imputer with the given attention mechanism.
pub fn run_imputation(
    kind: DatasetKind,
    scale: Scale,
    attention: AttentionKind,
    split: &DataSplit,
    seed: u64,
) -> ImputationResult {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let config = rita_config(kind, scale, attention);
    let mut imp = Imputer::new(config, &mut rng);
    let cfg = train_cfg(scale);
    let report = imp.train(&split.train, &cfg, &mut rng);
    let mse = imp.evaluate(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng);
    let inference_seconds =
        imp.inference_seconds(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng);
    ImputationResult { mse, epoch_seconds: report.mean_epoch_seconds(), inference_seconds }
}

/// Trains and evaluates the TST baseline on imputation.
pub fn run_tst_imputation(
    kind: DatasetKind,
    scale: Scale,
    split: &DataSplit,
    seed: u64,
) -> ImputationResult {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let spec = kind.paper_spec();
    let config = TstConfig {
        channels: spec.channels,
        max_len: scale.length(kind),
        d_model: 32,
        n_heads: 2,
        n_layers: scale.layers(),
        ff_hidden: 64,
        dropout: 0.1,
    };
    let mut imp = TstImputer::new(config, &mut rng);
    let cfg = train_cfg(scale);
    let mut opt =
        rita_nn::optim::AdamW::new(rita_nn::Module::parameters(&imp), cfg.lr, cfg.weight_decay);
    let mut report = rita_core::tasks::TrainReport::default();
    for _ in 0..cfg.epochs {
        report.push(imp.train_epoch(&split.train, &mut opt, &cfg, &mut rng));
    }
    let mse = imp.evaluate(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng);
    let (_, inference_seconds) =
        timed(|| imp.evaluate(&split.valid, cfg.batch_size, cfg.mask_rate, &mut rng));
    ImputationResult { mse, epoch_seconds: report.mean_epoch_seconds(), inference_seconds }
}

/// Runs the GRAIL baseline on a univariate dataset, returning (accuracy, fit seconds).
pub fn run_grail(split: &DataSplit, seed: u64) -> (f32, f64) {
    let mut rng = SeedableRng64::seed_from_u64(seed);
    let grail = Grail::fit(GrailConfig::default(), &split.train, &mut rng);
    (grail.evaluate(&split.valid), grail.fit_seconds)
}

/// Whether training the given mechanism at *paper scale* (length, 8 layers, d=64, batch 1)
/// would exceed the 16 GB accelerator the paper used. Vanilla attention and TST store the
/// full `n × n` attention matrix, which is what runs out of memory in Table 2 / Fig. 4;
/// the estimate charges that quadratic term explicitly.
pub fn would_oom_at_paper_scale(name: &str, paper_length: usize) -> bool {
    let window = 5usize;
    let tokens = match name {
        // TST tokenises every timestamp.
        "TST" => paper_length,
        // RITA-architecture models tokenise windows.
        _ => paper_length / window,
    };
    let quadratic = matches!(name, "TST" | "Vanilla");
    if !quadratic {
        return false;
    }
    let m = MemoryModel {
        d_model: 64,
        layers: 8,
        heads: 2,
        ff_hidden: 256,
        channels: 21,
        window,
        stride: window,
        bytes_per_element: 4,
    };
    // Attention matrices retained per layer and head for the backward pass: raw scores,
    // softmax output, dropout mask, their gradients and framework workspace — roughly
    // eight n×n buffers in a PyTorch-style implementation (calibrated so the model
    // reproduces the boundary the paper reports: Vanilla trains at length 6 000 but not
    // at 8 000; TST and Vanilla both fail at 10 000).
    let attn_bytes = 8usize * m.heads * m.layers * tokens * tokens * m.bytes_per_element;
    // OOM is declared when the smallest batch the paper's training throughput needs does
    // not fit: one series for the per-timestamp TST, sixteen for window-level models.
    let min_batch = if name == "TST" { 1 } else { 16 };
    let linear_bytes = m.bytes_for(min_batch, paper_length, tokens);
    attn_bytes * min_batch + linear_bytes > 16 * 1024 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_matches_paper_order() {
        let v = attention_variants(100);
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].0, "Vanilla");
        assert_eq!(v[3].0, "Group Attn.");
    }

    #[test]
    fn split_generation_respects_scale() {
        let split = generate_split(DatasetKind::Hhar, Scale::Reduced, 0);
        assert_eq!(split.train.len(), Scale::Reduced.train_size(DatasetKind::Hhar));
        assert_eq!(split.valid.len(), Scale::Reduced.valid_size(DatasetKind::Hhar));
        assert_eq!(split.train.length(), Scale::Reduced.length(DatasetKind::Hhar));
    }

    #[test]
    fn rita_config_tracks_dataset_shape() {
        let c = rita_config(DatasetKind::Ecg, Scale::Reduced, AttentionKind::Vanilla);
        assert_eq!(c.channels, 12);
        assert_eq!(c.max_len, Scale::Reduced.length(DatasetKind::Ecg));
        c.validate();
    }

    #[test]
    fn oom_prediction_reproduces_the_papers_na_cells() {
        // Table 2: TST and Vanilla fail on MGH (length 10 000); Fig. 4: Vanilla cannot
        // handle sequences of 8 000 or longer but manages 2 000.
        assert!(would_oom_at_paper_scale("TST", 10_000));
        assert!(would_oom_at_paper_scale("Vanilla", 10_000));
        assert!(would_oom_at_paper_scale("Vanilla", 8_000));
        assert!(!would_oom_at_paper_scale("Vanilla", 2_000));
        assert!(!would_oom_at_paper_scale("Group Attn.", 10_000));
        assert!(!would_oom_at_paper_scale("Performer", 10_000));
        assert!(!would_oom_at_paper_scale("Linformer", 10_000));
    }
}
