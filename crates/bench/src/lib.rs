//! # rita-bench
//!
//! The benchmark harness that regenerates every table and figure of the RITA evaluation
//! (§6). Each binary in `src/bin/` prints one table/figure; the Criterion benches in
//! `benches/` cover the micro-level claims (attention cost vs. length, matmul-formulated
//! k-means vs. the pairwise loop).
//!
//! Absolute numbers differ from the paper — the substrate is a CPU tensor library, the
//! datasets are synthetic equivalents, and the default scale is reduced so the whole suite
//! runs in minutes — but the *shapes* the paper reports (who wins, how the speedup grows
//! with series length, adaptive-vs-fixed orderings, pretraining gains) are reproduced.
//! Pass `--full` to any binary for a larger, slower configuration.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod scale;
pub mod table;

pub use experiments::{
    run_classification, run_imputation, run_tst_classification, run_tst_imputation,
    ClassificationResult, ImputationResult,
};
pub use scale::Scale;
pub use table::Table;
