//! Experiment scale: reduced (default, minutes on a laptop CPU) vs. full (closer to the
//! paper's sizes; hours).

use rita_data::DatasetKind;

/// Controls dataset sizes, series lengths and epoch counts of the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes so every binary finishes in minutes on a CPU.
    Reduced,
    /// Larger sizes that approach the paper's configuration (still CPU-bound).
    Full,
}

impl Scale {
    /// Parses the scale from command-line arguments (`--full` switches to [`Scale::Full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Reduced
        }
    }

    /// Training epochs for supervised experiments.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Reduced => 5,
            Scale::Full => 10,
        }
    }

    /// Number of training samples per dataset.
    pub fn train_size(&self, kind: DatasetKind) -> usize {
        let base = match kind {
            DatasetKind::Ecg => 60,
            DatasetKind::Mgh => 12,
            _ => 120,
        };
        match self {
            Scale::Reduced => base,
            Scale::Full => base * 8,
        }
    }

    /// Number of validation samples per dataset.
    pub fn valid_size(&self, kind: DatasetKind) -> usize {
        (self.train_size(kind) / 5).max(4)
    }

    /// Series length used for each dataset (reduced from the paper's 200/2000/10000 so the
    /// CPU substrate finishes quickly, but keeping the same ordering short < medium < long).
    pub fn length(&self, kind: DatasetKind) -> usize {
        let (reduced, full) = match kind {
            DatasetKind::Ecg => (400, 2000),
            DatasetKind::Mgh => (1000, 10_000),
            _ => (200, 200),
        };
        match self {
            Scale::Reduced => reduced,
            Scale::Full => full,
        }
    }

    /// Mini-batch size.
    pub fn batch_size(&self) -> usize {
        match self {
            Scale::Reduced => 8,
            Scale::Full => 16,
        }
    }

    /// Encoder depth (the paper uses 8; the reduced scale uses 2 to keep CPU runs short).
    pub fn layers(&self) -> usize {
        match self {
            Scale::Reduced => 2,
            Scale::Full => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_is_smaller_than_full() {
        for kind in DatasetKind::MULTIVARIATE {
            assert!(Scale::Reduced.train_size(kind) <= Scale::Full.train_size(kind));
            assert!(Scale::Reduced.length(kind) <= Scale::Full.length(kind));
        }
        assert!(Scale::Reduced.epochs() <= Scale::Full.epochs());
        assert!(Scale::Reduced.layers() < Scale::Full.layers());
    }

    #[test]
    fn long_datasets_stay_longest() {
        for scale in [Scale::Reduced, Scale::Full] {
            assert!(scale.length(DatasetKind::Mgh) > scale.length(DatasetKind::Ecg));
            assert!(scale.length(DatasetKind::Ecg) > scale.length(DatasetKind::Wisdm));
        }
    }

    #[test]
    fn valid_size_is_a_fraction_of_train() {
        assert!(
            Scale::Reduced.valid_size(DatasetKind::Wisdm)
                < Scale::Reduced.train_size(DatasetKind::Wisdm)
        );
        assert!(Scale::Reduced.valid_size(DatasetKind::Mgh) >= 4);
    }
}
