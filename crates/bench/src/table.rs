//! Minimal fixed-width table printer for the harness binaries, so every experiment prints
//! rows in the same layout as the paper's tables.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must have the same number of cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:width$}  ", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a float with 4 decimal places (MSE-style columns).
pub fn fmt_f32(v: f32) -> String {
    format!("{v:.4}")
}

/// Formats a percentage with 2 decimal places.
pub fn fmt_pct(v: f32) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats seconds with 2 decimal places.
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Dataset", "Acc"]);
        t.add_row(vec!["WISDM".into(), "87.50%".into()]);
        t.add_row(vec!["A-very-long-name".into(), "1.00%".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].starts_with("WISDM"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f32(0.12341), "0.1234");
        assert_eq!(fmt_pct(0.875), "87.50%");
        assert_eq!(fmt_secs(1.239), "1.24");
    }
}
