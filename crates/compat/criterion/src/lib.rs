//! Offline stand-in for the subset of the `criterion` crate used by `rita-bench`.
//!
//! Provides the same macro / builder surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`])
//! backed by a plain wall-clock sampler: each benchmark is warmed up, then timed over
//! `sample_size` samples whose iteration counts are chosen so a sample lasts at least a
//! few milliseconds. Results (mean / min / max per iteration) are printed to stdout, so
//! `cargo bench` output remains grep-able for the perf tables in `CHANGES.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, group_name: name.to_string(), sample_size }
    }
}

/// Identifier of one benchmark within a group: a function name plus a parameter value.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `"vanilla/1024"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher, input);
        bencher.report(&self.group_name, &id.name);
        self
    }

    /// Runs one unparameterised benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        routine(&mut bencher);
        bencher.report(&self.group_name, name);
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing per-iteration durations over `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and iteration-count calibration: target >= 5 ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{name}: mean {} (min {}, max {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len()
        );
        RECORDS.lock().expect("bench record registry").push(BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            samples: self.samples.len(),
        });
    }
}

/// One recorded benchmark measurement (per-iteration statistics).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark group name (the `benchmark_group` argument).
    pub group: String,
    /// Benchmark name within the group (for parameterised benches, `"function/param"`).
    pub name: String,
    /// Mean per-iteration duration in nanoseconds.
    pub mean_ns: u128,
    /// Minimum per-iteration duration in nanoseconds.
    pub min_ns: u128,
    /// Number of timed samples behind the statistics.
    pub samples: usize,
}

static RECORDS: std::sync::Mutex<Vec<BenchRecord>> = std::sync::Mutex::new(Vec::new());

/// Drains every measurement recorded so far (in execution order).
///
/// Real criterion persists results under `target/criterion/`; this offline stand-in
/// instead hands the numbers back to the bench binary so it can emit machine-readable
/// summaries (e.g. the attention bench's `BENCH_attention.json`).
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().expect("bench record registry"))
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; accept and ignore them.
            $( $group(); )+
        }
    };
}
