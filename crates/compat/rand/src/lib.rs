//! Offline stand-in for the subset of the `rand` crate API used by the RITA workspace.
//!
//! The build environment has no network access to crates.io, so this crate provides the
//! exact trait surface the workspace consumes — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`] —
//! backed by fast deterministic generators. The statistical quality (splitmix64 /
//! xoshiro256**) is more than sufficient for parameter initialisation, data synthesis and
//! masking; none of the workspace's guarantees depend on the exact stream of any
//! particular upstream RNG, only on determinism under a fixed seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

// Mutable references forward, so `&mut impl Rng` can be passed by value where needed.
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types supporting uniform sampling from half-open / inclusive ranges
/// (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_float_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    };
}
impl_float_uniform!(f32);
impl_float_uniform!(f64);

macro_rules! impl_int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "empty range in gen_range");
                let span = end.wrapping_sub(start) as u64;
                // Unbiased bounded sample via rejection (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start.wrapping_add((v % span) as $t);
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, start, end.wrapping_add(1))
            }
        }
    };
}
impl_int_uniform!(usize);
impl_int_uniform!(u64);
impl_int_uniform!(u32);
impl_int_uniform!(i64);
impl_int_uniform!(i32);

/// Ranges a value of type `T` can be drawn from (mirrors `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice utilities (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// In-place random rearrangement of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let zone = u64::MAX - u64::MAX % span;
                let j = loop {
                    let v = rng.next_u64();
                    if v < zone {
                        break (v % span) as usize;
                    }
                };
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u64;
            let zone = u64::MAX - u64::MAX % span;
            let j = loop {
                let v = rng.next_u64();
                if v < zone {
                    break (v % span) as usize;
                }
            };
            Some(&self[j])
        }
    }
}

/// Internal helpers shared with the `rand_chacha` stand-in.
#[doc(hidden)]
pub mod __impl {
    /// splitmix64 step: stateless seed expansion.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            __impl::splitmix64(&mut self.0)
        }
    }

    #[test]
    fn float_samples_stay_in_unit_interval() {
        let mut r = TestRng(1);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(2.0f32..3.0);
            assert!((2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut r = TestRng(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = TestRng(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = TestRng(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
