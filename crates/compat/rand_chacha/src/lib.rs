//! Offline stand-in for `rand_chacha`: a real ChaCha8 block cipher driven as a
//! deterministic counter-mode RNG, exposing the [`ChaCha8Rng`] type name the workspace
//! uses. The key is expanded from the `u64` seed with splitmix64, so streams are fully
//! reproducible under a fixed seed (the only property the workspace relies on — no code
//! depends on byte-compatibility with the upstream crate's streams).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, block counter, nonce.
    state: [u32; 16],
    /// Buffered keystream words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = rand::__impl::splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
        state[4..12].copy_from_slice(&key);
        // words 12..16: block counter (0) and nonce (0).
        Self { state, buffer: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformity_of_low_bits() {
        // Catches accidental constant words in the keystream.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| r.next_u32().count_ones()).sum();
        let rate = ones as f64 / (1000.0 * 32.0);
        assert!((0.48..0.52).contains(&rate), "bit rate {rate}");
    }

    #[test]
    fn works_through_rand_trait_surface() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let x: f32 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let n = r.gen_range(0usize..10);
        assert!(n < 10);
    }
}
