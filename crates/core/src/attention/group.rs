//! Group attention — the paper's core contribution (§4).
//!
//! Windows are clustered by key similarity into `N` groups; attention is computed against
//! one *representative key* per group (the centroid), producing an `n × N` group attention
//! matrix instead of the `n × n` full matrix. Two ingredients make the result equal to
//! what the restored full matrix would give (§4.2, Appendix A.4):
//!
//! * **Group softmax** — each group's exponentiated score is weighted by the group size
//!   `count_k` in the normaliser, so the compressed matrix normalises exactly like the
//!   full one would.
//! * **Embedding aggregation** — member value vectors are summed per group *before* the
//!   final product, so each window still receives its own output embedding.
//!
//! The number of groups is managed by the adaptive scheduler (§5.1): it starts large and
//! shrinks whenever clusters can be merged without violating the user's error bound ε
//! (Lemmas 1 & 2), with a momentum update smoothing the trajectory.
//!
//! The grouping constants are applied **sparsely** by default: instead of materialising
//! the one-hot `(N, n)` averaging/summation matrices per `(batch, head)` and paying two
//! `O(N·n·d)` products, the representatives and aggregated values are computed with one
//! `segment_sum` each (`O(n·d)`, keeping the total grouped-attention cost dominated by
//! the `n×N` score/output products exactly as §4.4 intends). The dense matrix
//! formulation survives behind [`GroupAttentionConfig::dense_matrices`] as the
//! exactness oracle.

use super::Attention;
use crate::group::{group_key_blocks, Grouping};
use crate::scheduler::error_bound::{distance_threshold, key_ball_radius};
use crate::scheduler::merge::{mergeable_count, momentum_update};
use rita_nn::Var;
use rita_tensor::NdArray;

/// Configuration of a group-attention module.
#[derive(Debug, Clone, Copy)]
pub struct GroupAttentionConfig {
    /// Approximation error bound ε (> 1) handed to the adaptive scheduler.
    pub epsilon: f32,
    /// Number of groups to start with (clamped to the number of windows at run time).
    pub initial_groups: usize,
    /// Lower bound on the number of groups the scheduler may reach.
    pub min_groups: usize,
    /// Whether the adaptive scheduler is allowed to change the group count. With
    /// `adaptive = false` the module reproduces the paper's "fixed N" ablation baseline.
    pub adaptive: bool,
    /// k-means refinement iterations per forward pass (the paper uses a small constant).
    pub kmeans_iters: usize,
    /// Momentum α of the group-count update.
    pub momentum_alpha: f32,
    /// Use the dense `(N, n)` averaging/summation constant matrices instead of the
    /// sparse segment-sum pipeline. The dense formulation costs `O(N·n·d)` per
    /// `(batch, head)` in the two constant products and materialises `(b, h, N, n)`
    /// buffers; it is kept purely as the exactness oracle the property tests compare
    /// the sparse default against. Implies the unfused score/softmax chain.
    pub dense_matrices: bool,
    /// Compute the group softmax through the explicit `Q·Rᵀ → weighted softmax → ·Ṽ`
    /// chain instead of the fused streaming kernel (which folds the `count_k` weights
    /// into its online-softmax denominator and never materialises the `(b, h, n, N)`
    /// score matrix). Kept as the exactness oracle, mirroring `dense_matrices`.
    pub unfused: bool,
}

impl Default for GroupAttentionConfig {
    fn default() -> Self {
        Self {
            epsilon: 2.0,
            initial_groups: 64,
            min_groups: 2,
            adaptive: true,
            kmeans_iters: 2,
            momentum_alpha: 0.5,
            dense_matrices: false,
            unfused: false,
        }
    }
}

/// Observable state of a group-attention module, reported by the ablation experiments
/// (Table 4) and the scalability study (Fig. 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupAttentionStats {
    /// Group count used by the most recent forward pass.
    pub current_groups: usize,
    /// Clusters merged away (averaged over batch × heads) at the last scheduler update.
    pub last_merged: f32,
    /// Largest key-to-representative distance observed at the last forward pass.
    pub last_max_radius: f32,
    /// Distance threshold `d` derived from ε and the key-ball radius at the last pass.
    pub last_distance_threshold: f32,
    /// Number of forward passes performed.
    pub forward_calls: usize,
}

/// The group-attention mechanism with its adaptive scheduler state.
pub struct GroupAttention {
    /// Static configuration.
    pub config: GroupAttentionConfig,
    /// Real-valued group count maintained by the momentum update.
    n_groups: f32,
    /// Latest statistics.
    pub stats: GroupAttentionStats,
}

impl GroupAttention {
    /// Creates a group-attention module.
    pub fn new(config: GroupAttentionConfig) -> Self {
        assert!(config.epsilon > 1.0, "error bound epsilon must be > 1");
        assert!(config.initial_groups >= 1, "need at least one group");
        Self {
            config,
            n_groups: config.initial_groups as f32,
            stats: GroupAttentionStats::default(),
        }
    }

    /// Group count that the next forward pass will use for `n` windows.
    pub fn effective_groups(&self, n_windows: usize) -> usize {
        (self.n_groups.round() as usize).clamp(self.config.min_groups.min(n_windows), n_windows)
    }

    /// Current (real-valued) scheduler group count.
    pub fn scheduled_groups(&self) -> f32 {
        self.n_groups
    }

    /// Overrides the scheduler state (used by the fixed-N ablation harness).
    pub fn set_groups(&mut self, n: usize) {
        self.n_groups = n as f32;
    }

    /// Runs the k-means grouping for every `(batch, head)` pair through the shared
    /// grouping entry point ([`crate::group::group_key_blocks`]), which the tape-free
    /// inference engine also uses — identical clusterings by construction.
    fn group_all(&self, keys: &NdArray, n_groups: usize) -> Vec<Grouping> {
        group_key_blocks(keys, n_groups, self.config.kmeans_iters)
    }

    /// Runs the adaptive scheduler (§5.1) after a forward pass.
    fn update_scheduler(&mut self, groupings: &[Grouping], keys: &NdArray) {
        let radius = key_ball_radius(keys);
        let d = distance_threshold(self.config.epsilon, radius);
        self.stats.last_distance_threshold = d;
        self.stats.last_max_radius = groupings.iter().map(Grouping::max_radius).fold(0.0, f32::max);
        if !self.config.adaptive {
            self.stats.last_merged = 0.0;
            return;
        }
        let total_merged: usize = groupings.iter().map(|g| mergeable_count(g, d)).sum();
        let avg_merged = total_merged as f32 / groupings.len().max(1) as f32;
        self.stats.last_merged = avg_merged;
        let updated =
            momentum_update(self.n_groups, avg_merged.round() as usize, self.config.momentum_alpha);
        // Persistent state is floored at `min_groups` but deliberately NOT clamped to
        // this series' window count: the window count is a property of one series, not
        // of the schedule, and since the momentum update can never raise the count
        // again, absorbing one short series would permanently collapse the schedule for
        // every longer series that follows. `effective_groups` clamps the per-forward
        // count instead. (The old ceiling also made `f32::clamp` panic — min > max —
        // whenever a series had fewer windows than `min_groups`.)
        self.n_groups = updated.max(self.config.min_groups as f32);
    }
}

impl Attention for GroupAttention {
    fn forward(&mut self, q: &Var, k: &Var, v: &Var) -> Var {
        let shape = q.shape();
        assert_eq!(shape.len(), 4, "group attention expects (batch, heads, windows, head_dim)");
        let (b, h, n, dh) = (shape[0], shape[1], shape[2], shape[3]);
        let n_groups = self.effective_groups(n);

        // 1. Group the (detached) keys; grouping is a discrete decision, so no gradient
        //    flows through the cluster assignment itself — but the representative keys
        //    are centroids (per-group means of K), so gradients still reach K.
        let keys_detached = k.to_array();
        let groupings = self.group_all(&keys_detached, n_groups);

        // Per-group member counts (block-major over batch×heads).
        let mut counts_flat = Vec::with_capacity(b * h * n_groups);
        for g in &groupings {
            counts_flat.extend(g.counts.iter().map(|&c| c as f32));
        }

        // 2. Representative keys R = S · K and aggregated values Ṽ = M · V, both
        //    (batch, heads, N, dh). The default sparse pipeline realises them as one
        //    segment sum per tensor — O(n·dh) per (batch, head) with no intermediate —
        //    while the dense oracle materialises the one-hot (N, n) matrices and pays
        //    the O(N·n·dh) products the paper's matrix formulation describes.
        let (representatives, aggregated_values) = if self.config.dense_matrices {
            let mut avg = Vec::with_capacity(b * h * n_groups * n);
            let mut sum = Vec::with_capacity(b * h * n_groups * n);
            for g in &groupings {
                avg.extend_from_slice(g.averaging_matrix().as_slice());
                sum.extend_from_slice(g.sum_matrix().as_slice());
            }
            let avg = NdArray::from_vec(avg, &[b, h, n_groups, n]).expect("avg matrix batch");
            let sum = NdArray::from_vec(sum, &[b, h, n_groups, n]).expect("sum matrix batch");
            (Var::constant(avg).matmul(k), Var::constant(sum).matmul(v))
        } else {
            let inv_counts = NdArray::from_vec(
                counts_flat.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                &[b, h, n_groups, 1],
            )
            .expect("inverse counts batch");
            // Flat group assignments, block-major over batch×heads — the layout
            // `segment_sum` consumes. One shared allocation feeds both segment sums
            // (and their backward closures) instead of two copies.
            let mut segments = Vec::with_capacity(b * h * n);
            for g in &groupings {
                segments.extend_from_slice(&g.assignments);
            }
            let segments: std::sync::Arc<[usize]> = segments.into();
            let representatives =
                k.segment_sum(segments.clone(), n_groups).mul(&Var::constant(inv_counts));
            (representatives, v.segment_sum(segments, n_groups))
        };

        // 3–5. Score matrix P̃ = Q · Rᵀ / √d_k, group softmax (Eq. 3), and the final
        //    embedding-aggregation product O = Ã · Ṽ. The default is the fused
        //    streaming kernel: the `count_k` weights are folded into its online-softmax
        //    denominator, so the `(b, h, n, N)` score matrix is never materialised and
        //    the backward recomputes per-tile scores. The oracle paths keep the explicit
        //    chain, computed stably by subtracting the detached row max — the shift
        //    cancels between numerator and denominator, so the result (and its gradient)
        //    is exactly the unshifted group softmax.
        let scale = 1.0 / (dh as f32).sqrt();
        let output = if self.config.dense_matrices || self.config.unfused {
            let counts =
                NdArray::from_vec(counts_flat, &[b, h, 1, n_groups]).expect("counts batch");
            // The 1/√d is folded into the score product (one kernel pass, no scaled
            // temporary).
            let scores = q.matmul_nt_scaled(&representatives, scale);
            let row_max = scores.to_array().max_axis(3, true).expect("row max");
            let shifted = scores.sub(&Var::constant(row_max));
            let exp = shifted.exp();
            let denom = exp.mul(&Var::constant(counts)).sum_axis(3);
            let attention = exp.div(&denom);
            attention.matmul(&aggregated_values)
        } else {
            let weights = NdArray::from_vec(counts_flat, &[b, h, n_groups]).expect("counts batch");
            q.fused_group_attention(&representatives, &aggregated_values, scale, weights)
        };

        // 6. Adaptive scheduling for the next iteration.
        self.stats.current_groups = n_groups;
        self.stats.forward_calls += 1;
        self.update_scheduler(&groupings, &keys_detached);

        output
    }

    fn name(&self) -> &'static str {
        "Group Attn."
    }

    fn group_stats(&self) -> Option<GroupAttentionStats> {
        Some(self.stats)
    }

    fn scheduled_group_target(&self) -> Option<f32> {
        Some(self.scheduled_groups())
    }

    fn set_group_count(&mut self, n: usize) {
        self.set_groups(n);
    }

    fn restore_scheduled_target(&mut self, target: f32) {
        self.n_groups = target.max(self.config.min_groups as f32).max(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::vanilla::VanillaAttention;
    use rand::SeedableRng;
    use rita_tensor::{allclose, NdArray, SeedableRng64};

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    /// Builds keys with exactly `groups` distinct rows repeated across `n` windows, so the
    /// grouping is exact and group attention must equal vanilla attention (Lemma 3 /
    /// Appendix A.4).
    fn duplicated_keys(
        b: usize,
        h: usize,
        n: usize,
        dh: usize,
        groups: usize,
        seed: u64,
    ) -> NdArray {
        let mut r = rng(seed);
        let prototypes = NdArray::randn(&[groups, dh], 1.0, &mut r);
        let mut data = Vec::with_capacity(b * h * n * dh);
        for _ in 0..b * h {
            for i in 0..n {
                let p = i % groups;
                data.extend_from_slice(&prototypes.as_slice()[p * dh..(p + 1) * dh]);
            }
        }
        NdArray::from_vec(data, &[b, h, n, dh]).unwrap()
    }

    #[test]
    fn exactly_matches_vanilla_when_keys_are_shared() {
        let (b, h, n, dh, groups) = (2, 2, 12, 4, 3);
        let mut r = rng(1);
        let q = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut r));
        let k = Var::constant(duplicated_keys(b, h, n, dh, groups, 2));
        let v = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut r));

        let mut vanilla = VanillaAttention::new();
        let exact = vanilla.forward(&q, &k, &v).to_array();

        let mut group = GroupAttention::new(GroupAttentionConfig {
            initial_groups: groups,
            adaptive: false,
            kmeans_iters: 8,
            ..Default::default()
        });
        let approx = group.forward(&q, &k, &v).to_array();

        assert!(
            allclose(exact.as_slice(), approx.as_slice(), 1e-4, 1e-4),
            "group attention must equal vanilla attention when keys are exactly shared"
        );
    }

    #[test]
    fn output_shape_and_finiteness() {
        let mut r = rng(3);
        let q = Var::constant(NdArray::randn(&[2, 2, 16, 8], 1.0, &mut r));
        let k = Var::constant(NdArray::randn(&[2, 2, 16, 8], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[2, 2, 16, 8], 1.0, &mut r));
        let mut attn =
            GroupAttention::new(GroupAttentionConfig { initial_groups: 4, ..Default::default() });
        let o = attn.forward(&q, &k, &v);
        assert_eq!(o.shape(), vec![2, 2, 16, 8]);
        assert!(!o.to_array().has_non_finite());
        assert_eq!(attn.stats.current_groups, 4);
        assert_eq!(attn.stats.forward_calls, 1);
    }

    #[test]
    fn close_to_vanilla_for_clustered_keys() {
        // Keys form tight clusters (periodic windows): the approximation should be close
        // even though keys are not exactly shared.
        let (b, h, n, dh) = (1, 1, 24, 4);
        let mut r = rng(5);
        let prototypes = NdArray::randn(&[4, dh], 1.0, &mut r);
        let mut data = Vec::new();
        for i in 0..n {
            let p = i % 4;
            let noise = NdArray::randn(&[dh], 0.005, &mut r);
            for j in 0..dh {
                data.push(prototypes.as_slice()[p * dh + j] + noise.as_slice()[j]);
            }
        }
        let k = Var::constant(NdArray::from_vec(data, &[b, h, n, dh]).unwrap());
        let q = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[b, h, n, dh], 1.0, &mut r));

        let exact = VanillaAttention::new().forward(&q, &k, &v).to_array();
        let mut group = GroupAttention::new(GroupAttentionConfig {
            initial_groups: 4,
            adaptive: false,
            kmeans_iters: 8,
            ..Default::default()
        });
        let approx = group.forward(&q, &k, &v).to_array();
        let max_err = exact
            .as_slice()
            .iter()
            .zip(approx.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.2, "max err {max_err}");
    }

    #[test]
    fn gradients_flow_to_q_k_v() {
        let mut r = rng(7);
        let q = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        let k = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        let v = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        let mut attn =
            GroupAttention::new(GroupAttentionConfig { initial_groups: 3, ..Default::default() });
        attn.forward(&q, &k, &v).sum_all().backward();
        for (name, p) in [("q", &q), ("k", &k), ("v", &v)] {
            let g = p.grad().unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(g.norm() > 0.0, "zero grad for {name}");
            assert!(!g.has_non_finite(), "non-finite grad for {name}");
        }
    }

    #[test]
    fn adaptive_scheduler_shrinks_groups_for_redundant_keys() {
        // All keys nearly identical: the scheduler should merge aggressively.
        let mut r = rng(9);
        let base = NdArray::randn(&[1, 1, 1, 4], 1.0, &mut r);
        let mut data = Vec::new();
        for _ in 0..32 {
            for j in 0..4 {
                data.push(base.as_slice()[j] + 0.001 * (j as f32));
            }
        }
        let k = Var::constant(NdArray::from_vec(data, &[1, 1, 32, 4]).unwrap());
        let q = Var::constant(NdArray::randn(&[1, 1, 32, 4], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[1, 1, 32, 4], 1.0, &mut r));
        let mut attn = GroupAttention::new(GroupAttentionConfig {
            initial_groups: 16,
            adaptive: true,
            momentum_alpha: 1.0,
            kmeans_iters: 4,
            ..Default::default()
        });
        let before = attn.effective_groups(32);
        let _ = attn.forward(&q, &k, &v);
        let after = attn.effective_groups(32);
        assert!(after < before, "scheduler should merge redundant groups: {before} -> {after}");
        assert!(attn.stats.last_merged > 0.0);
    }

    #[test]
    fn fixed_mode_keeps_group_count() {
        let mut r = rng(11);
        let q = Var::constant(NdArray::randn(&[1, 1, 16, 4], 1.0, &mut r));
        let k = Var::constant(NdArray::full(&[1, 1, 16, 4], 0.5));
        let v = Var::constant(NdArray::randn(&[1, 1, 16, 4], 1.0, &mut r));
        let mut attn = GroupAttention::new(GroupAttentionConfig {
            initial_groups: 8,
            adaptive: false,
            ..Default::default()
        });
        for _ in 0..3 {
            let _ = attn.forward(&q, &k, &v);
        }
        assert_eq!(attn.effective_groups(16), 8);
        attn.set_groups(4);
        assert_eq!(attn.effective_groups(16), 4);
    }

    #[test]
    #[should_panic(expected = "epsilon must be > 1")]
    fn rejects_invalid_epsilon() {
        let _ = GroupAttention::new(GroupAttentionConfig { epsilon: 0.5, ..Default::default() });
    }

    /// Forces the multi-worker grouping fan-out (which the single-CPU CI box never
    /// triggers through `group_all`'s budget) and checks it reproduces the serial
    /// clusterings block for block. k-means is deterministic, so equality is exact.
    #[test]
    fn parallel_grouping_matches_serial() {
        use crate::group::group_key_blocks_threaded;
        let (b, h, n, dh, groups) = (2, 3, 24, 4, 4);
        let keys = duplicated_keys(b, h, n, dh, groups, 51);
        let serial = group_key_blocks_threaded(&keys, groups, 4, 1);
        for threads in [2usize, 4, 6] {
            let parallel = group_key_blocks_threaded(&keys, groups, 4, threads);
            assert_eq!(parallel.len(), serial.len());
            for (block, (p, s)) in parallel.iter().zip(&serial).enumerate() {
                assert_eq!(p.assignments, s.assignments, "block {block}, {threads} threads");
                assert_eq!(p.counts, s.counts, "block {block}, {threads} threads");
                assert_eq!(p.centers, s.centers, "block {block}, {threads} threads");
            }
        }
    }

    /// Regression: a series with fewer windows than `min_groups` (here a single window
    /// against the default `min_groups = 2`) used to panic inside `update_scheduler` —
    /// `f32::clamp` aborts when min > max.
    #[test]
    fn adaptive_forward_survives_series_shorter_than_min_groups() {
        let mut r = rng(31);
        let dh = 8;
        let q = Var::constant(NdArray::randn(&[1, 1, 1, dh], 1.0, &mut r));
        let k = Var::constant(NdArray::randn(&[1, 1, 1, dh], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[1, 1, 1, dh], 1.0, &mut r));
        let mut attn = GroupAttention::new(GroupAttentionConfig::default());
        assert!(attn.config.adaptive && attn.config.min_groups > 1);
        for _ in 0..3 {
            let o = attn.forward(&q, &k, &v);
            assert_eq!(o.shape(), vec![1, 1, 1, dh]);
            assert!(!o.to_array().has_non_finite());
        }
        assert_eq!(attn.effective_groups(1), 1);
        assert_eq!(attn.stats.current_groups, 1);
        // The degenerate series must not be absorbed into the persistent scheduler
        // state: a later long series still gets the originally scheduled group count,
        // not one collapsed to the short series' window count (the momentum update can
        // never raise it back).
        assert_eq!(attn.scheduled_groups(), attn.config.initial_groups as f32);
        assert_eq!(attn.effective_groups(256), attn.config.initial_groups);
    }
}
