//! Linformer attention (Wang et al., 2020) — the second approximate-attention baseline of
//! the RITA evaluation.
//!
//! Keys and values are projected along the *sequence* dimension with learned matrices
//! `E, F ∈ R^{k×n}` before the usual softmax attention, exploiting the empirical
//! low-rankness of attention matrices. The RITA paper notes that the extra projection
//! parameters make Linformer prone to overfitting in the few-label regime, which the
//! pretrain/finetune experiment (Table 3) reproduces.

use super::Attention;
use rand::Rng;
use rita_nn::{Module, ParamVisitor, Var};
use rita_tensor::NdArray;

/// Low-rank projected attention.
pub struct LinformerAttention {
    /// Key projection `E` of shape `(proj_dim, max_windows)`.
    pub e_proj: Var,
    /// Value projection `F` of shape `(proj_dim, max_windows)`.
    pub f_proj: Var,
    max_windows: usize,
    proj_dim: usize,
}

impl LinformerAttention {
    /// Creates the mechanism for sequences of at most `max_windows` windows, projecting
    /// the sequence dimension down to `proj_dim`.
    pub fn new(max_windows: usize, proj_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(proj_dim > 0 && max_windows > 0, "invalid Linformer dimensions");
        let std = 1.0 / (max_windows as f32).sqrt();
        Self {
            e_proj: Var::parameter(NdArray::randn(&[proj_dim, max_windows], std, rng)),
            f_proj: Var::parameter(NdArray::randn(&[proj_dim, max_windows], std, rng)),
            max_windows,
            proj_dim,
        }
    }

    /// Projected sequence length.
    pub fn proj_dim(&self) -> usize {
        self.proj_dim
    }

    /// Maximum supported number of windows.
    pub fn max_windows(&self) -> usize {
        self.max_windows
    }
}

impl Attention for LinformerAttention {
    fn forward(&mut self, q: &Var, k: &Var, v: &Var) -> Var {
        let shape = k.shape();
        let n = shape[2];
        assert!(
            n <= self.max_windows,
            "sequence of {n} windows exceeds the Linformer projection size {}",
            self.max_windows
        );
        let dk = *q.shape().last().expect("head dim") as f32;
        // Use the first n columns of the projections for shorter sequences.
        let e = self.e_proj.slice_axis(1, 0, n);
        let f = self.f_proj.slice_axis(1, 0, n);
        let k_proj = e.matmul(k); // (B,H,proj,dh) via broadcast of the 2-D projection
        let v_proj = f.matmul(v);
        // 1/√d folded into the score product — no scaled (b, h, n, proj) temporary.
        let scores = q.matmul_nt_scaled(&k_proj, 1.0 / dk.sqrt());
        scores.softmax_last().matmul(&v_proj)
    }

    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.leaf("e_proj", &self.e_proj);
        v.leaf("f_proj", &self.f_proj);
    }

    fn name(&self) -> &'static str {
        "Linformer"
    }
}

impl Module for LinformerAttention {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        Attention::visit_params(self, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn output_shape_and_projection_size() {
        let mut r = rng(0);
        let mut attn = LinformerAttention::new(32, 8, &mut r);
        assert_eq!(attn.proj_dim(), 8);
        assert_eq!(attn.max_windows(), 32);
        let q = Var::constant(NdArray::randn(&[2, 2, 20, 4], 1.0, &mut r));
        let k = Var::constant(NdArray::randn(&[2, 2, 20, 4], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[2, 2, 20, 4], 1.0, &mut r));
        let o = attn.forward(&q, &k, &v);
        assert_eq!(o.shape(), vec![2, 2, 20, 4]);
        assert!(!o.to_array().has_non_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds the Linformer projection size")]
    fn rejects_sequences_longer_than_max() {
        let mut r = rng(1);
        let mut attn = LinformerAttention::new(8, 4, &mut r);
        let q = Var::constant(NdArray::randn(&[1, 1, 16, 4], 1.0, &mut r));
        let _ = attn.forward(&q, &q, &q);
    }

    #[test]
    fn has_trainable_projection_parameters() {
        let mut r = rng(2);
        let attn = LinformerAttention::new(16, 4, &mut r);
        let params = Attention::parameters(&attn);
        assert_eq!(params.len(), 2);
        assert_eq!(Module::num_parameters(&attn), 2 * 4 * 16);
        assert!(params.iter().all(|p| p.requires_grad()));
    }

    #[test]
    fn gradients_reach_inputs_and_projections() {
        let mut r = rng(3);
        let mut attn = LinformerAttention::new(12, 4, &mut r);
        let q = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        let k = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        let v = Var::parameter(NdArray::randn(&[1, 2, 10, 4], 0.5, &mut r));
        attn.forward(&q, &k, &v).sum_all().backward();
        assert!(q.grad().unwrap().norm() > 0.0);
        assert!(k.grad().unwrap().norm() > 0.0);
        assert!(v.grad().unwrap().norm() > 0.0);
        assert!(attn.e_proj.grad().unwrap().norm() > 0.0);
        assert!(attn.f_proj.grad().unwrap().norm() > 0.0);
        // Columns of E beyond the sequence length receive zero gradient (they were sliced off).
        let ge = attn.e_proj.grad().unwrap();
        for row in 0..4 {
            for col in 10..12 {
                assert_eq!(ge.get(&[row, col]).unwrap(), 0.0);
            }
        }
    }
}
