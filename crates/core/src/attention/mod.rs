//! Attention mechanisms.
//!
//! The RITA encoder is parameterised over the attention mechanism so the paper's
//! comparisons can be run on an otherwise identical architecture (exactly how the
//! evaluation constructs its `Vanilla`, `Performer`, `Linformer` and `Group Attn.`
//! baselines). All mechanisms consume pre-projected, head-split tensors of shape
//! `(batch, heads, windows, head_dim)` and produce the same shape.

pub mod group;
pub mod linformer;
pub mod performer;
pub mod vanilla;

use rita_nn::{BufferVisitor, BufferVisitorMut, ParamPath, ParamVisitor, Var};

pub use group::{GroupAttention, GroupAttentionConfig, GroupAttentionStats};
pub use linformer::LinformerAttention;
pub use performer::PerformerAttention;
pub use vanilla::VanillaAttention;

/// Which attention mechanism an encoder layer uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttentionKind {
    /// Exact softmax attention (quadratic in the number of windows).
    Vanilla,
    /// RITA's group attention with the adaptive scheduler (the paper's contribution).
    Group {
        /// Approximation error bound ε (> 1) given to the adaptive scheduler.
        epsilon: f32,
        /// Initial number of groups.
        initial_groups: usize,
        /// Whether the adaptive scheduler may shrink the number of groups.
        adaptive: bool,
    },
    /// Performer (FAVOR+ positive random features).
    Performer {
        /// Number of random features.
        features: usize,
    },
    /// Linformer (learned low-rank projection of keys and values along the sequence).
    Linformer {
        /// Projected sequence length.
        proj_dim: usize,
    },
}

impl AttentionKind {
    /// Short name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttentionKind::Vanilla => "Vanilla",
            AttentionKind::Group { .. } => "Group Attn.",
            AttentionKind::Performer { .. } => "Performer",
            AttentionKind::Linformer { .. } => "Linformer",
        }
    }

    /// The paper's default group-attention configuration (ε = 2, adaptive scheduling on).
    pub fn default_group() -> Self {
        AttentionKind::Group { epsilon: 2.0, initial_groups: 64, adaptive: true }
    }
}

/// An attention mechanism operating on head-split projections.
pub trait Attention {
    /// Computes attention outputs. `q`, `k`, `v` all have shape
    /// `(batch, heads, windows, head_dim)`; the output has the same shape as `v`.
    fn forward(&mut self, q: &Var, k: &Var, v: &Var) -> Var;

    /// Visits the mechanism's own trainable parameters by name (most have none;
    /// Linformer reports its projection matrices). Part of the named module tree that
    /// checkpoints and optimisers key off.
    fn visit_params(&self, _visitor: &mut ParamVisitor<'_>) {}

    /// Visits non-trainable state a checkpoint must persist (Performer's random-feature
    /// matrix). Default: none.
    fn visit_buffers(&self, _visitor: &mut BufferVisitor<'_>) {}

    /// Mutable counterpart of [`Attention::visit_buffers`], used on checkpoint restore.
    fn visit_buffers_mut(&mut self, _visitor: &mut BufferVisitorMut<'_>) {}

    /// Trainable parameters owned by the mechanism itself, derived from
    /// [`Attention::visit_params`].
    fn parameters(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut f = |_: &ParamPath, var: &Var| out.push(var.clone());
        self.visit_params(&mut ParamVisitor::new(&mut f));
        out
    }

    /// Mechanism name for reporting.
    fn name(&self) -> &'static str;

    /// Scheduler statistics, available only for group attention.
    fn group_stats(&self) -> Option<GroupAttentionStats> {
        None
    }

    /// The scheduler's persistent (real-valued) group-count target, available only for
    /// group attention. Unlike [`GroupAttentionStats::current_groups`] — which is the
    /// count the *last* forward pass used, clamped to that batch's window count — this
    /// does not depend on which batch ran last, so it is the right input for batch-size
    /// planning over mixed-length buckets.
    fn scheduled_group_target(&self) -> Option<f32> {
        None
    }

    /// Overrides the group count (no-op for non-group mechanisms). Used by the
    /// fixed-N ablation (Table 4).
    fn set_group_count(&mut self, _n: usize) {}

    /// Restores the scheduler's persistent real-valued group-count target from a
    /// checkpoint (no-op for non-group mechanisms). Unlike
    /// [`Attention::set_group_count`], this sets the exact fractional state the momentum
    /// update left behind, so resumed training continues step-for-step.
    fn restore_scheduled_target(&mut self, _target: f32) {}
}

/// Builds the configured attention mechanism for one encoder layer.
///
/// `max_windows` is the largest number of windows the layer will see (needed by
/// Linformer's fixed-size projection); `head_dim` is the per-head feature size.
pub fn build_attention(
    kind: AttentionKind,
    max_windows: usize,
    head_dim: usize,
    rng: &mut impl rand::Rng,
) -> Box<dyn Attention> {
    match kind {
        AttentionKind::Vanilla => Box::new(VanillaAttention::new()),
        AttentionKind::Group { epsilon, initial_groups, adaptive } => {
            Box::new(GroupAttention::new(GroupAttentionConfig {
                epsilon,
                initial_groups,
                adaptive,
                ..GroupAttentionConfig::default()
            }))
        }
        AttentionKind::Performer { features } => {
            Box::new(PerformerAttention::new(head_dim, features, rng))
        }
        AttentionKind::Linformer { proj_dim } => {
            Box::new(LinformerAttention::new(max_windows, proj_dim, rng))
        }
    }
}

/// Splits `(batch, windows, d_model)` into `(batch, heads, windows, d_model / heads)`.
pub fn split_heads(x: &Var, heads: usize) -> Var {
    let shape = x.shape();
    assert_eq!(shape.len(), 3, "split_heads expects (batch, windows, d_model)");
    let (b, n, d) = (shape[0], shape[1], shape[2]);
    assert_eq!(d % heads, 0, "d_model {d} not divisible by heads {heads}");
    x.reshape(&[b, n, heads, d / heads]).permute(&[0, 2, 1, 3])
}

/// Inverse of [`split_heads`]: `(batch, heads, windows, head_dim)` → `(batch, windows, d_model)`.
pub fn merge_heads(x: &Var) -> Var {
    let shape = x.shape();
    assert_eq!(shape.len(), 4, "merge_heads expects (batch, heads, windows, head_dim)");
    let (b, h, n, dh) = (shape[0], shape[1], shape[2], shape[3]);
    x.permute(&[0, 2, 1, 3]).reshape(&[b, n, h * dh])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::{NdArray, SeedableRng64};

    #[test]
    fn split_and_merge_heads_roundtrip() {
        let mut rng = SeedableRng64::seed_from_u64(0);
        let x = Var::constant(NdArray::randn(&[2, 5, 8], 1.0, &mut rng));
        let split = split_heads(&x, 4);
        assert_eq!(split.shape(), vec![2, 4, 5, 2]);
        let merged = merge_heads(&split);
        assert_eq!(merged.shape(), vec![2, 5, 8]);
        assert_eq!(merged.to_array(), x.to_array());
    }

    #[test]
    fn split_heads_places_head_features_contiguously() {
        // d_model = 4, heads = 2: head 0 must see features 0..2 of every window.
        let x = Var::constant(NdArray::arange(0.0, 1.0, 8).reshape(&[1, 2, 4]).unwrap());
        let s = split_heads(&x, 2);
        // window 0 head 0 -> [0, 1]; window 1 head 0 -> [4, 5]
        assert_eq!(s.to_array().get(&[0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(s.to_array().get(&[0, 0, 1, 1]).unwrap(), 5.0);
        // head 1 -> features 2..4
        assert_eq!(s.to_array().get(&[0, 1, 0, 0]).unwrap(), 2.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(AttentionKind::Vanilla.name(), "Vanilla");
        assert_eq!(AttentionKind::default_group().name(), "Group Attn.");
        assert_eq!(AttentionKind::Performer { features: 16 }.name(), "Performer");
        assert_eq!(AttentionKind::Linformer { proj_dim: 32 }.name(), "Linformer");
    }

    #[test]
    fn build_attention_dispatches() {
        let mut rng = SeedableRng64::seed_from_u64(1);
        for kind in [
            AttentionKind::Vanilla,
            AttentionKind::default_group(),
            AttentionKind::Performer { features: 8 },
            AttentionKind::Linformer { proj_dim: 4 },
        ] {
            let a = build_attention(kind, 16, 8, &mut rng);
            assert_eq!(a.name(), kind.name());
        }
    }
}
