//! Performer attention (Choromanski et al., 2020) — one of the two approximate-attention
//! baselines the RITA paper compares against.
//!
//! The softmax kernel is approximated with positive orthogonal-ish random features
//! (FAVOR+): `exp(qᵀk) ≈ φ(q)ᵀ φ(k)` with `φ(x) = exp(ωᵀx − ‖x‖²/2) / √m`. Changing the
//! multiplication order then makes attention linear in the sequence length.

use super::Attention;
use rand::Rng;
use rita_nn::{BufferVisitor, BufferVisitorMut, Var};
use rita_tensor::NdArray;

/// FAVOR+ attention with a fixed random-feature matrix.
pub struct PerformerAttention {
    /// Random feature matrix ω of shape `(head_dim, features)` (not trainable).
    omega: NdArray,
    features: usize,
}

impl PerformerAttention {
    /// Creates the mechanism with `features` random features for `head_dim`-dimensional heads.
    pub fn new(head_dim: usize, features: usize, rng: &mut impl Rng) -> Self {
        assert!(features > 0, "need at least one random feature");
        let omega = NdArray::randn(&[head_dim, features], 1.0, rng);
        Self { omega, features }
    }

    /// Number of random features.
    pub fn num_features(&self) -> usize {
        self.features
    }

    /// Positive random-feature map with a detached global stabiliser.
    fn feature_map(&self, x: &Var) -> Var {
        let logits = x.matmul(&Var::constant(self.omega.clone()));
        let sq_norm = x.square().sum_axis(3).scale(0.5);
        let raw = logits.sub(&sq_norm);
        // Global (scalar) stabiliser keeps exp() finite; a per-tensor constant shift
        // rescales every feature vector identically, so the normalised attention output
        // is unchanged.
        let stab = raw.to_array().max_all();
        raw.add_scalar(-stab).exp().scale(1.0 / (self.features as f32).sqrt())
    }
}

impl Attention for PerformerAttention {
    fn forward(&mut self, q: &Var, k: &Var, v: &Var) -> Var {
        let dk = *q.shape().last().expect("head dim") as f32;
        // Fold the 1/√d_k scaling into the inputs so φ(q)ᵀφ(k) approximates exp(qᵀk/√d_k).
        let scale = dk.powf(-0.25);
        let phi_q = self.feature_map(&q.scale(scale));
        let phi_k = self.feature_map(&k.scale(scale));
        // (B,H,m,dh) — the O(n·m·d) contraction that replaces the O(n²·d) score matrix.
        let kv = phi_k.transpose_last2().matmul(v);
        let numerator = phi_q.matmul(&kv);
        // Denominator: φ(q)ᵀ Σ_j φ(k_j).
        let phi_k_sum = phi_k.sum_axis(2); // (B,H,1,m)
        let denominator = phi_q.matmul_nt(&phi_k_sum).add_scalar(1e-6); // (B,H,n,1)
        numerator.div(&denominator)
    }

    fn name(&self) -> &'static str {
        "Performer"
    }

    // ω is drawn once at construction and never trained, but the approximation it
    // defines *is* the model: a checkpointed Performer only reproduces its outputs in a
    // fresh process if ω rides along as a buffer.
    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.leaf("omega", &self.omega);
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.leaf("omega", &mut self.omega);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::vanilla::VanillaAttention;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn output_shape_and_finiteness() {
        let mut r = rng(0);
        let q = Var::constant(NdArray::randn(&[2, 2, 10, 4], 1.0, &mut r));
        let k = Var::constant(NdArray::randn(&[2, 2, 10, 4], 1.0, &mut r));
        let v = Var::constant(NdArray::randn(&[2, 2, 10, 4], 1.0, &mut r));
        let mut attn = PerformerAttention::new(4, 32, &mut r);
        let o = attn.forward(&q, &k, &v);
        assert_eq!(o.shape(), vec![2, 2, 10, 4]);
        assert!(!o.to_array().has_non_finite());
        assert_eq!(attn.num_features(), 32);
    }

    #[test]
    fn approximates_vanilla_attention_with_many_features() {
        let mut r = rng(1);
        // Small-norm inputs keep the kernel approximation well conditioned.
        let q = Var::constant(NdArray::randn(&[1, 1, 8, 4], 0.3, &mut r));
        let k = Var::constant(NdArray::randn(&[1, 1, 8, 4], 0.3, &mut r));
        let v = Var::constant(NdArray::randn(&[1, 1, 8, 4], 1.0, &mut r));
        let exact = VanillaAttention::new().forward(&q, &k, &v).to_array();
        let mut attn = PerformerAttention::new(4, 512, &mut r);
        let approx = attn.forward(&q, &k, &v).to_array();
        let max_err = exact
            .as_slice()
            .iter()
            .zip(approx.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.25, "max err {max_err}");
    }

    #[test]
    fn gradients_flow_through_feature_map() {
        let mut r = rng(2);
        let q = Var::parameter(NdArray::randn(&[1, 1, 6, 4], 0.5, &mut r));
        let k = Var::parameter(NdArray::randn(&[1, 1, 6, 4], 0.5, &mut r));
        let v = Var::parameter(NdArray::randn(&[1, 1, 6, 4], 0.5, &mut r));
        let mut attn = PerformerAttention::new(4, 16, &mut r);
        attn.forward(&q, &k, &v).sum_all().backward();
        assert!(q.grad().unwrap().norm() > 0.0);
        assert!(k.grad().unwrap().norm() > 0.0);
        assert!(v.grad().unwrap().norm() > 0.0);
    }

    #[test]
    fn attention_rows_approximately_average_values() {
        // With identical keys the Performer output, like vanilla, is the value mean.
        let mut r = rng(3);
        let q = Var::constant(NdArray::randn(&[1, 1, 5, 4], 0.2, &mut r));
        let k = Var::constant(NdArray::full(&[1, 1, 5, 4], 0.1));
        let v = Var::constant(
            NdArray::from_vec((0..20).map(|x| x as f32).collect(), &[1, 1, 5, 4]).unwrap(),
        );
        let mut attn = PerformerAttention::new(4, 128, &mut r);
        let o = attn.forward(&q, &k, &v).to_array();
        // column means of v are 8, 9, 10, 11
        for row in 0..5 {
            for col in 0..4 {
                let expect = 8.0 + col as f32;
                let got = o.get(&[0, 0, row, col]).unwrap();
                assert!((got - expect).abs() < 0.5, "row {row} col {col}: {got} vs {expect}");
            }
        }
    }
}
