//! Canonical scaled-dot-product self-attention (Vaswani et al., §2 of the RITA paper).
//!
//! Time is `O(n²)` in the number of windows — the scalability bottleneck that group
//! attention removes. The default forward runs the **fused streaming kernel**
//! ([`Var::fused_attention`]): queries and keys are tiled, the softmax is computed
//! online, and the `(b, h, n, n)` score matrix is never materialised, so memory stays
//! `O(n)` per head and the quadratic time runs at blocked-GEMM speed. The unfused chain
//! survives behind [`VanillaAttention::unfused`] as the exactness oracle the property
//! tests compare the kernel against (mirroring group attention's `dense_matrices` flag).

use super::Attention;
use rita_nn::Var;

/// Exact softmax attention.
#[derive(Debug, Default, Clone, Copy)]
pub struct VanillaAttention {
    /// Compute through the explicit `Q·Kᵀ → softmax → ·V` chain instead of the fused
    /// streaming kernel. Numerically equivalent (within exp-approximation tolerance)
    /// but materialises two `(b, h, n, n)` tensors; kept as the exactness oracle.
    pub unfused: bool,
}

impl VanillaAttention {
    /// Creates the mechanism (stateless, fused kernel).
    pub fn new() -> Self {
        Self { unfused: false }
    }

    /// Creates the unfused oracle variant (materialised scores + softmax).
    pub fn unfused() -> Self {
        Self { unfused: true }
    }
}

impl Attention for VanillaAttention {
    fn forward(&mut self, q: &Var, k: &Var, v: &Var) -> Var {
        let dk = *q.shape().last().expect("q must have a head dimension") as f32;
        let scale = 1.0 / dk.sqrt();
        if self.unfused {
            // The 1/√d is folded into the score product (one kernel pass), dropping the
            // scaled `(b, h, n, n)` temporary the old `.scale()` materialised.
            q.matmul_nt_scaled(k, scale).softmax_last().matmul(v)
        } else {
            q.fused_attention(k, v, scale)
        }
    }

    fn name(&self) -> &'static str {
        "Vanilla"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::{NdArray, SeedableRng64};

    #[test]
    fn output_shape_matches_values() {
        let mut rng = SeedableRng64::seed_from_u64(0);
        let q = Var::constant(NdArray::randn(&[2, 2, 6, 4], 1.0, &mut rng));
        let k = Var::constant(NdArray::randn(&[2, 2, 6, 4], 1.0, &mut rng));
        let v = Var::constant(NdArray::randn(&[2, 2, 6, 4], 1.0, &mut rng));
        let mut attn = VanillaAttention::new();
        let o = attn.forward(&q, &k, &v);
        assert_eq!(o.shape(), vec![2, 2, 6, 4]);
        assert!(!o.to_array().has_non_finite());
    }

    #[test]
    fn uniform_keys_average_values() {
        // If all keys are identical, attention weights are uniform and the output is the
        // mean of the values for every query.
        let q = Var::constant(NdArray::ones(&[1, 1, 3, 2]));
        let k = Var::constant(NdArray::ones(&[1, 1, 4, 2]));
        let v = Var::constant(
            NdArray::from_vec(vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 6.0, 4.0], &[1, 1, 4, 2]).unwrap(),
        );
        let mut attn = VanillaAttention::new();
        let o = attn.forward(&q, &k, &v).to_array();
        for row in 0..3 {
            assert!((o.get(&[0, 0, row, 0]).unwrap() - 3.0).abs() < 1e-5);
            assert!((o.get(&[0, 0, row, 1]).unwrap() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_is_differentiable() {
        let mut rng = SeedableRng64::seed_from_u64(3);
        let q = Var::parameter(NdArray::randn(&[1, 1, 4, 3], 0.5, &mut rng));
        let k = Var::parameter(NdArray::randn(&[1, 1, 4, 3], 0.5, &mut rng));
        let v = Var::parameter(NdArray::randn(&[1, 1, 4, 3], 0.5, &mut rng));
        let mut attn = VanillaAttention::new();
        attn.forward(&q, &k, &v).sum_all().backward();
        assert!(q.grad().is_some());
        assert!(k.grad().is_some());
        assert!(v.grad().is_some());
        // The value gradient of attention sums to 1 per value row across queries.
        let gv = v.grad().unwrap();
        let total: f32 = gv.sum_all();
        assert!((total - 4.0 * 3.0).abs() < 1e-3, "total {total}");
    }
}
