//! Versioned binary checkpoints: save a trained model (and optionally its optimiser and
//! scheduler state) to a single file, load it in a fresh process, and resume.
//!
//! ## Format (version 3)
//!
//! Hand-rolled little-endian binary — the workspace is offline, so no serde. All
//! multi-byte integers are `u32`/`u64` LE, floats are IEEE-754 `f32` LE bit patterns
//! (tensors round-trip **bit-exactly**).
//!
//! ```text
//! magic    8 bytes  b"RITACKPT"
//! version  u32      currently 3 (version-1/2 files still load bit-exactly)
//! task     u8       0 = backbone, 1 = classifier, 2 = imputer
//! classes  u32      number of classes (classifier only; 0 otherwise)
//! config            channels, max_len, window, stride, d_model, n_heads, n_layers,
//!                   ff_hidden (u32 each), dropout (f32), attention tag (u8) + payload:
//!                     0 vanilla | 1 group (ε f32, initial_groups u32, adaptive u8)
//!                     | 2 performer (features u32) | 3 linformer (proj_dim u32)
//! sched    u32 n    then n × (present u8, target f32): the per-layer persistent §5.1
//!                   group-count targets, so a restart resumes the exact schedule
//! tensors  u32 n    then n records. A v3 record is
//!                     path_len u32, path utf-8
//!                     dtype    u8   0 = f32 | 1 = int8 (per-channel scales) | 2 = bf16
//!                     ndim u32, dims u32…
//!                     scales   u32  (int8 only) per-channel scale count — must equal
//!                                   the last dim (one scale per output column)
//!                     paylen   u64  payload byte length; the reader cross-checks it
//!                                   against dtype × numel (+ scales) before parsing,
//!                                   so a dtype/payload mismatch is structural damage
//!                     payload       f32 LE data | i8 codes then f32 LE scales |
//!                                   bf16 (u16 LE) data
//!                   (v1/v2 records have no dtype/paylen fields and are always f32.)
//!                   Every named parameter followed by every named buffer, in
//!                   visitor order.
//! optim    u8       0 = absent; 1 = steps u64, lr β₁ β₂ ε wd (f32 each), u32 n,
//!                   then n × (path, ndim, dims, first-moment f32…, second-moment f32…)
//! crcs     u32 n    then n × u32: CRC-32 of each tensor record (path length through
//!                   payload), in tensor order — pinpoints *which* tensor rotted
//! filecrc  u32      CRC-32 of every preceding byte of the file — any single flipped
//!                   bit anywhere fails the load before a tensor is parsed
//! ```
//!
//! ## Version policy
//!
//! The version is bumped whenever the byte layout changes incompatibly; readers reject
//! unknown versions with [`CheckpointError::UnsupportedVersion`] instead of guessing.
//! Adding new trailing sections is a version bump too — v1 readers must be able to
//! assume they consumed the whole buffer. This reader accepts version 1 (no checksum
//! trailer — integrity is the caller's problem, as it always was), version 2 (trailer
//! verified; any mismatch is [`CheckpointError::ChecksumMismatch`]), and version 3
//! (per-tensor dtype tags). [`Checkpoint::to_bytes_versioned`] still emits v1/v2 for
//! all-f32 checkpoints, so downgrade paths stay testable byte-for-byte.
//!
//! ## Scale values are not validated here
//!
//! The reader enforces *structure* (dtype/payload-length agreement, scale counts); it
//! deliberately does **not** judge scale *values* (finite, positive). That semantic
//! check lives in `rita-verify`'s independent checkpoint analysis, keeping the
//! second-implementation discipline: a checkpoint whose scales rotted to NaN parses
//! here and is rejected by the verifier before the registry activates it.
//!
//! ## Failure behaviour
//!
//! Loading never panics on malformed input: truncated files, corrupted counts and
//! wrong-version files all surface as descriptive [`CheckpointError`]s. Restoring into a
//! model validates both directions — every parameter must be present with the right
//! shape, and unknown leftover tensors are an error (they indicate an architecture
//! mismatch).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

use crate::attention::AttentionKind;
use crate::model::{RitaConfig, RitaModel};
use crate::tasks::{Classifier, Imputer};
use rand::Rng;
use rita_nn::optim::{AdamW, AdamWState};
use rita_nn::{BufferVisitorMut, Module, ParamPath};
use rita_tensor::NdArray;

const MAGIC: &[u8; 8] = b"RITACKPT";
const VERSION: u32 = 3;

/// Dtype tags of version-3 tensor records.
const DTYPE_F32: u8 = 0;
const DTYPE_INT8: u8 = 1;
const DTYPE_BF16: u8 = 2;

/// One named tensor as stored in a checkpoint: full-precision, int8-quantized with
/// per-channel scales, or bf16.
///
/// Quantized records keep their compact payload in memory — the inference tier binds
/// them directly (packing int8 codes into GEMM panels without ever inflating to f32);
/// [`TensorRecord::to_f32`] is the explicit, lossless-for-f32 widening everything else
/// (training restore, verification probes, non-GEMM consumers) goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorRecord {
    /// Full-precision tensor — what v1/v2 checkpoints contain exclusively.
    F32(NdArray),
    /// Int8 per-channel quantized rank-2 weight: `data[p * n + j]` is the code of
    /// element `(p, j)` and dequantizes to `data[p * n + j] as f32 * scales[j]` — one
    /// scale per output column `j` (`scales.len() == shape[1]`).
    Int8 {
        /// Logical shape `[k, n]`.
        shape: Vec<usize>,
        /// Row-major int8 codes, `k · n` of them.
        data: Vec<i8>,
        /// Per-output-column dequantization scales, `n` of them.
        scales: Vec<f32>,
    },
    /// bf16 storage (upper 16 bits of each f32, round-to-nearest-even).
    Bf16 {
        /// Logical shape.
        shape: Vec<usize>,
        /// bf16 bit patterns, row-major.
        data: Vec<u16>,
    },
}

impl TensorRecord {
    /// Logical shape of the stored tensor.
    pub fn shape(&self) -> &[usize] {
        match self {
            TensorRecord::F32(t) => t.shape(),
            TensorRecord::Int8 { shape, .. } | TensorRecord::Bf16 { shape, .. } => shape,
        }
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.shape().iter().product()
    }

    /// Human-readable dtype name (matches the metrics/report vocabulary).
    pub fn dtype(&self) -> &'static str {
        match self {
            TensorRecord::F32(_) => "f32",
            TensorRecord::Int8 { .. } => "int8",
            TensorRecord::Bf16 { .. } => "bf16",
        }
    }

    /// Payload size in bytes as serialized (codes + scales for int8).
    pub fn payload_bytes(&self) -> usize {
        match self {
            TensorRecord::F32(t) => 4 * t.len(),
            TensorRecord::Int8 { data, scales, .. } => data.len() + 4 * scales.len(),
            TensorRecord::Bf16 { data, .. } => 2 * data.len(),
        }
    }

    /// Widens/dequantizes to a dense f32 array. Exact for `F32` (shares storage), the
    /// per-channel dequantization for `Int8`, the exact bf16 widening for `Bf16`.
    pub fn to_f32(&self) -> NdArray {
        match self {
            TensorRecord::F32(t) => t.clone(),
            TensorRecord::Int8 { shape, data, scales } => {
                let w = rita_tensor::dequantize_columns(data, scales, shape[0], shape[1]);
                NdArray::from_vec(w, shape).expect("int8 record shape matches its data")
            }
            TensorRecord::Bf16 { shape, data } => {
                let mut w = Vec::new();
                rita_tensor::decode_bf16(data, &mut w);
                NdArray::from_vec(w, shape).expect("bf16 record shape matches its data")
            }
        }
    }
}

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial `0xEDB88320`, built at
/// compile time (the workspace is offline; no crc crate).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE 802.3, as used by zlib/PNG/Ethernet) of `bytes`.
///
/// This is the integrity primitive behind the version-2 checkpoint trailer: one
/// checksum per tensor record plus one over the whole file, so a single flipped bit
/// anywhere in a checkpoint fails the load instead of silently serving damaged
/// weights. Public so external tooling (and the chaos tests) can recompute trailers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Hard caps the reader enforces before trusting length fields from the file, so a
/// corrupted count cannot drive a huge allocation.
const MAX_TENSORS: u32 = 1 << 20;
const MAX_PATH_LEN: u32 = 4096;
const MAX_NDIM: u32 = 8;

/// Which task head a checkpoint carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A bare RITA backbone (no head).
    Backbone,
    /// Backbone + linear classification head.
    Classifier {
        /// Number of output classes.
        num_classes: usize,
    },
    /// Backbone + reconstruction decoder (imputation / forecasting).
    Imputer,
}

/// Errors produced while writing, reading or restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not understood by this reader.
    UnsupportedVersion(u32),
    /// The file ended before a declared section was complete.
    Truncated(String),
    /// A structural invariant of the format was violated.
    Corrupted(String),
    /// A version-2 CRC-32 (per-tensor or whole-file) does not match the stored bytes:
    /// the file was damaged after it was written.
    ChecksumMismatch {
        /// Which checksum failed ("whole-file checksum" or the tensor's path).
        what: String,
        /// The checksum stored in the trailer.
        stored: u32,
        /// The checksum recomputed from the bytes actually read.
        computed: u32,
    },
    /// A parameter or buffer of the model has no tensor in the checkpoint.
    MissingTensor(String),
    /// A tensor's shape disagrees with the model parameter it should fill.
    ShapeMismatch {
        /// Parameter path.
        path: String,
        /// Shape the model expects.
        expected: Vec<usize>,
        /// Shape stored in the checkpoint.
        found: Vec<usize>,
    },
    /// The checkpoint holds tensors the model has no home for (architecture drift).
    UnexpectedTensors(Vec<String>),
    /// The checkpoint's task kind does not match the requested restore.
    TaskMismatch {
        /// Task stored in the checkpoint.
        found: &'static str,
        /// Task the caller asked to restore.
        requested: &'static str,
    },
    /// The checkpoint carries no optimizer section.
    NoOptimizerState,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not a RITA checkpoint (bad magic; expected {MAGIC:?})")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this reader understands 1..={VERSION})"
                )
            }
            CheckpointError::Truncated(what) => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CheckpointError::Corrupted(what) => write!(f, "checkpoint corrupted: {what}"),
            CheckpointError::ChecksumMismatch { what, stored, computed } => write!(
                f,
                "checkpoint checksum mismatch for {what}: trailer stores {stored:#010x} but the \
                 bytes hash to {computed:#010x} — the file was damaged after it was written"
            ),
            CheckpointError::MissingTensor(path) => {
                write!(f, "checkpoint has no tensor for parameter '{path}'")
            }
            CheckpointError::ShapeMismatch { path, expected, found } => write!(
                f,
                "checkpoint tensor '{path}' has shape {found:?} but the model expects {expected:?}"
            ),
            CheckpointError::UnexpectedTensors(paths) => {
                write!(f, "checkpoint holds tensors the model does not: {paths:?}")
            }
            CheckpointError::TaskMismatch { found, requested } => {
                write!(f, "checkpoint stores a {found} but a {requested} restore was requested")
            }
            CheckpointError::NoOptimizerState => {
                write!(f, "checkpoint carries no optimizer state (saved without an optimizer)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// An in-memory checkpoint: everything needed to reconstruct a servable model (and
/// optionally resume its training) in a fresh process.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Which task head the tensors describe.
    pub task: TaskKind,
    /// Architecture of the backbone.
    pub config: RitaConfig,
    /// Per-encoder-layer persistent scheduler group-count targets (`None` for
    /// non-group layers).
    pub scheduler: Vec<Option<f32>>,
    /// Named tensors: every parameter, then every buffer, in visitor order.
    pub tensors: Vec<(String, TensorRecord)>,
    /// AdamW moment state keyed by parameter path, when saved for resumption.
    pub optimizer: Option<AdamWState>,
}

/// Collects a module's parameters and buffers into the checkpoint tensor list.
fn collect_tensors(module: &impl Module) -> Vec<(String, TensorRecord)> {
    let mut tensors: Vec<(String, TensorRecord)> = module
        .named_parameters()
        .into_iter()
        .map(|(path, var)| (path.to_string(), TensorRecord::F32(var.to_array())))
        .collect();
    tensors.extend(
        module
            .named_buffers()
            .into_iter()
            .map(|(path, buf)| (path.to_string(), TensorRecord::F32(buf.clone()))),
    );
    tensors
}

impl Checkpoint {
    /// Captures a bare backbone.
    pub fn of_backbone(model: &RitaModel) -> Self {
        Self {
            task: TaskKind::Backbone,
            config: model.config,
            scheduler: model.scheduler_state(),
            tensors: collect_tensors(model),
            optimizer: None,
        }
    }

    /// Captures a classifier, optionally with its optimiser for later resumption.
    pub fn of_classifier(clf: &Classifier, optimizer: Option<&AdamW>) -> Self {
        Self {
            task: TaskKind::Classifier { num_classes: clf.num_classes },
            config: clf.model.config,
            scheduler: clf.model.scheduler_state(),
            tensors: collect_tensors(clf),
            optimizer: optimizer.map(AdamW::state),
        }
    }

    /// Captures an imputer, optionally with its optimiser for later resumption.
    pub fn of_imputer(imp: &Imputer, optimizer: Option<&AdamW>) -> Self {
        Self {
            task: TaskKind::Imputer,
            config: imp.model.config,
            scheduler: imp.model.scheduler_state(),
            tensors: collect_tensors(imp),
            optimizer: optimizer.map(AdamW::state),
        }
    }

    /// Rebuilds a classifier from this checkpoint: constructs the architecture from the
    /// stored config, then overwrites every parameter and buffer bit-exactly and
    /// restores the scheduler state.
    pub fn restore_classifier(&self, rng: &mut impl Rng) -> Result<Classifier, CheckpointError> {
        let TaskKind::Classifier { num_classes } = self.task else {
            return Err(CheckpointError::TaskMismatch {
                found: self.task_name(),
                requested: "classifier",
            });
        };
        let mut clf = Classifier::new(self.config, num_classes, rng);
        self.restore_module(&mut clf)?;
        clf.model.restore_scheduler_state(&self.scheduler);
        Ok(clf)
    }

    /// Rebuilds an imputer from this checkpoint (see
    /// [`Checkpoint::restore_classifier`]).
    pub fn restore_imputer(&self, rng: &mut impl Rng) -> Result<Imputer, CheckpointError> {
        if self.task != TaskKind::Imputer {
            return Err(CheckpointError::TaskMismatch {
                found: self.task_name(),
                requested: "imputer",
            });
        }
        let mut imp = Imputer::new(self.config, rng);
        self.restore_module(&mut imp)?;
        imp.model.restore_scheduler_state(&self.scheduler);
        Ok(imp)
    }

    /// Rebuilds a bare backbone from this checkpoint.
    pub fn restore_backbone(&self, rng: &mut impl Rng) -> Result<RitaModel, CheckpointError> {
        if self.task != TaskKind::Backbone {
            return Err(CheckpointError::TaskMismatch {
                found: self.task_name(),
                requested: "backbone",
            });
        }
        let mut model = RitaModel::new(self.config, rng);
        self.restore_module(&mut model)?;
        model.restore_scheduler_state(&self.scheduler);
        Ok(model)
    }

    /// Reattaches the stored AdamW state to a freshly restored module, so training
    /// resumes step-for-step (moments, step count, and hyper-parameters round-trip).
    pub fn restore_optimizer(
        &self,
        module: &(impl Module + ?Sized),
    ) -> Result<AdamW, CheckpointError> {
        let state = self.optimizer.as_ref().ok_or(CheckpointError::NoOptimizerState)?;
        let mut opt = AdamW::for_module(module, state.lr, state.weight_decay);
        opt.load_state(state).map_err(CheckpointError::Corrupted)?;
        Ok(opt)
    }

    fn task_name(&self) -> &'static str {
        match self.task {
            TaskKind::Backbone => "backbone",
            TaskKind::Classifier { .. } => "classifier",
            TaskKind::Imputer => "imputer",
        }
    }

    /// Overwrites every parameter and buffer of `module` from the stored tensors.
    /// Errors when a tensor is missing, has the wrong shape, or is left over.
    fn restore_module(&self, module: &mut (impl Module + ?Sized)) -> Result<(), CheckpointError> {
        let by_path: HashMap<&str, &TensorRecord> =
            self.tensors.iter().map(|(p, t)| (p.as_str(), t)).collect();
        if by_path.len() != self.tensors.len() {
            return Err(CheckpointError::Corrupted("duplicate tensor paths".into()));
        }
        let mut used: HashSet<&str> = HashSet::with_capacity(by_path.len());

        for (path, var) in module.named_parameters() {
            let Some(tensor) = by_path.get(path.as_str()).copied() else {
                return Err(CheckpointError::MissingTensor(path.to_string()));
            };
            if tensor.shape() != var.shape() {
                return Err(CheckpointError::ShapeMismatch {
                    path: path.to_string(),
                    expected: var.shape(),
                    found: tensor.shape().to_vec(),
                });
            }
            var.set_value(tensor.to_f32());
            used.insert(by_path.get_key_value(path.as_str()).expect("present").0);
        }

        let mut buffer_error: Option<CheckpointError> = None;
        let mut visit = |path: &ParamPath, buf: &mut NdArray| {
            if buffer_error.is_some() {
                return;
            }
            let Some(tensor) = by_path.get(path.as_str()).copied() else {
                buffer_error = Some(CheckpointError::MissingTensor(path.to_string()));
                return;
            };
            if tensor.shape() != buf.shape() {
                buffer_error = Some(CheckpointError::ShapeMismatch {
                    path: path.to_string(),
                    expected: buf.shape().to_vec(),
                    found: tensor.shape().to_vec(),
                });
                return;
            }
            *buf = tensor.to_f32();
            used.insert(by_path.get_key_value(path.as_str()).expect("present").0);
        };
        module.visit_buffers_mut(&mut BufferVisitorMut::new(&mut visit));
        if let Some(e) = buffer_error {
            return Err(e);
        }

        let leftover: Vec<String> = self
            .tensors
            .iter()
            .filter(|(p, _)| !used.contains(p.as_str()))
            .map(|(p, _)| p.clone())
            .collect();
        if !leftover.is_empty() {
            return Err(CheckpointError::UnexpectedTensors(leftover));
        }
        Ok(())
    }

    /// The offline int8 quantization pass: converts every rank-2 `.weight` parameter
    /// to [`TensorRecord::Int8`] with per-output-column scales and drops the optimizer
    /// section (a quantized checkpoint is a serving artifact, not a training resume
    /// point). Biases, norms, buffers, and higher-rank tensors stay f32 — they are
    /// tiny and numerically load-bearing. Weights whose reduction depth exceeds
    /// [`rita_tensor::MAX_QUANT_K`] (i32 accumulation could overflow) also stay f32.
    ///
    /// Already-quantized records pass through unchanged, so the pass is idempotent.
    pub fn quantize(&self) -> Checkpoint {
        let tensors = self
            .tensors
            .iter()
            .map(|(path, rec)| {
                let rec = match rec {
                    TensorRecord::F32(a)
                        if path.ends_with(".weight")
                            && a.shape().len() == 2
                            && a.shape()[0] <= rita_tensor::MAX_QUANT_K =>
                    {
                        let (k, n) = (a.shape()[0], a.shape()[1]);
                        let w = a.materialize();
                        let (data, scales) = rita_tensor::quantize_columns(w.as_slice(), k, n);
                        TensorRecord::Int8 { shape: vec![k, n], data, scales }
                    }
                    other => other.clone(),
                };
                (path.clone(), rec)
            })
            .collect();
        Checkpoint {
            task: self.task,
            config: self.config,
            scheduler: self.scheduler.clone(),
            tensors,
            optimizer: None,
        }
    }

    // ------------------------------------------------------------------ serialization

    /// Serialises to the current (version-3) byte format, checksum trailer included.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(VERSION).expect("the current version encodes every record")
    }

    /// Serialises to a specific format version. Versions 1 and 2 have no dtype-tagged
    /// records, so they can only encode all-f32 checkpoints — asking for one with a
    /// quantized record is a `Corrupted` error. This keeps genuine old-format bytes
    /// producible (compat tests, downgrade tooling) from the current writer.
    pub fn to_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, CheckpointError> {
        if !(1..=VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        if version < 3 {
            if let Some((path, rec)) =
                self.tensors.iter().find(|(_, r)| !matches!(r, TensorRecord::F32(_)))
            {
                return Err(CheckpointError::Corrupted(format!(
                    "tensor '{path}' is {} — version {version} encodes f32 only",
                    rec.dtype()
                )));
            }
        }
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u32(version);
        match self.task {
            TaskKind::Backbone => {
                w.u8(0);
                w.u32(0);
            }
            TaskKind::Classifier { num_classes } => {
                w.u8(1);
                w.u32(num_classes as u32);
            }
            TaskKind::Imputer => {
                w.u8(2);
                w.u32(0);
            }
        }
        let c = &self.config;
        for dim in [
            c.channels,
            c.max_len,
            c.window,
            c.stride,
            c.d_model,
            c.n_heads,
            c.n_layers,
            c.ff_hidden,
        ] {
            w.u32(dim as u32);
        }
        w.f32(c.dropout);
        match c.attention {
            AttentionKind::Vanilla => w.u8(0),
            AttentionKind::Group { epsilon, initial_groups, adaptive } => {
                w.u8(1);
                w.f32(epsilon);
                w.u32(initial_groups as u32);
                w.u8(adaptive as u8);
            }
            AttentionKind::Performer { features } => {
                w.u8(2);
                w.u32(features as u32);
            }
            AttentionKind::Linformer { proj_dim } => {
                w.u8(3);
                w.u32(proj_dim as u32);
            }
        }
        w.u32(self.scheduler.len() as u32);
        for target in &self.scheduler {
            match target {
                Some(t) => {
                    w.u8(1);
                    w.f32(*t);
                }
                None => {
                    w.u8(0);
                    w.f32(0.0);
                }
            }
        }
        w.u32(self.tensors.len() as u32);
        let mut tensor_crcs = Vec::with_capacity(self.tensors.len());
        for (path, record) in &self.tensors {
            let start = w.0.len();
            w.str(path);
            if version >= 3 {
                w.record(record);
            } else {
                let TensorRecord::F32(tensor) = record else { unreachable!("checked above") };
                w.tensor(tensor);
            }
            tensor_crcs.push(crc32(&w.0[start..]));
        }
        match &self.optimizer {
            None => w.u8(0),
            Some(state) => {
                w.u8(1);
                w.u64(state.steps as u64);
                for x in [state.lr, state.beta1, state.beta2, state.eps, state.weight_decay] {
                    w.f32(x);
                }
                w.u32(state.moments.len() as u32);
                for (path, m, v) in &state.moments {
                    w.str(path.as_str());
                    w.u32(m.shape().len() as u32);
                    for &d in m.shape() {
                        w.u32(d as u32);
                    }
                    w.f32_slice(&m.materialize().into_vec());
                    w.f32_slice(&v.materialize().into_vec());
                }
            }
        }
        // Version ≥ 2 trailer: per-tensor CRCs, then the whole-file CRC over
        // everything written so far (trailer counts and tensor CRCs included).
        if version >= 2 {
            w.u32(tensor_crcs.len() as u32);
            for crc in &tensor_crcs {
                w.u32(*crc);
            }
            let file_crc = crc32(&w.0);
            w.u32(file_crc);
        }
        Ok(w.0)
    }

    /// Parses the byte format, accepting versions 1 (no checksum trailer), 2 (trailer
    /// verified), and 3 (dtype-tagged records). Never panics on malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf, pos: 0 };
        let magic = r.bytes(8, "magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32("version")?;
        if !(1..=VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        if version >= 2 {
            // Verify the whole-file CRC before trusting a single length field: a
            // flipped bit anywhere (header, counts, tensor data, even the trailer
            // itself) fails here, before any allocation-driving parse.
            if buf.len() < r.pos + 4 {
                return Err(CheckpointError::Truncated("file checksum".into()));
            }
            let tail = &buf[buf.len() - 4..];
            let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
            let computed = crc32(&buf[..buf.len() - 4]);
            if stored != computed {
                return Err(CheckpointError::ChecksumMismatch {
                    what: "whole-file checksum".into(),
                    stored,
                    computed,
                });
            }
        }
        let task_tag = r.u8("task tag")?;
        let num_classes = r.u32("num_classes")? as usize;
        let task = match task_tag {
            0 => TaskKind::Backbone,
            1 => {
                if num_classes < 2 {
                    return Err(CheckpointError::Corrupted(format!(
                        "classifier checkpoint with {num_classes} classes"
                    )));
                }
                TaskKind::Classifier { num_classes }
            }
            2 => TaskKind::Imputer,
            t => return Err(CheckpointError::Corrupted(format!("unknown task tag {t}"))),
        };
        let mut dims = [0usize; 8];
        for (i, name) in [
            "channels",
            "max_len",
            "window",
            "stride",
            "d_model",
            "n_heads",
            "n_layers",
            "ff_hidden",
        ]
        .iter()
        .enumerate()
        {
            dims[i] = r.u32(name)? as usize;
        }
        let dropout = r.f32("dropout")?;
        let attention = match r.u8("attention tag")? {
            0 => AttentionKind::Vanilla,
            1 => {
                let epsilon = r.f32("group epsilon")?;
                let initial_groups = r.u32("group initial_groups")? as usize;
                let adaptive = r.u8("group adaptive")? != 0;
                AttentionKind::Group { epsilon, initial_groups, adaptive }
            }
            2 => AttentionKind::Performer { features: r.u32("performer features")? as usize },
            3 => AttentionKind::Linformer { proj_dim: r.u32("linformer proj_dim")? as usize },
            t => return Err(CheckpointError::Corrupted(format!("unknown attention tag {t}"))),
        };
        let config = RitaConfig {
            channels: dims[0],
            max_len: dims[1],
            window: dims[2],
            stride: dims[3],
            d_model: dims[4],
            n_heads: dims[5],
            n_layers: dims[6],
            ff_hidden: dims[7],
            dropout,
            attention,
        };
        if config.channels == 0
            || config.window == 0
            || config.stride == 0
            || config.max_len < config.window
            || config.n_layers == 0
            || config.n_heads == 0
            || !config.d_model.is_multiple_of(config.n_heads.max(1))
            || !(0.0..1.0).contains(&config.dropout)
        {
            return Err(CheckpointError::Corrupted(format!("invalid model config {config:?}")));
        }

        let sched_len = r.u32("scheduler count")?;
        if sched_len != config.n_layers as u32 {
            return Err(CheckpointError::Corrupted(format!(
                "scheduler section has {sched_len} entries for {} layers",
                config.n_layers
            )));
        }
        let mut scheduler = Vec::with_capacity(sched_len as usize);
        for _ in 0..sched_len {
            let present = r.u8("scheduler flag")?;
            let target = r.f32("scheduler target")?;
            if present != 0 && !(target.is_finite() && target >= 1.0) {
                return Err(CheckpointError::Corrupted(format!(
                    "scheduler target {target} out of range"
                )));
            }
            scheduler.push((present != 0).then_some(target));
        }

        let n_tensors = r.u32("tensor count")?;
        if n_tensors > MAX_TENSORS {
            return Err(CheckpointError::Corrupted(format!("{n_tensors} tensors declared")));
        }
        let mut tensors = Vec::with_capacity(n_tensors as usize);
        let mut tensor_spans = Vec::with_capacity(n_tensors as usize);
        for _ in 0..n_tensors {
            let start = r.pos;
            let path = r.str("tensor path")?;
            let record =
                if version >= 3 { r.record(&path)? } else { TensorRecord::F32(r.tensor(&path)?) };
            tensor_spans.push(start..r.pos);
            tensors.push((path, record));
        }

        let optimizer = match r.u8("optimizer flag")? {
            0 => None,
            1 => {
                let steps = r.u64("optimizer steps")? as usize;
                let lr = r.f32("optimizer lr")?;
                let beta1 = r.f32("optimizer beta1")?;
                let beta2 = r.f32("optimizer beta2")?;
                let eps = r.f32("optimizer eps")?;
                let weight_decay = r.f32("optimizer weight_decay")?;
                let n = r.u32("optimizer moment count")?;
                if n > MAX_TENSORS {
                    return Err(CheckpointError::Corrupted(format!("{n} moments declared")));
                }
                let mut moments = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let path = r.str("moment path")?;
                    let shape = r.shape(&path)?;
                    let len: usize = shape.iter().product();
                    let m = r.tensor_data(len, &shape, &path)?;
                    let v = r.tensor_data(len, &shape, &path)?;
                    moments.push((ParamPath::new(path), m, v));
                }
                Some(AdamWState { steps, lr, beta1, beta2, eps, weight_decay, moments })
            }
            t => return Err(CheckpointError::Corrupted(format!("unknown optimizer flag {t}"))),
        };

        if version >= 2 {
            let n_crcs = r.u32("tensor checksum count")?;
            if n_crcs != n_tensors {
                return Err(CheckpointError::Corrupted(format!(
                    "trailer carries {n_crcs} tensor checksums for {n_tensors} tensors"
                )));
            }
            // The whole-file CRC already proved the bytes are what the writer wrote;
            // the per-tensor CRCs pinpoint the damaged record when it did not (e.g. a
            // trailer rewritten by an attacker-free but buggy copy tool).
            for (span, (path, _)) in tensor_spans.iter().zip(&tensors) {
                let stored = r.u32("tensor checksum")?;
                let computed = crc32(&buf[span.clone()]);
                if stored != computed {
                    return Err(CheckpointError::ChecksumMismatch {
                        what: format!("tensor '{path}'"),
                        stored,
                        computed,
                    });
                }
            }
            let _file_crc = r.u32("file checksum")?; // verified before parsing
        }

        if r.pos != buf.len() {
            return Err(CheckpointError::Corrupted(format!(
                "{} trailing bytes after the last section",
                buf.len() - r.pos
            )));
        }

        Ok(Self { task, config, scheduler, tensors, optimizer })
    }

    /// Writes the checkpoint to `path` (atomically: a temp file renamed into place, so a
    /// crash mid-write never leaves a half-written checkpoint behind).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        // Per-call unique temp name in the same directory (rename stays atomic):
        // sibling checkpoints sharing a stem, or concurrent saves of the same file,
        // must not collide on one temp path.
        let tmp = path.with_extension(format!(
            "ckpt.tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, self.to_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------- byte plumbing

#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }

    fn u8(&mut self, x: u8) {
        self.0.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }

    fn f32(&mut self, x: f32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn f32_slice(&mut self, xs: &[f32]) {
        self.0.reserve(xs.len() * 4);
        for &x in xs {
            self.f32(x);
        }
    }

    fn tensor(&mut self, t: &NdArray) {
        self.u32(t.shape().len() as u32);
        for &d in t.shape() {
            self.u32(d as u32);
        }
        self.f32_slice(&t.materialize().into_vec());
    }

    /// Writes one version-3 dtype-tagged record (dtype, dims, scale count for int8,
    /// payload length, payload). The payload length is redundant with dtype × dims on
    /// purpose: the reader cross-checks them, turning a rotted dtype tag or payload
    /// into structural damage instead of misparsed weights.
    fn record(&mut self, rec: &TensorRecord) {
        match rec {
            TensorRecord::F32(t) => {
                self.u8(DTYPE_F32);
                self.u32(t.shape().len() as u32);
                for &d in t.shape() {
                    self.u32(d as u32);
                }
                self.u64(4 * t.len() as u64);
                self.f32_slice(&t.materialize().into_vec());
            }
            TensorRecord::Int8 { shape, data, scales } => {
                self.u8(DTYPE_INT8);
                self.u32(shape.len() as u32);
                for &d in shape {
                    self.u32(d as u32);
                }
                self.u32(scales.len() as u32);
                self.u64((data.len() + 4 * scales.len()) as u64);
                self.0.extend(data.iter().map(|&c| c as u8));
                self.f32_slice(scales);
            }
            TensorRecord::Bf16 { shape, data } => {
                self.u8(DTYPE_BF16);
                self.u32(shape.len() as u32);
                for &d in shape {
                    self.u32(d as u32);
                }
                self.u64(2 * data.len() as u64);
                self.0.reserve(data.len() * 2);
                for &b in data {
                    self.0.extend_from_slice(&b.to_le_bytes());
                }
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn bytes(&mut self, n: usize, what: &str) -> Result<&[u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated(what.to_string()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32(&mut self, what: &str) -> Result<f32, CheckpointError> {
        let b = self.bytes(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.u32(what)?;
        if len > MAX_PATH_LEN {
            return Err(CheckpointError::Corrupted(format!("{what} of {len} bytes")));
        }
        let bytes = self.bytes(len as usize, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupted(format!("{what} is not valid utf-8")))
    }

    fn shape(&mut self, path: &str) -> Result<Vec<usize>, CheckpointError> {
        self.shape_with_width(path, 4)
    }

    /// Reads a rank + dims prefix, bounding the implied element count by what the
    /// remaining buffer could hold at `width` bytes per element — before any
    /// allocation trusts it.
    fn shape_with_width(&mut self, path: &str, width: u64) -> Result<Vec<usize>, CheckpointError> {
        let ndim = self.u32("tensor rank")?;
        if ndim > MAX_NDIM {
            return Err(CheckpointError::Corrupted(format!("tensor '{path}' has rank {ndim}")));
        }
        let mut shape = Vec::with_capacity(ndim as usize);
        let mut len: u64 = 1;
        for _ in 0..ndim {
            let d = self.u32("tensor dim")? as u64;
            len = len.saturating_mul(d.max(1));
            shape.push(d as usize);
        }
        if len > (self.buf.len() as u64) / width + 1 {
            return Err(CheckpointError::Truncated(format!("tensor '{path}' data")));
        }
        Ok(shape)
    }

    fn tensor_data(
        &mut self,
        len: usize,
        shape: &[usize],
        path: &str,
    ) -> Result<NdArray, CheckpointError> {
        let raw = self.bytes(len * 4, &format!("tensor '{path}' data"))?;
        let mut data = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        NdArray::from_vec(data, shape)
            .map_err(|e| CheckpointError::Corrupted(format!("tensor '{path}': {e}")))
    }

    fn tensor(&mut self, path: &str) -> Result<NdArray, CheckpointError> {
        let shape = self.shape(path)?;
        let len: usize = shape.iter().product();
        self.tensor_data(len, &shape, path)
    }

    /// Reads one version-3 dtype-tagged record, cross-checking the stored payload
    /// length against the one the dtype and dims imply. Scale *values* are not judged
    /// here — that is the verifier's job (see the module docs).
    fn record(&mut self, path: &str) -> Result<TensorRecord, CheckpointError> {
        let dtype = self.u8("tensor dtype")?;
        let width: u64 = match dtype {
            DTYPE_F32 => 4,
            DTYPE_INT8 => 1,
            DTYPE_BF16 => 2,
            t => {
                return Err(CheckpointError::Corrupted(format!(
                    "tensor '{path}' has unknown dtype tag {t}"
                )))
            }
        };
        let shape = self.shape_with_width(path, width)?;
        let numel: usize = shape.iter().product();
        let scales_len = if dtype == DTYPE_INT8 {
            let n = self.u32("tensor scale count")? as usize;
            let channels = shape.last().copied().unwrap_or(0);
            if shape.len() != 2 || n != channels {
                return Err(CheckpointError::Corrupted(format!(
                    "int8 tensor '{path}' (shape {shape:?}) declares {n} scales — expected one                      per output column"
                )));
            }
            n
        } else {
            0
        };
        let expect = match dtype {
            DTYPE_F32 => 4 * numel as u64,
            DTYPE_INT8 => numel as u64 + 4 * scales_len as u64,
            _ => 2 * numel as u64,
        };
        let paylen = self.u64("tensor payload length")?;
        if paylen != expect {
            return Err(CheckpointError::Corrupted(format!(
                "tensor '{path}' stores a {paylen}-byte payload but its dtype and shape imply                  {expect} bytes — dtype tag and payload disagree"
            )));
        }
        match dtype {
            DTYPE_F32 => Ok(TensorRecord::F32(self.tensor_data(numel, &shape, path)?)),
            DTYPE_INT8 => {
                let raw = self.bytes(numel, &format!("tensor '{path}' int8 codes"))?;
                let data: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
                let sraw = self.bytes(4 * scales_len, &format!("tensor '{path}' scales"))?;
                let scales: Vec<f32> = sraw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                Ok(TensorRecord::Int8 { shape, data, scales })
            }
            _ => {
                let raw = self.bytes(2 * numel, &format!("tensor '{path}' bf16 data"))?;
                let data: Vec<u16> =
                    raw.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
                Ok(TensorRecord::Bf16 { shape, data })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn classifier(kind: AttentionKind, seed: u64) -> Classifier {
        Classifier::new(RitaConfig::tiny(3, 40, kind), 4, &mut rng(seed))
    }

    #[test]
    fn bytes_roundtrip_preserves_everything() {
        let clf = classifier(AttentionKind::default_group(), 0);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored.task, TaskKind::Classifier { num_classes: 4 });
        assert_eq!(restored.scheduler, ckpt.scheduler);
        assert_eq!(restored.tensors.len(), ckpt.tensors.len());
        for ((pa, ta), (pb, tb)) in ckpt.tensors.iter().zip(&restored.tensors) {
            assert_eq!(pa, pb);
            assert_eq!(ta.shape(), tb.shape());
            assert_eq!(ta, tb, "bit-exact tensor roundtrip for {pa}");
        }
    }

    #[test]
    fn restore_rejects_task_mismatch() {
        let clf = classifier(AttentionKind::Vanilla, 1);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let err = ckpt.restore_imputer(&mut rng(2)).err().unwrap();
        assert!(matches!(err, CheckpointError::TaskMismatch { .. }), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let clf = classifier(AttentionKind::Vanilla, 3);
        let mut bytes = Checkpoint::of_classifier(&clf, None).to_bytes();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(Checkpoint::from_bytes(&wrong), Err(CheckpointError::BadMagic)));
        // Bump the version field.
        bytes[8] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let clf = classifier(AttentionKind::default_group(), 4);
        let bytes = Checkpoint::of_classifier(&clf, None).to_bytes();
        // Every strict prefix must fail cleanly (never panic, never succeed).
        for cut in [0, 4, 7, 8, 11, 12, 20, 40, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            let err = Checkpoint::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes parsed successfully");
        }
    }

    /// Rewrites the last four bytes so the whole-file CRC matches again — the move a
    /// buggy-but-checksumming copy tool would make, and what lets these tests reach
    /// the structural guards *behind* the checksum gate.
    fn refresh_file_crc(bytes: &mut [u8]) {
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn corrupted_counts_fail_cleanly() {
        let clf = classifier(AttentionKind::Vanilla, 5);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let bytes = ckpt.to_bytes();
        // The tensor-count u32 sits right after the fixed header + scheduler section.
        // Corrupt it to a huge value: the reader must refuse without allocating. The
        // file CRC is refreshed so the count guard itself stays exercised.
        let sched_bytes = 4 + ckpt.scheduler.len() * 5;
        let count_at = 8 + 4 + 1 + 4 + 8 * 4 + 4 + 1 + sched_bytes;
        let mut corrupt = bytes.clone();
        corrupt[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        refresh_file_crc(&mut corrupt);
        let err = Checkpoint::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupted(_) | CheckpointError::Truncated(_)),
            "{err}"
        );
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926, "the classic IEEE check value");
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn any_single_flipped_byte_is_rejected() {
        let clf = classifier(AttentionKind::default_group(), 12);
        let bytes = Checkpoint::of_classifier(&clf, None).to_bytes();
        // Sweep flip sites across the whole file (a prime stride so every region —
        // header, scheduler, tensor data, trailer — is hit); every damaged copy must
        // fail to load. Flips in the magic/version fields surface as BadMagic /
        // UnsupportedVersion; everything else as a checksum mismatch.
        for site in (0..bytes.len()).step_by(211) {
            let mut damaged = bytes.clone();
            damaged[site] ^= 0x01; // a single flipped *bit* — the hardest case
            let err = Checkpoint::from_bytes(&damaged);
            assert!(err.is_err(), "flipping byte {site} went undetected");
        }
    }

    #[test]
    fn per_tensor_checksum_pinpoints_the_damaged_record() {
        let clf = classifier(AttentionKind::Vanilla, 13);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let mut bytes = ckpt.to_bytes();
        // Damage one byte inside the head.weight record, then refresh the *file* CRC:
        // only the per-tensor checksum can catch this, and it must name the tensor.
        let needle = b"head.weight";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("head.weight path present");
        let in_data = at + needle.len() + 25; // past the dtype + rank + dims + paylen
        bytes[in_data] ^= 0xFF;
        refresh_file_crc(&mut bytes);
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::ChecksumMismatch { what, .. }) => {
                assert!(what.contains("head.weight"), "mismatch blamed on {what}")
            }
            other => panic!("expected a per-tensor checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_1_files_without_a_trailer_still_load() {
        let clf = classifier(AttentionKind::default_group(), 14);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        // Genuine v1 bytes from the versioned writer: untagged f32 tensor records,
        // no integrity trailer — byte-for-byte what a version-1 writer produced.
        let v1 = ckpt.to_bytes_versioned(1).expect("all-f32 checkpoints downgrade");
        assert_eq!(&v1[8..12], &1u32.to_le_bytes());
        let restored = Checkpoint::from_bytes(&v1).expect("v1 files must keep loading");
        assert_eq!(restored.tensors.len(), ckpt.tensors.len());
        for ((pa, ta), (pb, tb)) in ckpt.tensors.iter().zip(&restored.tensors) {
            assert_eq!(pa, pb);
            assert_eq!(ta, tb, "bit-exact v1 tensor {pa}");
        }
        // A v1 file is *not* integrity-checked: the same flip loads fine, which is
        // exactly why the version was bumped.
        let mut flipped = v1.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        let _ = Checkpoint::from_bytes(&flipped); // may fail structurally, must not panic
    }

    #[test]
    fn file_roundtrip_and_atomic_save() {
        let clf = classifier(AttentionKind::Performer { features: 8 }, 6);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let dir = std::env::temp_dir().join("rita-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clf.ckpt");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.tensors.len(), ckpt.tensors.len());
        // Performer's ω must be among the buffers.
        assert!(loaded.tensors.iter().any(|(p, _)| p.ends_with("attention.omega")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_and_unexpected_tensors_are_reported() {
        let clf = classifier(AttentionKind::Vanilla, 7);
        let mut ckpt = Checkpoint::of_classifier(&clf, None);
        let removed = ckpt.tensors.remove(0);
        let err = ckpt.restore_classifier(&mut rng(8)).err().unwrap();
        assert!(matches!(err, CheckpointError::MissingTensor(_)), "{err}");

        let mut extra = Checkpoint::of_classifier(&clf, None);
        extra.tensors.push(("ghost.weight".into(), removed.1));
        let err = extra.restore_classifier(&mut rng(9)).err().unwrap();
        assert!(matches!(err, CheckpointError::UnexpectedTensors(_)), "{err}");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let clf = classifier(AttentionKind::Vanilla, 10);
        let mut ckpt = Checkpoint::of_classifier(&clf, None);
        ckpt.tensors[0].1 = TensorRecord::F32(NdArray::zeros(&[1, 1]));
        let err = ckpt.restore_classifier(&mut rng(11)).err().unwrap();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    // ------------------------------------------------------------ v3 dtype records

    #[test]
    fn quantize_pass_targets_rank2_weights_and_is_idempotent() {
        let clf = classifier(AttentionKind::default_group(), 20);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let q = ckpt.quantize();
        assert!(q.optimizer.is_none(), "a quantized checkpoint is a serving artifact");
        let mut converted = 0;
        for ((path, orig), (_, rec)) in ckpt.tensors.iter().zip(&q.tensors) {
            let expect_int8 = path.ends_with(".weight") && orig.shape().len() == 2;
            match rec {
                TensorRecord::Int8 { shape, data, scales } => {
                    assert!(expect_int8, "{path} should have stayed f32");
                    assert_eq!(shape, orig.shape());
                    assert_eq!(data.len(), shape[0] * shape[1]);
                    assert_eq!(scales.len(), shape[1], "one scale per output column");
                    converted += 1;
                    // Dequantization error is bounded by half a scale step per element.
                    let back = rec.to_f32();
                    let w = orig.to_f32();
                    for (j, &sj) in scales.iter().enumerate() {
                        for p in 0..shape[0] {
                            let err = (w.as_slice()[p * shape[1] + j]
                                - back.as_slice()[p * shape[1] + j])
                                .abs();
                            assert!(err <= sj * 0.5 + 1e-12, "{path} ({p},{j}): {err}");
                        }
                    }
                }
                TensorRecord::F32(_) => assert!(!expect_int8, "{path} should be int8"),
                TensorRecord::Bf16 { .. } => panic!("the pass never emits bf16"),
            }
        }
        assert!(converted > 0, "a classifier carries quantizable weights");
        // Idempotent: re-running converts nothing further.
        let qq = q.quantize();
        for ((pa, ta), (pb, tb)) in q.tensors.iter().zip(&qq.tensors) {
            assert_eq!(pa, pb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn v3_int8_and_bf16_records_roundtrip_bit_exactly() {
        let clf = classifier(AttentionKind::default_group(), 21);
        let mut ckpt = Checkpoint::of_classifier(&clf, None).quantize();
        // Re-encode one remaining f32 record as bf16 so every dtype arm rides along.
        let slot = ckpt
            .tensors
            .iter_mut()
            .find(|(_, t)| matches!(t, TensorRecord::F32(_)))
            .expect("some records stay f32");
        if let TensorRecord::F32(a) = &slot.1 {
            let mut data = Vec::new();
            rita_tensor::encode_bf16(a.materialize().as_slice(), &mut data);
            slot.1 = TensorRecord::Bf16 { shape: a.shape().to_vec(), data };
        }
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert!(restored.tensors.iter().any(|(_, t)| matches!(t, TensorRecord::Int8 { .. })));
        assert!(restored.tensors.iter().any(|(_, t)| matches!(t, TensorRecord::Bf16 { .. })));
        for ((pa, ta), (pb, tb)) in ckpt.tensors.iter().zip(&restored.tensors) {
            assert_eq!(pa, pb);
            assert_eq!(ta, tb, "bit-exact v3 record roundtrip for {pa}");
        }
    }

    #[test]
    fn old_versions_refuse_to_encode_quantized_records() {
        let clf = classifier(AttentionKind::Vanilla, 22);
        let q = Checkpoint::of_classifier(&clf, None).quantize();
        for v in [1, 2] {
            let err = q.to_bytes_versioned(v).unwrap_err();
            assert!(matches!(err, CheckpointError::Corrupted(_)), "v{v}: {err}");
        }
        assert!(matches!(q.to_bytes_versioned(0), Err(CheckpointError::UnsupportedVersion(0))));
        assert!(matches!(
            q.to_bytes_versioned(VERSION + 1),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn v2_bytes_from_the_versioned_writer_load_bit_exactly() {
        let clf = classifier(AttentionKind::default_group(), 23);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let v2 = ckpt.to_bytes_versioned(2).unwrap();
        assert_eq!(&v2[8..12], &2u32.to_le_bytes());
        let restored = Checkpoint::from_bytes(&v2).expect("v2 files must keep loading");
        for ((pa, ta), (pb, tb)) in ckpt.tensors.iter().zip(&restored.tensors) {
            assert_eq!(pa, pb);
            assert_eq!(ta, tb, "bit-exact v2 tensor {pa}");
        }
        // v2 is still integrity-checked: a flipped data byte is caught.
        let mut damaged = v2.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&damaged).is_err());
    }

    /// Byte span of each serialized tensor record (path length field through payload),
    /// computed from the in-memory checkpoint — used to corrupt records surgically
    /// while keeping both CRC layers consistent.
    fn record_spans(ckpt: &Checkpoint) -> Vec<std::ops::Range<usize>> {
        let attn_extra = match ckpt.config.attention {
            AttentionKind::Vanilla => 0,
            AttentionKind::Group { .. } => 9,
            AttentionKind::Performer { .. } | AttentionKind::Linformer { .. } => 4,
        };
        let sched_bytes = 4 + ckpt.scheduler.len() * 5;
        let mut pos = 8 + 4 + 1 + 4 + 8 * 4 + 4 + 1 + attn_extra + sched_bytes + 4;
        ckpt.tensors
            .iter()
            .map(|(p, t)| {
                let extra = match t {
                    TensorRecord::Int8 { .. } => 4, // the scale-count field
                    _ => 0,
                };
                let len = 4 + p.len() + 1 + 4 + 4 * t.shape().len() + extra + 8 + t.payload_bytes();
                let start = pos;
                pos += len;
                start..pos
            })
            .collect()
    }

    /// Re-stamps tensor CRC `idx` and the whole-file CRC after a surgical edit, so the
    /// bytes reach the structural guards *behind* both checksum gates.
    fn refresh_crcs(bytes: &mut [u8], spans: &[std::ops::Range<usize>], idx: usize) {
        let n = spans.len();
        let at = bytes.len() - 4 - 4 * (n - idx);
        let crc = crc32(&bytes[spans[idx].clone()]);
        bytes[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        refresh_file_crc(bytes);
    }

    #[test]
    fn rotted_dtype_tag_is_structural_damage_not_misparsed_weights() {
        let clf = classifier(AttentionKind::Vanilla, 24);
        let ckpt = Checkpoint::of_classifier(&clf, None).quantize();
        let bytes = ckpt.to_bytes();
        let spans = record_spans(&ckpt);
        let idx = ckpt
            .tensors
            .iter()
            .position(|(_, t)| matches!(t, TensorRecord::Int8 { .. }))
            .expect("quantized checkpoint has int8 records");
        let (path, _) = &ckpt.tensors[idx];
        // The dtype byte sits right after the length-prefixed path.
        let dtype_at = spans[idx].start + 4 + path.len();
        assert_eq!(bytes[dtype_at], DTYPE_INT8);
        for wrong in [DTYPE_F32, DTYPE_BF16, 7u8] {
            let mut damaged = bytes.clone();
            damaged[dtype_at] = wrong;
            refresh_crcs(&mut damaged, &spans, idx);
            let err = Checkpoint::from_bytes(&damaged).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Corrupted(_) | CheckpointError::Truncated(_)),
                "dtype {wrong}: {err}"
            );
        }
    }

    #[test]
    fn payload_length_disagreeing_with_dtype_is_rejected() {
        let clf = classifier(AttentionKind::Vanilla, 25);
        let ckpt = Checkpoint::of_classifier(&clf, None).quantize();
        let bytes = ckpt.to_bytes();
        let spans = record_spans(&ckpt);
        let idx =
            ckpt.tensors.iter().position(|(_, t)| matches!(t, TensorRecord::Int8 { .. })).unwrap();
        let (path, rec) = &ckpt.tensors[idx];
        // paylen (u64) sits after path, dtype, rank, dims, and the scale count.
        let paylen_at = spans[idx].start + 4 + path.len() + 1 + 4 + 4 * rec.shape().len() + 4;
        let stored = u64::from_le_bytes(bytes[paylen_at..paylen_at + 8].try_into().unwrap());
        assert_eq!(stored as usize, rec.payload_bytes(), "span arithmetic is right");
        let mut damaged = bytes.clone();
        damaged[paylen_at..paylen_at + 8].copy_from_slice(&(stored + 4).to_le_bytes());
        refresh_crcs(&mut damaged, &spans, idx);
        let err = Checkpoint::from_bytes(&damaged).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupted(_) | CheckpointError::Truncated(_)),
            "{err}"
        );
    }
}
