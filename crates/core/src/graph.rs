//! Emission of the static forward graph from a model configuration, and the `no_grad`
//! [`Var`] interpreter that serves as the exactness oracle for plan executors.
//!
//! [`build_graph`] lays out the whole RITA forward — window embedding, encoder stack,
//! task head — as [`rita_nn::graph`] nodes whose IDs are the dot-separated parameter
//! paths the module visitors produce, so a checkpoint's tensors bind to the graph by
//! name with no translation table. The graph is emitted *unfused* (separate matmul and
//! add-bias nodes); [`Graph::peephole`] folds the chains the kernels can run as one
//! node.
//!
//! [`run_var`] walks a compiled schedule with the same `Var` operations the training
//! modules call, under `no_grad`. Because the training forward and this interpreter
//! share every kernel and its invocation order, their outputs are bit-identical — and
//! any other interpreter of the same plan (the tape-free one in `rita-infer`) can be
//! checked against it to 0 ulp.

use std::sync::Arc;

use rita_nn::graph::{AttnOp, Binding, Graph, Op, PlanError, ValueId};
use rita_nn::{no_grad, Var};
use rita_tensor::NdArray;

use crate::attention::{AttentionKind, GroupAttentionConfig};
use crate::checkpoint::TaskKind;
use crate::group::group_key_blocks;
use crate::model::RitaConfig;

/// The value name under which interpreters look up the sinusoidal positional table
/// (rebuilt from the config, never checkpointed).
pub const POSITIONAL: &str = "positional";

/// Emits an unfused linear layer (`matmul` + optional-bias `add_bias`) and returns the
/// output value.
fn emit_linear(g: &mut Graph, prefix: &str, x: ValueId) -> ValueId {
    let w = g.param(&format!("{prefix}.weight"), false);
    let b = g.param(&format!("{prefix}.bias"), true);
    let y = g.push(&format!("{prefix}.matmul"), Op::Matmul, vec![x, w]);
    g.push(&format!("{prefix}.add_bias"), Op::AddBias, vec![y, b])
}

fn emit_layer_norm(g: &mut Graph, prefix: &str, x: ValueId) -> ValueId {
    let gamma = g.param(&format!("{prefix}.gamma"), false);
    let beta = g.param(&format!("{prefix}.beta"), false);
    g.push(
        prefix,
        Op::LayerNorm { eps: rita_nn::layers::LayerNorm::DEFAULT_EPS },
        vec![x, gamma, beta],
    )
}

/// Builds the forward graph for `config` and `task`.
///
/// `scheduler` is the checkpoint's persisted per-layer group-count targets (ignored for
/// non-group attention); a missing entry falls back to the configured initial group
/// count, exactly as checkpoint loading always has. Node IDs follow the parameter-path
/// grammar (`model.encoder.layers.3.norm1`, …), with the `model.` prefix dropped for a
/// bare backbone — matching how checkpoints name their tensors per task.
pub fn build_graph(config: &RitaConfig, task: TaskKind, scheduler: &[Option<f32>]) -> Graph {
    config.validate();
    let bb = match task {
        TaskKind::Backbone => "",
        _ => "model.",
    };
    let group_defaults = GroupAttentionConfig::default();
    let mut g = Graph::new();
    let x = g.add_input("input");

    // Input stage: time-aware convolution as unfold + linear, then [CLS] + positions.
    let windows = g.push(
        &format!("{bb}embedding.unfold"),
        Op::Unfold1d { window: config.window, stride: config.stride },
        vec![x],
    );
    let embedded = {
        let w = g.param(&format!("{bb}embedding.conv.weight"), false);
        let b = g.param(&format!("{bb}embedding.conv.bias"), true);
        let y = g.push(&format!("{bb}embedding.conv.matmul"), Op::Matmul, vec![windows, w]);
        g.push(&format!("{bb}embedding.conv.add_bias"), Op::AddBias, vec![y, b])
    };
    let cls = g.param(&format!("{bb}embedding.cls"), false);
    let pos = g.positional(POSITIONAL);
    let mut h = g.push(&format!("{bb}embedding"), Op::ClsConcatPos, vec![embedded, cls, pos]);

    // Encoder stack.
    for i in 0..config.n_layers {
        let p = format!("{bb}encoder.layers.{i}");
        let q = emit_linear(&mut g, &format!("{p}.q_proj"), h);
        let k = emit_linear(&mut g, &format!("{p}.k_proj"), h);
        let v = emit_linear(&mut g, &format!("{p}.v_proj"), h);
        let split = Op::SplitHeads { heads: config.n_heads };
        let qh = g.push(&format!("{p}.q_proj.split_heads"), split, vec![q]);
        let kh = g.push(&format!("{p}.k_proj.split_heads"), split, vec![k]);
        let vh = g.push(&format!("{p}.v_proj.split_heads"), split, vec![v]);
        let mut attn_inputs = vec![qh, kh, vh];
        let attn_op = match config.attention {
            AttentionKind::Vanilla => AttnOp::Vanilla,
            AttentionKind::Group { initial_groups, .. } => AttnOp::Group {
                n_groups: scheduler.get(i).copied().flatten().unwrap_or(initial_groups as f32),
                min_groups: group_defaults.min_groups,
                kmeans_iters: group_defaults.kmeans_iters,
            },
            AttentionKind::Performer { features } => {
                attn_inputs.push(g.param(&format!("{p}.attention.omega"), false));
                AttnOp::Performer { features }
            }
            AttentionKind::Linformer { .. } => {
                attn_inputs.push(g.param(&format!("{p}.attention.e_proj"), false));
                attn_inputs.push(g.param(&format!("{p}.attention.f_proj"), false));
                AttnOp::Linformer { max_windows: config.max_windows() + 1 }
            }
        };
        let attended = g.push(&format!("{p}.attention"), Op::Attention(attn_op), attn_inputs);
        let merged = g.push(&format!("{p}.attention.merge_heads"), Op::MergeHeads, vec![attended]);
        let projected = emit_linear(&mut g, &format!("{p}.out_proj"), merged);
        let sum1 = g.push(&format!("{p}.residual1"), Op::Add, vec![h, projected]);
        let x1 = emit_layer_norm(&mut g, &format!("{p}.norm1"), sum1);
        let ff1 = emit_linear(&mut g, &format!("{p}.ff.fc1"), x1);
        let act = g.push(&format!("{p}.ff.gelu"), Op::Gelu, vec![ff1]);
        let ff2 = emit_linear(&mut g, &format!("{p}.ff.fc2"), act);
        let sum2 = g.push(&format!("{p}.residual2"), Op::Add, vec![x1, ff2]);
        h = emit_layer_norm(&mut g, &format!("{p}.norm2"), sum2);
    }
    g.encoder_output = h;

    // Task head.
    g.output = match task {
        TaskKind::Backbone => h,
        TaskKind::Classifier { .. } => {
            let pooled = g.push("cls_pool", Op::ClsPool, vec![h]);
            emit_linear(&mut g, "head", pooled)
        }
        TaskKind::Imputer => {
            let windows = g.push("windows", Op::SliceWindows, vec![h]);
            let decoded = emit_linear(&mut g, "decoder", windows);
            let fold = Op::Fold1d {
                channels: config.channels,
                window: config.window,
                stride: config.stride,
            };
            g.push("fold", fold, vec![decoded])
        }
    };
    debug_assert!(g.validate().is_ok(), "emitted graph is malformed: {:?}", g.validate());
    g
}

/// Executes `graph` on `x` with `no_grad` [`Var`] operations — the exactness oracle.
///
/// `lookup` supplies parameter tensors by path and the positional table under
/// [`POSITIONAL`]. Every op mirrors the corresponding training-module forward
/// call-for-call, so the result is bit-identical to running the module tree itself.
pub fn run_var(
    graph: &Graph,
    x: &NdArray,
    lookup: &dyn Fn(&str) -> Option<NdArray>,
) -> Result<Var, PlanError> {
    let order = graph.schedule()?;
    no_grad(|| {
        let mut slots: Vec<Option<Var>> = vec![None; graph.values.len()];
        slots[graph.input.0] = Some(Var::constant(x.clone()));
        let fetch = |slots: &[Option<Var>], v: ValueId| -> Result<Var, PlanError> {
            if let Some(var) = &slots[v.0] {
                return Ok(var.clone());
            }
            let info = &graph.values[v.0];
            let name = match &info.binding {
                Some(Binding::Param { path, .. }) => path.as_str(),
                Some(Binding::Positional) => info.name.as_str(),
                _ => return Err(PlanError::MissingParam(info.name.clone())),
            };
            lookup(name).map(Var::constant).ok_or_else(|| PlanError::MissingParam(name.to_string()))
        };
        for &ni in &order {
            let node = &graph.nodes[ni];
            let mut ins = Vec::with_capacity(node.inputs.len());
            for &v in &node.inputs {
                ins.push(fetch(&slots, v)?);
            }
            let out = exec_var(&node.op, &ins, x.shape());
            slots[node.output.0] = Some(out);
        }
        slots[graph.output.0].take().ok_or_else(|| PlanError::MissingParam("graph output".into()))
    })
}

/// One node under the `Var` interpreter, using exactly the training modules' op chains.
fn exec_var(op: &Op, ins: &[Var], input_shape: &[usize]) -> Var {
    match op {
        Op::Matmul => ins[0].matmul(&ins[1]),
        Op::AddBias => ins[0].add(&ins[1]),
        Op::Linear { bias } => {
            let y = ins[0].matmul(&ins[1]);
            if *bias {
                y.add(&ins[2])
            } else {
                y
            }
        }
        Op::Unfold1d { window, stride } => ins[0].unfold1d(*window, *stride),
        Op::WindowEmbed { window, stride, bias } => {
            let y = ins[0].unfold1d(*window, *stride).matmul(&ins[1]);
            if *bias {
                y.add(&ins[2])
            } else {
                y
            }
        }
        Op::ClsConcatPos => {
            // Mirrors `TimeConvEmbed::forward` after the convolution.
            let embedded = &ins[0];
            let shape = embedded.shape();
            let (batch, n, d) = (shape[0], shape[1], shape[2]);
            let cls = ins[1].reshape(&[1, 1, d]);
            let cls_batch = cls.mul(&Var::constant(NdArray::ones(&[batch, 1, d])));
            let with_cls = Var::concat(&[cls_batch, embedded.clone()], 1);
            let pos = ins[2].slice_axis(0, 0, n + 1);
            with_cls.add(&pos)
        }
        Op::LayerNorm { eps } => {
            // Mirrors `rita_nn::layers::LayerNorm::forward`.
            let x = &ins[0];
            let last = x.shape().len() - 1;
            let mean = x.mean_axis(last);
            let centered = x.sub(&mean);
            let var = centered.square().mean_axis(last);
            let denom = var.add_scalar(*eps).sqrt();
            centered.div(&denom).mul(&ins[1]).add(&ins[2])
        }
        Op::Gelu => ins[0].gelu(),
        Op::Add => ins[0].add(&ins[1]),
        Op::SplitHeads { heads } => crate::attention::split_heads(&ins[0], *heads),
        Op::MergeHeads => crate::attention::merge_heads(&ins[0]),
        Op::Attention(attn) => exec_var_attention(attn, ins),
        Op::ClsPool => {
            let shape = ins[0].shape();
            ins[0].slice_axis(1, 0, 1).reshape(&[shape[0], shape[2]])
        }
        Op::SliceWindows => {
            let n = ins[0].shape()[1];
            ins[0].slice_axis(1, 1, n)
        }
        Op::Fold1d { channels, window, stride } => {
            ins[0].fold1d(*channels, *window, *stride, input_shape[2])
        }
    }
}

fn exec_var_attention(attn: &AttnOp, ins: &[Var]) -> Var {
    let (q, k, v) = (&ins[0], &ins[1], &ins[2]);
    let shape = q.shape();
    let (b, heads, n_windows, dh) = (shape[0], shape[1], shape[2], shape[3]);
    match attn {
        AttnOp::Vanilla => q.fused_attention(k, v, 1.0 / (dh as f32).sqrt()),
        AttnOp::Group { n_groups, min_groups, kmeans_iters } => {
            // Mirrors `GroupAttention::forward`'s fused sparse path with the scheduler
            // target frozen at graph-emission time.
            let groups = (n_groups.round() as usize).clamp((*min_groups).min(n_windows), n_windows);
            let keys_detached = k.to_array();
            let groupings = group_key_blocks(&keys_detached, groups, *kmeans_iters);
            let counts_flat: Vec<f32> =
                groupings.iter().flat_map(|g| g.counts.iter().map(|&c| c as f32)).collect();
            let inv_counts = NdArray::from_vec(
                counts_flat.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                &[b, heads, groups, 1],
            )
            .expect("inverse count shape");
            let segments: Arc<[usize]> = groupings
                .iter()
                .flat_map(|g| g.assignments.iter().copied())
                .collect::<Vec<_>>()
                .into();
            let representatives =
                k.segment_sum(segments.clone(), groups).mul(&Var::constant(inv_counts));
            let aggregated = v.segment_sum(segments, groups);
            let scale = 1.0 / (dh as f32).sqrt();
            let weights =
                NdArray::from_vec(counts_flat, &[b, heads, groups]).expect("group weight shape");
            q.fused_group_attention(&representatives, &aggregated, scale, weights)
        }
        AttnOp::Performer { features } => {
            // Mirrors `PerformerAttention::forward` / `feature_map`.
            let omega = &ins[3];
            let scale = (dh as f32).powf(-0.25);
            let feature_map = |x: &Var| {
                let logits = x.matmul(omega);
                let sq_norm = x.square().sum_axis(3).scale(0.5);
                let raw = logits.sub(&sq_norm);
                let stab = raw.to_array().max_all();
                raw.add_scalar(-stab).exp().scale(1.0 / (*features as f32).sqrt())
            };
            let phi_q = feature_map(&q.scale(scale));
            let phi_k = feature_map(&k.scale(scale));
            let kv = phi_k.transpose_last2().matmul(v);
            let numerator = phi_q.matmul(&kv);
            let phi_k_sum = phi_k.sum_axis(2);
            let denominator = phi_q.matmul_nt(&phi_k_sum).add_scalar(1e-6);
            numerator.div(&denominator)
        }
        AttnOp::Linformer { .. } => {
            // Mirrors `LinformerAttention::forward`.
            let (e_full, f_full) = (&ins[3], &ins[4]);
            let e = e_full.slice_axis(1, 0, n_windows);
            let f = f_full.slice_axis(1, 0, n_windows);
            let k_proj = e.matmul(k);
            let v_proj = f.matmul(v);
            let scores = q.matmul_nt_scaled(&k_proj, 1.0 / (dh as f32).sqrt());
            scores.softmax_last().matmul(&v_proj)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::model::embedding::sinusoidal_table;
    use crate::tasks::Classifier;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn kinds() -> Vec<AttentionKind> {
        vec![
            AttentionKind::Vanilla,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: false },
            AttentionKind::Performer { features: 8 },
            AttentionKind::Linformer { proj_dim: 6 },
        ]
    }

    #[test]
    fn graph_params_match_checkpoint_tensor_paths_exactly() {
        let mut rng = SeedableRng64::seed_from_u64(0);
        for kind in kinds() {
            let config = RitaConfig::tiny(3, 60, kind);
            let clf = Classifier::new(config, 4, &mut rng);
            let ckpt = Checkpoint::of_classifier(&clf, None);
            let graph = build_graph(&config, ckpt.task, &ckpt.scheduler);
            let mut graph_paths: Vec<String> =
                graph.param_paths().into_iter().map(|(p, _)| p).collect();
            let mut ckpt_paths: Vec<String> = ckpt.tensors.iter().map(|(p, _)| p.clone()).collect();
            graph_paths.sort();
            ckpt_paths.sort();
            assert_eq!(graph_paths, ckpt_paths, "{}", kind.name());
        }
    }

    #[test]
    fn var_oracle_matches_the_training_forward_bitwise() {
        let mut rng = SeedableRng64::seed_from_u64(1);
        for kind in kinds() {
            let config = RitaConfig::tiny(3, 60, kind);
            let mut clf = Classifier::new(config, 4, &mut rng);
            let ckpt = Checkpoint::of_classifier(&clf, None);
            let graph = build_graph(&config, ckpt.task, &ckpt.scheduler);
            let x = NdArray::randn(&[2, 3, 47], 1.0, &mut rng);

            let reference = no_grad(|| clf.logits(&x, false, &mut rng));
            let table = sinusoidal_table(config.max_windows() + 1, config.d_model);
            let oracle = run_var(&graph, &x, &|name| {
                if name == POSITIONAL {
                    return Some(table.clone());
                }
                ckpt.tensors.iter().find(|(p, _)| p == name).map(|(_, t)| t.to_f32())
            })
            .expect("oracle run");
            assert_eq!(
                reference.to_array().as_slice(),
                oracle.to_array().as_slice(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn fused_graph_is_bit_identical_to_the_unfused_one() {
        let mut rng = SeedableRng64::seed_from_u64(2);
        let config = RitaConfig::tiny(
            2,
            45,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: false },
        );
        let clf = Classifier::new(config, 3, &mut rng);
        let ckpt = Checkpoint::of_classifier(&clf, None);
        let x = NdArray::randn(&[3, 2, 38], 1.0, &mut rng);
        let table = sinusoidal_table(config.max_windows() + 1, config.d_model);
        let lookup = |name: &str| {
            if name == POSITIONAL {
                return Some(table.clone());
            }
            ckpt.tensors.iter().find(|(p, _)| p == name).map(|(_, t)| t.to_f32())
        };

        let unfused = build_graph(&config, ckpt.task, &ckpt.scheduler);
        let mut fused = unfused.clone();
        let folded = fused.peephole();
        assert!(folded > 0, "peephole should fuse the linear and embedding chains");
        assert!(fused.nodes.len() < unfused.nodes.len());

        let a = run_var(&unfused, &x, &lookup).unwrap();
        let b = run_var(&fused, &x, &lookup).unwrap();
        assert_eq!(a.to_array().as_slice(), b.to_array().as_slice());
    }
}
