//! GPU-friendly k-means grouping (§4.4 of the paper).
//!
//! The paper groups windows by the similarity of their key vectors using a k-means
//! variant designed around three requirements: a tight distance bound, cost not exceeding
//! `O(nN)`, and a formulation dominated by matrix products (the "GPU friendly" part).
//! This module implements both formulations the paper discusses:
//!
//! * [`kmeans_matmul`] — distances via `|v|² + |c|² − 2 v·c`, so the `n × N` distance
//!   matrix is one matrix product (the formulation RITA uses);
//! * [`kmeans_pairwise`] — the naive per-pair `(v − c)²` loop, kept as the ablation
//!   baseline for the grouping benchmark.
//!
//! Both run a small, fixed number of iterations: the paper observes that an imperfect
//! clustering is sufficient because group attention is robust to it.

use rita_tensor::NdArray;

/// Result of grouping `n` vectors into (at most) `num_groups` clusters.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// Cluster centres, shape `(num_groups, d)`.
    pub centers: NdArray,
    /// `assignments[i]` = cluster index of vector `i`.
    pub assignments: Vec<usize>,
    /// Number of members per cluster.
    pub counts: Vec<usize>,
    /// Maximum member-to-centre distance per cluster (the per-cluster radius used by the
    /// adaptive scheduler's merge test, Lemma 2).
    pub radii: Vec<f32>,
}

impl Grouping {
    /// Number of clusters.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// Number of grouped vectors.
    pub fn num_items(&self) -> usize {
        self.assignments.len()
    }

    /// Largest member-to-centre distance over all clusters (the `d` of Lemma 1).
    pub fn max_radius(&self) -> f32 {
        self.radii.iter().copied().fold(0.0, f32::max)
    }

    /// Builds the `(N, n)` averaging matrix `S` with `S[g, i] = 1/count_g` when item `i`
    /// belongs to group `g`. `S · K` yields the centroid representative key of each group.
    pub fn averaging_matrix(&self) -> NdArray {
        let n = self.num_items();
        let g = self.num_groups();
        let mut m = NdArray::zeros(&[g, n]);
        for (i, &a) in self.assignments.iter().enumerate() {
            let w = 1.0 / self.counts[a].max(1) as f32;
            m.set(&[a, i], w).expect("averaging matrix index");
        }
        m
    }

    /// Builds the `(N, n)` summation matrix `M` with `M[g, i] = 1` when item `i` belongs to
    /// group `g`. `M · V` performs the paper's *embedding aggregation* (Σ of member values).
    pub fn sum_matrix(&self) -> NdArray {
        let n = self.num_items();
        let g = self.num_groups();
        let mut m = NdArray::zeros(&[g, n]);
        for (i, &a) in self.assignments.iter().enumerate() {
            m.set(&[a, i], 1.0).expect("sum matrix index");
        }
        m
    }

    /// Group sizes as an `(1, N)` array (the `count_k` factors of the group softmax).
    pub fn counts_array(&self) -> NdArray {
        NdArray::from_vec(self.counts.iter().map(|&c| c as f32).collect(), &[1, self.num_groups()])
            .expect("counts array")
    }
}

/// Squared L2 norms of each row of `x` (`(n, d)` → length-`n` vector). Stride-aware:
/// reads the rows of a head-split view in place.
fn row_sq_norms(x: &NdArray) -> Vec<f32> {
    x.rows().map(|r| r.iter().map(|&v| v * v).sum()).collect()
}

/// Picks `k` initial centres with a deterministic farthest-point sweep (k-means++ without
/// the randomisation): the first centre is row 0, each subsequent centre is the row
/// farthest from all centres chosen so far. Deterministic, `O(nkd)`, and robust to the
/// periodic layouts produced by timeseries windows.
fn init_centers(x: &NdArray, k: usize) -> NdArray {
    let n = x.shape()[0];
    let mut chosen = Vec::with_capacity(k);
    chosen.push(0usize);
    // min squared distance from each point to the chosen set
    let mut min_dist = vec![f32::INFINITY; n];
    for _ in 1..k {
        let last = *chosen.last().expect("non-empty");
        let lastv = x.row(last).to_vec();
        let mut best = 0usize;
        let mut best_d = -1.0f32;
        for (i, xi) in x.rows().enumerate() {
            let dist: f32 = xi.iter().zip(&lastv).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist < min_dist[i] {
                min_dist[i] = dist;
            }
            if min_dist[i] > best_d {
                best_d = min_dist[i];
                best = i;
            }
        }
        chosen.push(best);
    }
    x.gather_rows(&chosen).expect("init centers")
}

/// Matrix-product formulation of k-means (the paper's GPU-friendly grouping).
///
/// `x` has shape `(n, d)`; `num_groups` is clamped to `n`. Runs `iters` assignment/update
/// rounds (the paper notes a handful suffices).
pub fn kmeans_matmul(x: &NdArray, num_groups: usize, iters: usize) -> Grouping {
    kmeans_impl(x, num_groups, iters, true)
}

/// Pairwise-difference formulation (ablation baseline; identical output, slower inner loop).
pub fn kmeans_pairwise(x: &NdArray, num_groups: usize, iters: usize) -> Grouping {
    kmeans_impl(x, num_groups, iters, false)
}

fn kmeans_impl(x: &NdArray, num_groups: usize, iters: usize, use_matmul: bool) -> Grouping {
    assert_eq!(x.ndim(), 2, "kmeans expects (n, d) input");
    let n = x.shape()[0];
    let d = x.shape()[1];
    assert!(n > 0, "kmeans on empty input");
    // Strided views (e.g. the per-head key blocks of a split-heads tensor) are consumed
    // in place as long as their rows are contiguous; anything wilder is compacted once.
    let x = &x.with_contiguous_rows();
    let k = num_groups.clamp(1, n);
    let mut centers = init_centers(x, k);
    let mut assignments = vec![0usize; n];
    // Squared distance of each point to its assigned centre, kept from the assignment
    // step; drives the empty-cluster re-seeding below.
    let mut dists = vec![0.0f32; n];

    let x_sq = row_sq_norms(x);
    for _ in 0..iters.max(1) {
        // --- assignment step ---
        if use_matmul {
            // dist²(i, j) = |x_i|² + |c_j|² − 2 x_i·c_j ; the cross term is one matmul
            // through the blocked packed kernel, with the −2 factor folded into its
            // packing pass instead of a per-element multiply here.
            let c_sq = row_sq_norms(&centers);
            let cross = x.matmul_nt_scaled(&centers, -2.0).expect("kmeans cross term"); // (n, k)
            let cross_data = cross.as_slice();
            for i in 0..n {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for j in 0..k {
                    let dist = x_sq[i] + c_sq[j] + cross_data[i * k + j];
                    if dist < best_d {
                        best_d = dist;
                        best = j;
                    }
                }
                assignments[i] = best;
                dists[i] = best_d.max(0.0);
            }
        } else {
            let cd = centers.as_slice();
            for (i, xi) in x.rows().enumerate() {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for j in 0..k {
                    let cj = &cd[j * d..(j + 1) * d];
                    let dist: f32 = xi.iter().zip(cj).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_d {
                        best_d = dist;
                        best = j;
                    }
                }
                assignments[i] = best;
                dists[i] = best_d;
            }
        }

        // --- update step ---
        let mut sums = vec![0.0f32; k * d];
        let mut counts = vec![0usize; k];
        for (xi, &a) in x.rows().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, &v) in sums[a * d..(a + 1) * d].iter_mut().zip(xi) {
                *s += v;
            }
        }
        let cd = centers.as_mut_slice();
        for g in 0..k {
            if counts[g] > 0 {
                let inv = 1.0 / counts[g] as f32;
                for j in 0..d {
                    cd[g * d + j] = sums[g * d + j] * inv;
                }
            }
        }

        // --- empty-cluster re-seeding ---
        // Periodic/duplicated key layouts (the windowed-timeseries regime) make the
        // farthest-point init pick duplicate centres, which leaves clusters permanently
        // empty under the old keep-the-stale-centre convention. Re-seed each empty
        // cluster with the most outlying point — ranked by the assignment step's
        // distances, i.e. against the pre-update centres, a deliberately cheap
        // heuristic — taken from a donor cluster that keeps at least one member, moving
        // that point's assignment so counts stay consistent within this iteration;
        // k ≤ n guarantees a donor exists whenever a cluster is empty.
        for g in 0..k {
            if counts[g] > 0 {
                continue;
            }
            let mut pick: Option<usize> = None;
            for i in 0..n {
                if counts[assignments[i]] < 2 {
                    continue;
                }
                if pick.is_none_or(|p| dists[i] > dists[p]) {
                    pick = Some(i);
                }
            }
            let i = pick.expect("k <= n guarantees a donor point for every empty cluster");
            let donor = assignments[i];
            cd[g * d..(g + 1) * d].copy_from_slice(x.row(i));
            // Keep the donor's stored centre equal to the mean of its *remaining*
            // members: the attention pipeline's representatives are exact segment
            // means, so the scheduler's radii/merge tests must measure against the
            // same centroids (a stale donor mean would let the Lemma-2 merge test
            // silently exceed the user's epsilon bound).
            counts[donor] -= 1;
            let inv = 1.0 / counts[donor] as f32;
            for j in 0..d {
                sums[donor * d + j] -= cd[g * d + j];
                cd[donor * d + j] = sums[donor * d + j] * inv;
            }
            assignments[i] = g;
            counts[g] = 1;
            dists[i] = 0.0;
        }
    }

    // Final statistics: counts and radii against the final centres/assignments.
    let mut counts = vec![0usize; k];
    let mut radii = vec![0.0f32; k];
    let cd = centers.as_slice();
    for (xi, &a) in x.rows().zip(assignments.iter()) {
        counts[a] += 1;
        let dist: f32 = xi
            .iter()
            .zip(&cd[a * d..(a + 1) * d])
            .map(|(x, c)| (x - c) * (x - c))
            .sum::<f32>()
            .sqrt();
        radii[a] = radii[a].max(dist);
    }

    Grouping { centers, assignments, counts, radii }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn two_blobs(n_per: usize, seed: u64) -> NdArray {
        let mut rng = SeedableRng64::seed_from_u64(seed);
        let a = NdArray::randn(&[n_per, 4], 0.1, &mut rng).add_scalar(0.0);
        let b = NdArray::randn(&[n_per, 4], 0.1, &mut rng).add_scalar(5.0);
        NdArray::concat(&[&a, &b], 0).unwrap()
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let x = two_blobs(20, 1);
        let g = kmeans_matmul(&x, 2, 8);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.num_items(), 40);
        // All of blob 1 lands in one cluster, all of blob 2 in the other.
        let first = g.assignments[0];
        assert!(g.assignments[..20].iter().all(|&a| a == first));
        assert!(g.assignments[20..].iter().all(|&a| a != first));
        assert_eq!(g.counts, vec![20, 20]);
        assert!(g.max_radius() < 1.0);
    }

    #[test]
    fn matmul_and_pairwise_formulations_agree() {
        let x = two_blobs(15, 3);
        let a = kmeans_matmul(&x, 4, 5);
        let b = kmeans_pairwise(&x, 4, 5);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.counts, b.counts);
        for (ca, cb) in a.centers.as_slice().iter().zip(b.centers.as_slice()) {
            assert!((ca - cb).abs() < 1e-4);
        }
    }

    #[test]
    fn num_groups_clamped_to_n() {
        let x = NdArray::from_vec(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], &[3, 2]).unwrap();
        let g = kmeans_matmul(&x, 10, 3);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn single_group_contains_everything() {
        let x = two_blobs(5, 7);
        let g = kmeans_matmul(&x, 1, 3);
        assert_eq!(g.counts, vec![10]);
        assert!(g.assignments.iter().all(|&a| a == 0));
        // Centre is the global mean.
        let mean = x.mean_axis(0, false).unwrap();
        for (c, m) in g.centers.as_slice().iter().zip(mean.as_slice()) {
            assert!((c - m).abs() < 1e-4);
        }
    }

    #[test]
    fn matrices_encode_assignments() {
        let x = two_blobs(4, 9);
        let g = kmeans_matmul(&x, 2, 5);
        let s = g.averaging_matrix();
        let m = g.sum_matrix();
        assert_eq!(s.shape(), &[2, 8]);
        // Rows of S sum to 1 (an average), rows of M sum to the group size.
        for row in 0..2 {
            let s_sum: f32 = (0..8).map(|i| s.get(&[row, i]).unwrap()).sum();
            let m_sum: f32 = (0..8).map(|i| m.get(&[row, i]).unwrap()).sum();
            assert!((s_sum - 1.0).abs() < 1e-5);
            assert!((m_sum - g.counts[row] as f32).abs() < 1e-5);
        }
        // S · K equals the centroids.
        let sk = s.matmul(&x).unwrap();
        for (a, b) in sk.as_slice().iter().zip(g.centers.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        let counts = g.counts_array();
        assert_eq!(counts.shape(), &[1, 2]);
        assert_eq!(counts.sum_all(), 8.0);
    }

    #[test]
    fn no_empty_clusters_with_duplicated_rows() {
        // 3 distinct prototypes repeated over 12 rows, 5 clusters: the farthest-point
        // init necessarily duplicates centres, and without re-seeding at least two
        // clusters would stay permanently empty.
        let mut rng = SeedableRng64::seed_from_u64(17);
        let protos = NdArray::randn(&[3, 4], 1.0, &mut rng);
        let mut data = Vec::new();
        for i in 0..12 {
            data.extend_from_slice(&protos.as_slice()[(i % 3) * 4..(i % 3 + 1) * 4]);
        }
        let x = NdArray::from_vec(data, &[12, 4]).unwrap();
        for iters in [1usize, 2, 4, 8] {
            for formulation in [kmeans_matmul, kmeans_pairwise] {
                let g = formulation(&x, 5, iters);
                assert_eq!(g.num_groups(), 5);
                assert!(
                    g.counts.iter().all(|&c| c > 0),
                    "iters {iters}: empty cluster in counts {:?}",
                    g.counts
                );
                assert_eq!(g.counts.iter().sum::<usize>(), 12);
            }
        }
    }

    #[test]
    fn reseeding_recovers_empty_clusters_on_periodic_keys() {
        // Two tight blobs but k = 4: re-seeding must place the extra centres on real
        // points (the farthest members), not leave them stale at duplicated inits.
        let x = two_blobs(10, 23);
        let g = kmeans_matmul(&x, 4, 6);
        assert!(g.counts.iter().all(|&c| c > 0), "counts {:?}", g.counts);
        // Re-seeded centres coincide with actual data points or means thereof, so every
        // radius stays bounded by the blob spread.
        assert!(g.max_radius() < 2.0);
    }

    /// After a re-seed the donor cluster's stored centre must still be the mean of its
    /// remaining members — the attention pipeline's representatives are exact segment
    /// means, and the scheduler's radii are measured against the stored centres, so the
    /// two must agree even when the final iteration moved a point.
    #[test]
    fn centers_equal_member_means_after_reseeding() {
        for (n_per, k, iters, seed) in [(10usize, 4usize, 1usize, 29u64), (8, 5, 3, 31)] {
            let x = two_blobs(n_per, seed);
            let g = kmeans_matmul(&x, k, iters);
            let d = x.shape()[1];
            for cluster in 0..g.num_groups() {
                assert!(g.counts[cluster] > 0);
                let mut mean = vec![0.0f32; d];
                for (i, &a) in g.assignments.iter().enumerate() {
                    if a == cluster {
                        for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                            *m += v;
                        }
                    }
                }
                for m in &mut mean {
                    *m /= g.counts[cluster] as f32;
                }
                for (j, m) in mean.iter().enumerate() {
                    let c = g.centers.as_slice()[cluster * d + j];
                    assert!(
                        (c - m).abs() < 1e-4,
                        "cluster {cluster} dim {j}: stored centre {c} vs member mean {m} \
                         (k={k}, iters={iters})"
                    );
                }
            }
        }
    }

    #[test]
    fn radii_cover_all_members() {
        let x = two_blobs(25, 11);
        let g = kmeans_matmul(&x, 3, 6);
        // Every member must lie within its cluster's reported radius.
        let d = x.shape()[1];
        for (i, &a) in g.assignments.iter().enumerate() {
            let dist: f32 = x.as_slice()[i * d..(i + 1) * d]
                .iter()
                .zip(&g.centers.as_slice()[a * d..(a + 1) * d])
                .map(|(p, c)| (p - c) * (p - c))
                .sum::<f32>()
                .sqrt();
            assert!(dist <= g.radii[a] + 1e-5);
        }
    }

    #[test]
    fn more_iterations_do_not_increase_distortion() {
        let x = two_blobs(30, 13);
        let distortion = |g: &Grouping| -> f32 {
            let d = x.shape()[1];
            g.assignments
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    x.as_slice()[i * d..(i + 1) * d]
                        .iter()
                        .zip(&g.centers.as_slice()[a * d..(a + 1) * d])
                        .map(|(p, c)| (p - c) * (p - c))
                        .sum::<f32>()
                })
                .sum()
        };
        let g1 = kmeans_matmul(&x, 4, 1);
        let g8 = kmeans_matmul(&x, 4, 8);
        assert!(distortion(&g8) <= distortion(&g1) + 1e-4);
    }
}
