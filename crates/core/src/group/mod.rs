//! Window grouping: the GPU-friendly k-means of §4.4 and the assignment matrices used by
//! the embedding-aggregation / group-softmax computation of §4.2.

pub mod kmeans;

pub use kmeans::{kmeans_matmul, kmeans_pairwise, Grouping};

use rita_tensor::NdArray;

/// Minimum total distance-matrix work (`Σ blocks · n · N · d`) before the k-means
/// fan-out pays for thread start-up; below this every block runs serially (the same
/// role as the batched matmul's `PARALLEL_THRESHOLD`).
const GROUPING_PARALLEL_THRESHOLD: usize = 64 * 64 * 16;

/// Runs the k-means grouping for every `(batch, head)` block of a `(b, h, n, d)` key
/// tensor, picking the worker count from the machine budget and the total
/// distance-matrix work. This is the single grouping entry point shared by the training
/// path (`GroupAttention`) and the tape-free inference engine, so both produce identical
/// clusterings by construction.
pub fn group_key_blocks(keys: &NdArray, n_groups: usize, iters: usize) -> Vec<Grouping> {
    let shape = keys.shape();
    let (b, h, n, dh) = (shape[0], shape[1], shape[2], shape[3]);
    let work = b * h * n * n_groups * dh;
    let threads = if work < GROUPING_PARALLEL_THRESHOLD {
        1
    } else {
        rita_tensor::worker_budget().min(b * h)
    };
    group_key_blocks_threaded(keys, n_groups, iters, threads)
}

/// [`group_key_blocks`] with an explicit worker count (1 = serial).
///
/// Each block is an O(1) strided sub-view of the (possibly head-split) key tensor
/// (k-means reads its rows in place), and the blocks are independent, so they fan out
/// across the shared scoped-chunk pool — the same batch×heads axis the batched matmul
/// parallelises over. Workers cap their inner matmuls at their share of the machine
/// budget so the two fan-outs never multiply into oversubscription.
pub fn group_key_blocks_threaded(
    keys: &NdArray,
    n_groups: usize,
    iters: usize,
    threads: usize,
) -> Vec<Grouping> {
    let (b, h) = (keys.shape()[0], keys.shape()[1]);
    let blocks: Vec<NdArray> = (0..b * h)
        .map(|idx| {
            keys.index_axis(0, idx / h)
                .and_then(|kb| kb.index_axis(0, idx % h))
                .expect("key block view")
        })
        .collect();
    if threads <= 1 {
        return blocks.iter().map(|block| kmeans_matmul(block, n_groups, iters)).collect();
    }
    let mut results: Vec<Option<Grouping>> = (0..blocks.len()).map(|_| None).collect();
    let per = blocks.len().div_ceil(threads);
    // Each worker gets its share of the machine budget for the matmuls inside k-means
    // (serial when the block fan-out already saturates the pool, more when there are
    // fewer blocks than cores), so the two fan-outs never multiply into
    // oversubscription but idle cores still serve the matmuls.
    let inner = rita_tensor::worker_budget().div_ceil(threads).max(1);
    rita_tensor::scoped_chunks_mut(&mut results, 1, per, |start, chunk| {
        rita_tensor::with_worker_threads(inner, || {
            for (slot, block) in chunk.iter_mut().zip(&blocks[start..]) {
                *slot = Some(kmeans_matmul(block, n_groups, iters));
            }
        });
    });
    results.into_iter().map(|g| g.expect("worker filled every slot")).collect()
}
