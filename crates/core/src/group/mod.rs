//! Window grouping: the GPU-friendly k-means of §4.4 and the assignment matrices used by
//! the embedding-aggregation / group-softmax computation of §4.2.

pub mod kmeans;

pub use kmeans::{kmeans_matmul, kmeans_pairwise, Grouping};
