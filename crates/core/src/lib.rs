//! # rita-core
//!
//! The RITA timeseries-analytics tool (SIGMOD 2024): a Transformer backbone whose
//! self-attention is replaced by **group attention** — windows are clustered by key
//! similarity and attention is computed at group granularity with an exactness-preserving
//! group softmax and embedding aggregation — plus the **adaptive scheduler** that picks
//! the number of groups from a user error bound and predicts the batch size from
//! `(length, groups)`.
//!
//! Crate layout (matching the paper's sections):
//!
//! * [`attention`] — vanilla, group (§4), Performer and Linformer mechanisms behind one
//!   trait, so the evaluation's comparisons run on an identical architecture.
//! * [`group`] — the GPU-friendly k-means grouping (§4.4) and assignment matrices.
//! * [`scheduler`] — error bound (§4.3), cluster merging and momentum update (§5.1),
//!   memory model, batch-size binary search and the learned `B = f(L, N)` predictor (§5.2).
//! * [`model`] — time-aware convolution input stage, encoder stack, assembled backbone (§3).
//! * [`tasks`] — classification, imputation, pretraining + few-label fine-tuning, and
//!   forecasting (Appendix A.7).
//!
//! ```
//! use rand::SeedableRng;
//! use rita_core::attention::AttentionKind;
//! use rita_core::model::RitaConfig;
//! use rita_core::tasks::{Classifier, TrainConfig};
//! use rita_data::{DatasetKind, TimeseriesDataset};
//!
//! let mut rng = rita_tensor::SeedableRng64::seed_from_u64(0);
//! let data = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 10, 2, 40, &mut rng);
//! let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
//! let mut classifier = Classifier::new(config, 5, &mut rng);
//! let report = classifier.train(&data, &TrainConfig { epochs: 1, batch_size: 5, ..Default::default() }, &mut rng);
//! assert!(report.final_loss().is_finite());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod attention;
pub mod checkpoint;
pub mod graph;
pub mod group;
pub mod model;
pub mod scheduler;
pub mod tasks;

pub use attention::{Attention, AttentionKind, GroupAttention, GroupAttentionConfig};
pub use checkpoint::{Checkpoint, CheckpointError, TaskKind};
pub use model::{RitaConfig, RitaModel};
pub use tasks::{Classifier, Imputer, TrainConfig, TrainReport};
