//! Model configuration shared by every attention variant.

use crate::attention::AttentionKind;

/// Number of windows a `(window, stride)` convolution produces on a series of `len`
/// timestamps — the single home of this arithmetic (config, embedding and scheduler all
/// rely on it agreeing). Panics with a clear message when the series is shorter than the
/// window: the naive `len - window` underflows `usize` otherwise.
pub fn windows_for(len: usize, window: usize, stride: usize) -> usize {
    assert!(
        len >= window,
        "series length {len} is shorter than the convolution window {window}; \
         pad the series or configure a smaller window"
    );
    (len - window) / stride.max(1) + 1
}

/// Hyper-parameters of a RITA model (Fig. 1 of the paper).
///
/// The defaults follow Appendix A.1: an 8-layer stack of 2-head attention with hidden
/// dimension 64 and a convolution kernel of 5 timestamps. Harness code typically shrinks
/// `n_layers` so the full experiment suite runs on a laptop CPU.
#[derive(Debug, Clone, Copy)]
pub struct RitaConfig {
    /// Number of input channels (variables) of the timeseries.
    pub channels: usize,
    /// Maximum series length the model will see (determines the positional table and the
    /// Linformer projection size).
    pub max_len: usize,
    /// Convolution window width `w` — timestamps per window.
    pub window: usize,
    /// Convolution stride; the paper chunks the series into windows, i.e. stride = width.
    pub stride: usize,
    /// Hidden dimension d of the encoder.
    pub d_model: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Number of stacked encoder layers.
    pub n_layers: usize,
    /// Feed-forward hidden size.
    pub ff_hidden: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Attention mechanism used by every layer.
    pub attention: AttentionKind,
}

impl Default for RitaConfig {
    fn default() -> Self {
        Self {
            channels: 3,
            max_len: 200,
            window: 5,
            stride: 5,
            d_model: 64,
            n_heads: 2,
            n_layers: 8,
            ff_hidden: 128,
            dropout: 0.1,
            attention: AttentionKind::default_group(),
        }
    }
}

impl RitaConfig {
    /// A small configuration suitable for unit tests and CPU-scale experiments.
    pub fn tiny(channels: usize, max_len: usize, attention: AttentionKind) -> Self {
        Self {
            channels,
            max_len,
            window: 5,
            stride: 5,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            ff_hidden: 32,
            dropout: 0.0,
            attention,
        }
    }

    /// Number of windows a series of length `len` produces.
    pub fn windows_for(&self, len: usize) -> usize {
        windows_for(len, self.window, self.stride)
    }

    /// Maximum number of windows (for `max_len`).
    pub fn max_windows(&self) -> usize {
        self.windows_for(self.max_len)
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "d_model must be divisible by n_heads");
        self.d_model / self.n_heads
    }

    /// Checks internal consistency without panicking, naming the first constraint
    /// violated. The publish path uses this so a corrupt checkpoint is *rejected*
    /// rather than crashing a serving worker.
    pub fn check(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be positive".into());
        }
        if self.window == 0 || self.stride == 0 {
            return Err("window and stride must be positive".into());
        }
        if self.max_len < self.window {
            return Err("max_len must cover at least one window".into());
        }
        if self.n_heads == 0 || !self.d_model.is_multiple_of(self.n_heads) {
            return Err("d_model must be divisible by n_heads".into());
        }
        if self.n_layers == 0 {
            return Err("need at least one encoder layer".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Validates internal consistency, panicking with a descriptive message otherwise
    /// (training-side convenience; serving uses [`RitaConfig::check`]).
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RitaConfig::default();
        assert_eq!(c.d_model, 64);
        assert_eq!(c.n_heads, 2);
        assert_eq!(c.n_layers, 8);
        assert_eq!(c.window, 5);
        c.validate();
    }

    #[test]
    fn window_arithmetic() {
        let c = RitaConfig { window: 10, stride: 10, max_len: 200, ..Default::default() };
        assert_eq!(c.windows_for(200), 20);
        assert_eq!(c.windows_for(10), 1);
        assert_eq!(c.max_windows(), 20);
        assert_eq!(c.head_dim(), 32);
    }

    #[test]
    #[should_panic(expected = "shorter than the convolution window")]
    fn windows_for_rejects_short_series() {
        let c = RitaConfig::default();
        let _ = c.windows_for(2);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn validate_rejects_bad_heads() {
        let c = RitaConfig { d_model: 10, n_heads: 3, ..Default::default() };
        c.validate();
    }

    #[test]
    fn check_reports_instead_of_panicking() {
        assert!(RitaConfig::default().check().is_ok());
        let c = RitaConfig { n_layers: 0, ..Default::default() };
        assert!(c.check().unwrap_err().contains("encoder layer"));
        let c = RitaConfig { dropout: 1.5, ..Default::default() };
        assert!(c.check().unwrap_err().contains("dropout"));
    }

    #[test]
    fn tiny_config_is_valid() {
        let c = RitaConfig::tiny(12, 100, AttentionKind::Vanilla);
        c.validate();
        assert_eq!(c.channels, 12);
        assert_eq!(c.n_layers, 2);
    }
}
