//! The input stage of RITA (Fig. 1): time-aware convolution, positional embeddings, and
//! the `[CLS]` token.
//!
//! The time-aware convolution bridges the gap between raw multivariate timeseries and the
//! discrete semantic units a Transformer expects: `d` convolution kernels of shape
//! `w × m` chunk the series into windows and embed each window into a `d`-dimensional
//! vector, simultaneously capturing local structure and cross-channel correlations (§3).

use crate::model::config::RitaConfig;
use rand::Rng;
use rita_nn::{layers::Linear, Module, ParamVisitor, Var};
use rita_tensor::NdArray;

/// Window embedding + positional encoding + `[CLS]` token.
pub struct TimeConvEmbed {
    /// The convolution expressed as a linear map over unfolded windows
    /// (`channels · window → d_model`).
    pub conv: Linear,
    /// Learnable `[CLS]` embedding of shape `(d_model,)`.
    pub cls: Var,
    /// Fixed sinusoidal positional table of shape `(max_windows + 1, d_model)`.
    positional: NdArray,
    window: usize,
    stride: usize,
    channels: usize,
}

impl TimeConvEmbed {
    /// Creates the input stage for `config`.
    pub fn new(config: &RitaConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let conv = Linear::new(config.channels * config.window, config.d_model, rng);
        let cls = Var::parameter(NdArray::randn(&[config.d_model], 0.02, rng));
        let positional = sinusoidal_table(config.max_windows() + 1, config.d_model);
        Self {
            conv,
            cls,
            positional,
            window: config.window,
            stride: config.stride,
            channels: config.channels,
        }
    }

    /// Embeds a batch of raw series `(batch, channels, length)` into
    /// `(batch, windows + 1, d_model)`; position 0 is the `[CLS]` token.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "expected (batch, channels, length), got {shape:?}");
        assert_eq!(shape[1], self.channels, "channel mismatch: {} vs {}", shape[1], self.channels);
        assert!(
            shape[2] >= self.window,
            "series length {} is shorter than the convolution window {}; \
             pad the series or configure a smaller window",
            shape[2],
            self.window
        );
        let batch = shape[0];
        // Window embedding: unfold then project (the convolution).
        let windows = x.unfold1d(self.window, self.stride); // (B, n, c*w)
        let embedded = self.conv.forward(&windows); // (B, n, d)
        let n = embedded.shape()[1];
        let d = embedded.shape()[2];
        assert!(
            n < self.positional.shape()[0],
            "series produces {n} windows, more than the positional table supports"
        );
        // Prepend CLS: broadcast the learned vector across the batch.
        let cls = self.cls.reshape(&[1, 1, d]);
        let cls_batch = cls.mul(&Var::constant(NdArray::ones(&[batch, 1, d])));
        let with_cls = Var::concat(&[cls_batch, embedded], 1); // (B, n+1, d)
                                                               // Add positional encodings (constant, broadcast over the batch).
        let pos = self.positional.slice_axis(0, 0, n + 1).expect("positional slice");
        with_cls.add(&Var::constant(pos))
    }

    /// Number of windows produced for a series of length `len`. Panics with a clear
    /// error when `len` is shorter than the window (see [`crate::model::config::windows_for`]).
    pub fn windows_for(&self, len: usize) -> usize {
        crate::model::config::windows_for(len, self.window, self.stride)
    }

    /// Convolution window width.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Module for TimeConvEmbed {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("conv", |v| self.conv.visit_params(v));
        v.leaf("cls", &self.cls);
    }
}

/// Standard sinusoidal positional encoding table of shape `(len, d)`.
///
/// Public because the tape-free inference engine rebuilds the same table from the
/// checkpointed config instead of persisting it (it is fully determined by
/// `(len, d_model)`).
pub fn sinusoidal_table(len: usize, d: usize) -> NdArray {
    let mut data = vec![0.0f32; len * d];
    for pos in 0..len {
        for i in 0..d {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
            data[pos * d + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    NdArray::from_vec(data, &[len, d]).expect("positional table")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn config() -> RitaConfig {
        RitaConfig::tiny(3, 50, AttentionKind::Vanilla)
    }

    #[test]
    fn embeds_to_windows_plus_cls() {
        let mut r = rng(0);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::randn(&[4, 3, 50], 1.0, &mut r));
        let e = embed.forward(&x);
        // 50 / 5 = 10 windows + CLS
        assert_eq!(e.shape(), vec![4, 11, 16]);
        assert_eq!(embed.windows_for(50), 10);
        assert_eq!(embed.window(), 5);
    }

    #[test]
    fn shorter_series_use_fewer_positions() {
        let mut r = rng(1);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::randn(&[2, 3, 25], 1.0, &mut r));
        assert_eq!(embed.forward(&x).shape(), vec![2, 6, 16]);
    }

    #[test]
    fn cls_token_is_shared_across_batch() {
        let mut r = rng(2);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::randn(&[3, 3, 20], 1.0, &mut r));
        let e = embed.forward(&x).to_array();
        // Position 0 of every batch element is CLS + positional[0] — identical across batch.
        let first = e.index_axis0(0).unwrap().index_axis0(0).unwrap();
        for b in 1..3 {
            let other = e.index_axis0(b).unwrap().index_axis0(0).unwrap();
            assert_eq!(first, other);
        }
    }

    #[test]
    fn positional_encoding_differs_across_positions() {
        let table = sinusoidal_table(8, 16);
        assert_ne!(table.index_axis0(1).unwrap(), table.index_axis0(2).unwrap());
        // Values bounded in [-1, 1].
        assert!(table.max_all() <= 1.0 + 1e-6);
        assert!(table.min_all() >= -1.0 - 1e-6);
    }

    #[test]
    fn gradients_reach_conv_and_cls() {
        let mut r = rng(3);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::randn(&[2, 3, 30], 1.0, &mut r));
        embed.forward(&x).sum_all().backward();
        assert!(embed.conv.weight.grad().unwrap().norm() > 0.0);
        assert!(embed.cls.grad().unwrap().norm() > 0.0);
        assert_eq!(embed.parameters().len(), 3);
    }

    #[test]
    #[should_panic(expected = "shorter than the convolution window")]
    fn rejects_series_shorter_than_the_window() {
        // Regression: `len < window` used to underflow the usize subtraction in the
        // window arithmetic and die with an overflow panic instead of a clear error.
        let mut r = rng(5);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::zeros(&[1, 3, 3]));
        let _ = embed.forward(&x);
    }

    #[test]
    #[should_panic(expected = "shorter than the convolution window")]
    fn windows_for_rejects_short_series() {
        let mut r = rng(6);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let _ = embed.windows_for(2);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channel_count() {
        let mut r = rng(4);
        let embed = TimeConvEmbed::new(&config(), &mut r);
        let x = Var::constant(NdArray::zeros(&[1, 5, 50]));
        let _ = embed.forward(&x);
    }
}
