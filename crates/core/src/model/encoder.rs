//! The RITA encoder: a stack of Transformer encoder layers whose self-attention is
//! pluggable (vanilla, group, Performer, Linformer), as required by the paper's
//! evaluation methodology (§6.1, "Alternative Methods").

use crate::attention::{build_attention, merge_heads, split_heads, Attention, GroupAttentionStats};
use crate::model::config::RitaConfig;
use rand::Rng;
use rita_nn::layers::{Dropout, FeedForward, LayerNorm, Linear};
use rita_nn::{BufferVisitor, BufferVisitorMut, Module, ParamVisitor, Var};

/// One encoder layer: multi-head (pluggable) attention + feed-forward, each wrapped in a
/// residual connection and layer normalisation (post-norm, as in the original
/// Transformer and TST).
pub struct EncoderLayer {
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    out_proj: Linear,
    /// The attention mechanism (owned; group attention keeps scheduler state here).
    pub attention: Box<dyn Attention>,
    norm1: LayerNorm,
    norm2: LayerNorm,
    ff: FeedForward,
    dropout: Dropout,
    heads: usize,
}

impl EncoderLayer {
    /// Builds one layer for `config`.
    pub fn new(config: &RitaConfig, rng: &mut impl Rng) -> Self {
        let d = config.d_model;
        Self {
            q_proj: Linear::new(d, d, rng),
            k_proj: Linear::new(d, d, rng),
            v_proj: Linear::new(d, d, rng),
            out_proj: Linear::new(d, d, rng),
            attention: build_attention(
                config.attention,
                config.max_windows() + 1,
                config.head_dim(),
                rng,
            ),
            norm1: LayerNorm::new(d),
            norm2: LayerNorm::new(d),
            ff: FeedForward::new(d, config.ff_hidden, config.dropout, rng),
            dropout: Dropout::new(config.dropout),
            heads: config.n_heads,
        }
    }

    /// Applies the layer to `(batch, units, d_model)` embeddings.
    pub fn forward(&mut self, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        let q = split_heads(&self.q_proj.forward(x), self.heads);
        let k = split_heads(&self.k_proj.forward(x), self.heads);
        let v = split_heads(&self.v_proj.forward(x), self.heads);
        let attended = merge_heads(&self.attention.forward(&q, &k, &v));
        let attended = self.dropout.forward(&self.out_proj.forward(&attended), training, rng);
        let x = self.norm1.forward(&x.add(&attended));
        let ff_out = self.dropout.forward(&self.ff.forward(&x, training, rng), training, rng);
        self.norm2.forward(&x.add(&ff_out))
    }
}

impl Module for EncoderLayer {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("q_proj", |v| self.q_proj.visit_params(v));
        v.scope("k_proj", |v| self.k_proj.visit_params(v));
        v.scope("v_proj", |v| self.v_proj.visit_params(v));
        v.scope("out_proj", |v| self.out_proj.visit_params(v));
        v.scope("attention", |v| self.attention.visit_params(v));
        v.scope("norm1", |v| self.norm1.visit_params(v));
        v.scope("norm2", |v| self.norm2.visit_params(v));
        v.scope("ff", |v| self.ff.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("attention", |v| self.attention.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("attention", |v| self.attention.visit_buffers_mut(v));
    }
}

/// The full encoder stack.
pub struct RitaEncoder {
    /// The stacked layers.
    pub layers: Vec<EncoderLayer>,
}

impl RitaEncoder {
    /// Builds `config.n_layers` layers.
    pub fn new(config: &RitaConfig, rng: &mut impl Rng) -> Self {
        let layers = (0..config.n_layers).map(|_| EncoderLayer::new(config, rng)).collect();
        Self { layers }
    }

    /// Applies every layer in sequence.
    pub fn forward(&mut self, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, training, rng);
        }
        h
    }

    /// Group-attention statistics per layer (empty entries for non-group layers).
    pub fn group_stats(&self) -> Vec<Option<GroupAttentionStats>> {
        self.layers.iter().map(|l| l.attention.group_stats()).collect()
    }

    /// Average group count across group-attention layers, if any.
    pub fn mean_group_count(&self) -> Option<f32> {
        let counts: Vec<f32> =
            self.group_stats().into_iter().flatten().map(|s| s.current_groups as f32).collect();
        if counts.is_empty() {
            None
        } else {
            Some(counts.iter().sum::<f32>() / counts.len() as f32)
        }
    }

    /// Average *persistent* scheduler group-count target across group-attention layers —
    /// independent of which batch ran last, unlike [`RitaEncoder::mean_group_count`].
    pub fn mean_scheduled_groups(&self) -> Option<f32> {
        let targets: Vec<f32> =
            self.layers.iter().filter_map(|l| l.attention.scheduled_group_target()).collect();
        if targets.is_empty() {
            None
        } else {
            Some(targets.iter().sum::<f32>() / targets.len() as f32)
        }
    }

    /// Forces a fixed group count on every group-attention layer (Table 4's baseline).
    pub fn set_group_count(&mut self, n: usize) {
        for layer in &mut self.layers {
            layer.attention.set_group_count(n);
        }
    }

    /// Per-layer persistent scheduler targets, `None` for non-group layers — the
    /// scheduler state a checkpoint persists.
    pub fn scheduler_state(&self) -> Vec<Option<f32>> {
        self.layers.iter().map(|l| l.attention.scheduled_group_target()).collect()
    }

    /// Restores per-layer scheduler targets captured by [`RitaEncoder::scheduler_state`].
    /// Entries are matched by layer index; `None` entries are skipped.
    pub fn restore_scheduler_state(&mut self, targets: &[Option<f32>]) {
        for (layer, target) in self.layers.iter_mut().zip(targets) {
            if let Some(t) = target {
                layer.attention.restore_scheduled_target(*t);
            }
        }
    }
}

impl Module for RitaEncoder {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        for (i, layer) in self.layers.iter().enumerate() {
            v.scope_indexed("layers", i, |v| layer.visit_params(v));
        }
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        for (i, layer) in self.layers.iter().enumerate() {
            v.scope_indexed("layers", i, |v| layer.visit_buffers(v));
        }
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            v.scope_indexed("layers", i, |v| layer.visit_buffers_mut(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_tensor::{NdArray, SeedableRng64};

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn run_encoder(kind: AttentionKind) -> Var {
        let mut r = rng(0);
        let config = RitaConfig::tiny(3, 60, kind);
        let mut enc = RitaEncoder::new(&config, &mut r);
        let x = Var::constant(NdArray::randn(&[2, 13, 16], 1.0, &mut r));
        enc.forward(&x, false, &mut r)
    }

    #[test]
    fn all_attention_kinds_preserve_shape() {
        for kind in [
            AttentionKind::Vanilla,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: true },
            AttentionKind::Performer { features: 8 },
            AttentionKind::Linformer { proj_dim: 6 },
        ] {
            let y = run_encoder(kind);
            assert_eq!(y.shape(), vec![2, 13, 16], "{}", kind.name());
            assert!(!y.to_array().has_non_finite(), "{}", kind.name());
        }
    }

    #[test]
    fn encoder_is_trainable_end_to_end() {
        let mut r = rng(1);
        let config = RitaConfig::tiny(
            3,
            40,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: true },
        );
        let mut enc = RitaEncoder::new(&config, &mut r);
        let params = enc.parameters();
        assert!(!params.is_empty());
        let x = Var::constant(NdArray::randn(&[2, 9, 16], 1.0, &mut r));
        enc.forward(&x, true, &mut r).sum_all().backward();
        let with_grad = params.iter().filter(|p| p.grad().is_some()).count();
        // Every projection / norm / FF parameter should receive a gradient.
        assert!(with_grad as f32 >= params.len() as f32 * 0.9, "{with_grad}/{}", params.len());
    }

    #[test]
    fn group_stats_reported_only_for_group_layers() {
        let mut r = rng(2);
        let group_cfg = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let mut enc = RitaEncoder::new(&group_cfg, &mut r);
        assert_eq!(enc.mean_group_count(), Some(0.0), "no forward pass yet means zero groups used");
        let x = Var::constant(NdArray::randn(&[1, 9, 16], 1.0, &mut r));
        let _ = enc.forward(&x, false, &mut r);
        assert!(enc.mean_group_count().is_some());
        enc.set_group_count(3);
        let _ = enc.forward(&x, false, &mut r);
        assert_eq!(enc.mean_group_count().unwrap(), 3.0);

        let vanilla_cfg = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut vanilla_enc = RitaEncoder::new(&vanilla_cfg, &mut r);
        let _ = vanilla_enc.forward(&x, false, &mut r);
        assert!(vanilla_enc.mean_group_count().is_none());
    }

    #[test]
    fn linformer_layers_expose_projection_parameters() {
        let mut r = rng(3);
        let cfg = RitaConfig::tiny(3, 40, AttentionKind::Linformer { proj_dim: 4 });
        let enc = RitaEncoder::new(&cfg, &mut r);
        let plain = RitaEncoder::new(&RitaConfig::tiny(3, 40, AttentionKind::Vanilla), &mut r);
        assert!(enc.num_parameters() > plain.num_parameters());
    }
}
