//! The RITA model architecture (Fig. 1): configuration, the time-aware convolution input
//! stage, the encoder stack with pluggable attention, and the assembled backbone.

pub mod config;
pub mod embedding;
pub mod encoder;
pub mod rita;

pub use config::RitaConfig;
pub use embedding::TimeConvEmbed;
pub use encoder::{EncoderLayer, RitaEncoder};
pub use rita::RitaModel;
