//! The assembled RITA model: time-aware convolution embedding + encoder stack (Fig. 1).

use crate::attention::GroupAttentionStats;
use crate::model::config::RitaConfig;
use crate::model::embedding::TimeConvEmbed;
use crate::model::encoder::RitaEncoder;
use crate::scheduler::MemoryModel;
use rand::Rng;
use rita_nn::{BufferVisitor, BufferVisitorMut, Module, ParamVisitor, Var};
use rita_tensor::NdArray;

/// The backbone shared by every downstream task: it maps a batch of raw series
/// `(batch, channels, length)` to contextualised embeddings `(batch, windows + 1, d_model)`
/// where position 0 is the `[CLS]` summary token.
pub struct RitaModel {
    /// Model configuration.
    pub config: RitaConfig,
    /// Input stage (convolution windows + positional + CLS).
    pub embedding: TimeConvEmbed,
    /// Encoder stack.
    pub encoder: RitaEncoder,
}

impl RitaModel {
    /// Builds a model for `config`.
    pub fn new(config: RitaConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        Self {
            config,
            embedding: TimeConvEmbed::new(&config, rng),
            encoder: RitaEncoder::new(&config, rng),
        }
    }

    /// Encodes a batch of raw series into contextual embeddings (CLS at position 0).
    pub fn encode(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let input = Var::constant(x.clone());
        let embedded = self.embedding.forward(&input);
        self.encoder.forward(&embedded, training, rng)
    }

    /// The `[CLS]` representation of each series: `(batch, d_model)`.
    pub fn encode_cls(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let h = self.encode(x, training, rng);
        let shape = h.shape();
        h.slice_axis(1, 0, 1).reshape(&[shape[0], shape[2]])
    }

    /// The per-window representations (CLS dropped): `(batch, windows, d_model)`.
    pub fn encode_windows(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let h = self.encode(x, training, rng);
        let shape = h.shape();
        h.slice_axis(1, 1, shape[1])
    }

    /// Per-layer group-attention statistics (for the scheduler experiments).
    pub fn group_stats(&self) -> Vec<Option<GroupAttentionStats>> {
        self.encoder.group_stats()
    }

    /// Average number of groups across group-attention layers after the last forward pass.
    pub fn mean_group_count(&self) -> Option<f32> {
        self.encoder.mean_group_count()
    }

    /// Average persistent scheduler group-count target across group-attention layers.
    /// Defined from construction on (the configured initial group count) and independent
    /// of batch order, which makes it the right `N` for batch-size planning (§5.2); the
    /// count an actual batch uses is this target clamped to the batch's window count.
    pub fn mean_scheduled_groups(&self) -> Option<f32> {
        self.encoder.mean_scheduled_groups()
    }

    /// Forces a fixed group count on all group-attention layers.
    pub fn set_group_count(&mut self, n: usize) {
        self.encoder.set_group_count(n);
    }

    /// Per-layer persistent scheduler group-count targets (`None` for non-group
    /// layers) — the §5.1 state a checkpoint persists so a restart resumes the exact
    /// schedule.
    pub fn scheduler_state(&self) -> Vec<Option<f32>> {
        self.encoder.scheduler_state()
    }

    /// Restores scheduler targets captured by [`RitaModel::scheduler_state`].
    pub fn restore_scheduler_state(&mut self, targets: &[Option<f32>]) {
        self.encoder.restore_scheduler_state(targets);
    }

    /// The memory-relevant shape of this model, for the §5.2 batch-size machinery.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel {
            d_model: self.config.d_model,
            layers: self.config.n_layers,
            heads: self.config.n_heads,
            ff_hidden: self.config.ff_hidden,
            channels: self.config.channels,
            window: self.config.window,
            stride: self.config.stride,
            bytes_per_element: 4,
        }
    }
}

impl Module for RitaModel {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("embedding", |v| self.embedding.visit_params(v));
        v.scope("encoder", |v| self.encoder.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("encoder", |v| self.encoder.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("encoder", |v| self.encoder.visit_buffers_mut(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn encode_shapes_for_all_views() {
        let mut r = rng(0);
        let config = RitaConfig::tiny(3, 60, AttentionKind::default_group());
        let mut model = RitaModel::new(config, &mut r);
        let x = NdArray::randn(&[4, 3, 60], 1.0, &mut r);
        assert_eq!(model.encode(&x, false, &mut r).shape(), vec![4, 13, 16]);
        assert_eq!(model.encode_cls(&x, false, &mut r).shape(), vec![4, 16]);
        assert_eq!(model.encode_windows(&x, false, &mut r).shape(), vec![4, 12, 16]);
        assert!(model.mean_group_count().is_some());
    }

    #[test]
    fn model_has_many_parameters_and_all_require_grad() {
        let mut r = rng(1);
        let model = RitaModel::new(RitaConfig::tiny(2, 40, AttentionKind::Vanilla), &mut r);
        let params = model.parameters();
        assert!(params.len() > 20);
        assert!(params.iter().all(|p| p.requires_grad()));
        assert!(model.num_parameters() > 1000);
    }

    #[test]
    fn different_inputs_produce_different_cls() {
        let mut r = rng(2);
        let mut model = RitaModel::new(RitaConfig::tiny(1, 30, AttentionKind::Vanilla), &mut r);
        let a = NdArray::randn(&[1, 1, 30], 1.0, &mut r);
        let b = NdArray::randn(&[1, 1, 30], 1.0, &mut r);
        let ca = model.encode_cls(&a, false, &mut r).to_array();
        let cb = model.encode_cls(&b, false, &mut r).to_array();
        assert!(ca.sub(&cb).unwrap().norm() > 1e-4);
    }
}
