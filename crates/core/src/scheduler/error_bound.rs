//! The error-bound machinery of §4.3 (Lemma 1).
//!
//! Lemma 1: if every key lies within distance `d` of its group representative and all key
//! vectors live in a ball of radius `R`, then every entry of the restored group-attention
//! matrix is within a multiplicative factor `ε` of the exact attention, provided
//! `d ≤ ln(ε) / (2R)`. The adaptive scheduler inverts this to translate a user-facing
//! error bound ε into a distance threshold for the grouping.

use rita_tensor::NdArray;

/// Translates the user's error bound ε (> 1) into the maximum allowed distance between a
/// key and its group representative, given the radius `r` of the ball containing all keys.
pub fn distance_threshold(epsilon: f32, radius: f32) -> f32 {
    assert!(epsilon > 1.0, "the error bound must be > 1, got {epsilon}");
    if radius <= 0.0 {
        // Degenerate case: all keys identical, any grouping is exact.
        return f32::INFINITY;
    }
    epsilon.ln() / (2.0 * radius)
}

/// The inverse direction of Lemma 1: given a grouping whose worst key-to-representative
/// distance is `d` and a key-ball radius `r`, the guaranteed multiplicative error bound.
pub fn guaranteed_epsilon(d: f32, radius: f32) -> f32 {
    (2.0 * d * radius).exp()
}

/// Radius of the ball containing all key vectors: `max_i ||k_i||` for keys given as the
/// rows of an `(n, d)` (or any `(..., d)`) array.
pub fn key_ball_radius(keys: &NdArray) -> f32 {
    let d = *keys.shape().last().unwrap_or(&1);
    if d == 0 || keys.is_empty() {
        return 0.0;
    }
    // Stride-aware: head-split or sliced key views are read in place.
    let keys = keys.with_contiguous_rows();
    let mut max_sq = 0.0f32;
    for row in keys.rows() {
        let sq: f32 = row.iter().map(|&x| x * x).sum();
        max_sq = max_sq.max(sq);
    }
    max_sq.sqrt()
}

/// Checks Lemma 1 empirically: the elementwise ratio between an approximate attention
/// row (computed from representatives) and the exact attention row, returning the maximum
/// of `max(ratio, 1/ratio)` over all entries. Used by property tests.
pub fn max_attention_ratio(exact: &NdArray, approx: &NdArray) -> f32 {
    assert_eq!(exact.shape(), approx.shape());
    let (exact, approx) = (exact.materialize(), approx.materialize());
    let mut worst = 1.0f32;
    for (&e, &a) in exact.as_slice().iter().zip(approx.as_slice()) {
        if e <= 0.0 || a <= 0.0 {
            continue;
        }
        let ratio = a / e;
        worst = worst.max(ratio.max(1.0 / ratio));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_grows_with_epsilon_and_shrinks_with_radius() {
        let d1 = distance_threshold(1.5, 2.0);
        let d2 = distance_threshold(2.0, 2.0);
        let d3 = distance_threshold(2.0, 4.0);
        assert!(d2 > d1);
        assert!(d3 < d2);
        assert!((d2 - (2.0f32).ln() / 4.0).abs() < 1e-6);
    }

    #[test]
    fn threshold_and_guarantee_are_inverses() {
        let r = 3.0;
        let eps = 2.5;
        let d = distance_threshold(eps, r);
        let back = guaranteed_epsilon(d, r);
        assert!((back - eps).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "error bound must be > 1")]
    fn epsilon_must_exceed_one() {
        let _ = distance_threshold(1.0, 1.0);
    }

    #[test]
    fn zero_radius_allows_any_distance() {
        assert!(distance_threshold(2.0, 0.0).is_infinite());
    }

    #[test]
    fn ball_radius_is_max_norm() {
        let keys = NdArray::from_vec(vec![3.0, 4.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]).unwrap();
        assert!((key_ball_radius(&keys) - 5.0).abs() < 1e-6);
        assert_eq!(key_ball_radius(&NdArray::zeros(&[0, 2])), 0.0);
        // works on batched keys too
        let batched = keys.reshape(&[1, 3, 2]).unwrap();
        assert!((key_ball_radius(&batched) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn ratio_of_identical_matrices_is_one() {
        let a = NdArray::from_vec(vec![0.25, 0.75, 0.5, 0.5], &[2, 2]).unwrap();
        assert!((max_attention_ratio(&a, &a) - 1.0).abs() < 1e-6);
        let b = NdArray::from_vec(vec![0.5, 0.75, 0.5, 0.5], &[2, 2]).unwrap();
        assert!(max_attention_ratio(&a, &b) >= 2.0 - 1e-6);
    }
}
