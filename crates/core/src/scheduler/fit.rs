//! Learning the batch-size prediction function `B = f(L, N)` (§5.2, Alg. 3).
//!
//! The paper samples `(Lᵢ, Nᵢ)` points, finds the maximal batch size `Bᵢ` for each with a
//! binary search, fits a function prior with SciPy's `curve_fit`, and — because a single
//! function over the whole plane fits poorly — uses a dynamic program to split the plane
//! `{1 ≤ L ≤ L_max, 1 ≤ N ≤ L}` into sub-planes, each with its own fitted function.
//!
//! This module reproduces that pipeline without SciPy: the function prior is a small basis
//! of candidate forms (`a/L + c`, `a/(L·N) + c`, `a/L + b/N + c`, `a + b·L + c·N` on the
//! reciprocal scale), each fitted by linear least squares, and the same interval DP picks
//! the optimal split along the length axis.

use super::memory::{usable_budget, MemoryModel, DEFAULT_BUDGET_FRACTION};

/// One observation: for series length `len` and group count `groups`, the memory oracle
/// admits batch size `batch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Series length L.
    pub len: usize,
    /// Average group count N.
    pub groups: usize,
    /// Maximal admissible batch size B.
    pub batch: usize,
}

/// A fitted candidate function for one region of the (L, N) plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FittedFn {
    /// `B ≈ a / L + c` with coefficients `(a, c)`.
    InverseLen(f32, f32),
    /// `B ≈ a / (L · N) + c` with coefficients `(a, c)`.
    InverseLenGroups(f32, f32),
    /// `B ≈ a / L + b / N + c` with coefficients `(a, b, c)`.
    InverseBoth(f32, f32, f32),
    /// `B ≈ a + b·L + c·N` with coefficients `(a, b, c)`.
    Affine(f32, f32, f32),
}

impl FittedFn {
    /// Evaluates the fitted function.
    pub fn predict(&self, len: usize, groups: usize) -> f32 {
        let l = len.max(1) as f32;
        let n = groups.max(1) as f32;
        match *self {
            FittedFn::InverseLen(a, c) => a / l + c,
            FittedFn::InverseLenGroups(a, c) => a / (l * n) + c,
            FittedFn::InverseBoth(a, b, c) => a / l + b / n + c,
            FittedFn::Affine(a, b, c) => a + b * l + c * n,
        }
    }
}

/// Solves the normal equations of a small linear least-squares problem
/// (`columns` are the basis functions evaluated at every point).
fn least_squares(columns: &[Vec<f32>], target: &[f32]) -> Option<Vec<f32>> {
    let k = columns.len();
    let n = target.len();
    if n == 0 || columns.iter().any(|c| c.len() != n) {
        return None;
    }
    // Normal matrix A (k×k) and right-hand side b (k).
    let mut a = vec![0.0f64; k * k];
    let mut b = vec![0.0f64; k];
    for i in 0..k {
        for j in 0..k {
            a[i * k + j] =
                columns[i].iter().zip(&columns[j]).map(|(&x, &y)| x as f64 * y as f64).sum();
        }
        b[i] = columns[i].iter().zip(target).map(|(&x, &y)| x as f64 * y as f64).sum();
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k).max_by(|&r1, &r2| {
            a[r1 * k + col].abs().partial_cmp(&a[r2 * k + col].abs()).unwrap()
        })?;
        if a[pivot * k + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..k {
                a.swap(col * k + j, pivot * k + j);
            }
            b.swap(col, pivot);
        }
        for row in col + 1..k {
            let f = a[row * k + col] / a[col * k + col];
            for j in col..k {
                a[row * k + j] -= f * a[col * k + j];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut s = b[row];
        for j in row + 1..k {
            s -= a[row * k + j] * x[j];
        }
        x[row] = s / a[row * k + row];
    }
    Some(x.into_iter().map(|v| v as f32).collect())
}

fn fit_error(f: &FittedFn, points: &[BatchPoint]) -> f32 {
    points
        .iter()
        .map(|p| {
            let e = f.predict(p.len, p.groups) - p.batch as f32;
            e * e
        })
        .sum()
}

/// Fits the best candidate function to a set of points, returning it with its squared error.
pub fn fit_best(points: &[BatchPoint]) -> Option<(FittedFn, f32)> {
    if points.is_empty() {
        return None;
    }
    let ones: Vec<f32> = points.iter().map(|_| 1.0).collect();
    let inv_l: Vec<f32> = points.iter().map(|p| 1.0 / p.len.max(1) as f32).collect();
    let inv_n: Vec<f32> = points.iter().map(|p| 1.0 / p.groups.max(1) as f32).collect();
    let inv_ln: Vec<f32> =
        points.iter().map(|p| 1.0 / (p.len.max(1) as f32 * p.groups.max(1) as f32)).collect();
    let l: Vec<f32> = points.iter().map(|p| p.len as f32).collect();
    let n: Vec<f32> = points.iter().map(|p| p.groups as f32).collect();
    let target: Vec<f32> = points.iter().map(|p| p.batch as f32).collect();

    let mut best: Option<(FittedFn, f32)> = None;
    let mut consider = |f: FittedFn| {
        let err = fit_error(&f, points);
        if best.map(|(_, e)| err < e).unwrap_or(true) {
            best = Some((f, err));
        }
    };
    if let Some(c) = least_squares(&[inv_l.clone(), ones.clone()], &target) {
        consider(FittedFn::InverseLen(c[0], c[1]));
    }
    if let Some(c) = least_squares(&[inv_ln.clone(), ones.clone()], &target) {
        consider(FittedFn::InverseLenGroups(c[0], c[1]));
    }
    if let Some(c) = least_squares(&[inv_l, inv_n, ones.clone()], &target) {
        consider(FittedFn::InverseBoth(c[0], c[1], c[2]));
    }
    if let Some(c) = least_squares(&[ones, l, n], &target) {
        consider(FittedFn::Affine(c[0], c[1], c[2]));
    }
    best
}

/// The batch-size predictor: a list of length intervals, each carrying its fitted function,
/// together with the memory model it was trained against. Predictions are clamped against
/// that model — a fitted function extrapolated beyond the training grid (an `Affine` fit in
/// particular) can otherwise return a batch size that blows the memory budget.
#[derive(Debug, Clone)]
pub struct BatchSizePredictor {
    /// `(len_upper_bound_inclusive, fitted function)` pairs sorted by length.
    pub segments: Vec<(usize, FittedFn)>,
    /// Points the predictor was trained on (kept for inspection / tests).
    pub training_points: Vec<BatchPoint>,
    /// The memory cost model predictions are clamped against.
    pub memory: MemoryModel,
    /// Simulated accelerator memory in bytes.
    pub budget_bytes: usize,
    /// Fraction of the budget that may be occupied (the paper targets 90 %).
    pub budget_fraction: f32,
    /// Hard upper bound on any predicted batch size.
    pub max_batch: usize,
}

impl BatchSizePredictor {
    /// Samples `(L, N)` points from `{1 ≤ L ≤ max_len, 1 ≤ N ≤ L/window}` on a coarse grid,
    /// queries the memory model for the maximal batch size of each, and fits a segmented
    /// predictor using the interval DP of Alg. 3 with at most `max_segments` pieces.
    pub fn train(
        memory: &MemoryModel,
        max_len: usize,
        budget_bytes: usize,
        samples_per_axis: usize,
        max_segments: usize,
    ) -> Self {
        Self::train_with(
            memory,
            max_len,
            budget_bytes,
            DEFAULT_BUDGET_FRACTION,
            1 << 16,
            samples_per_axis,
            max_segments,
        )
    }

    /// [`BatchSizePredictor::train`] with explicit budget fraction and batch-size cap.
    pub fn train_with(
        memory: &MemoryModel,
        max_len: usize,
        budget_bytes: usize,
        budget_fraction: f32,
        max_batch: usize,
        samples_per_axis: usize,
        max_segments: usize,
    ) -> Self {
        let samples_per_axis = samples_per_axis.max(2);
        let mut points = Vec::new();
        for li in 1..=samples_per_axis {
            let len = (max_len * li / samples_per_axis).max(memory.window);
            let max_groups = memory.windows(len);
            for ni in 1..=samples_per_axis {
                let groups = (max_groups * ni / samples_per_axis).max(1);
                let batch =
                    memory.max_batch_size(len, groups, budget_bytes, budget_fraction, max_batch);
                points.push(BatchPoint { len, groups, batch });
            }
        }
        let segments = Self::segment_dp(&points, max_segments);
        Self {
            segments,
            training_points: points,
            memory: *memory,
            budget_bytes,
            budget_fraction,
            max_batch,
        }
    }

    /// Interval dynamic program over the sorted distinct lengths: `dp[i]` = minimal total
    /// error covering the first `i` length values, splitting into contiguous segments.
    fn segment_dp(points: &[BatchPoint], max_segments: usize) -> Vec<(usize, FittedFn)> {
        let mut lens: Vec<usize> = points.iter().map(|p| p.len).collect();
        lens.sort_unstable();
        lens.dedup();
        let m = lens.len();
        if m == 0 {
            return Vec::new();
        }
        // cost[i][j]: best error fitting all points with length in lens[i..=j]
        let mut cost = vec![vec![f32::INFINITY; m]; m];
        let mut func = vec![vec![None; m]; m];
        for i in 0..m {
            for j in i..m {
                let subset: Vec<BatchPoint> = points
                    .iter()
                    .filter(|p| p.len >= lens[i] && p.len <= lens[j])
                    .copied()
                    .collect();
                if let Some((f, e)) = fit_best(&subset) {
                    cost[i][j] = e;
                    func[i][j] = Some(f);
                }
            }
        }
        // dp over the number of segments
        let max_segments = max_segments.max(1).min(m);
        let mut dp = vec![vec![f32::INFINITY; m + 1]; max_segments + 1];
        let mut parent = vec![vec![0usize; m + 1]; max_segments + 1];
        dp[0][0] = 0.0;
        for s in 1..=max_segments {
            for j in 1..=m {
                for i in 0..j {
                    if dp[s - 1][i].is_finite() && cost[i][j - 1].is_finite() {
                        let total = dp[s - 1][i] + cost[i][j - 1];
                        if total < dp[s][j] {
                            dp[s][j] = total;
                            parent[s][j] = i;
                        }
                    }
                }
            }
        }
        // pick the best segment count for full coverage
        let mut best_s = 1;
        for s in 1..=max_segments {
            if dp[s][m] < dp[best_s][m] {
                best_s = s;
            }
        }
        // walk back the split points
        let mut bounds = Vec::new();
        let mut j = m;
        let mut s = best_s;
        while s > 0 {
            let i = parent[s][j];
            bounds.push((i, j));
            j = i;
            s -= 1;
        }
        bounds.reverse();
        bounds
            .into_iter()
            .map(|(i, j)| (lens[j - 1], func[i][j - 1].expect("segment cost was finite")))
            .collect()
    }

    /// Predicts a batch size for a series length and group count (always ≥ 1), clamped so
    /// it never exceeds `max_batch` and never blows the memory budget — even far beyond
    /// the training grid, where the raw fit extrapolates freely. One exception mirrors
    /// Alg. 2's floor: when even a single sample exceeds the budget, the prediction is
    /// still 1 (training at all requires at least one sample per batch).
    pub fn predict(&self, len: usize, groups: usize) -> usize {
        self.clamp(self.predict_unclamped(len, groups), len, groups)
    }

    /// The raw fitted-function prediction without the memory-budget clamp.
    pub fn predict_unclamped(&self, len: usize, groups: usize) -> usize {
        let f = self
            .segments
            .iter()
            .find(|(upper, _)| len <= *upper)
            .or_else(|| self.segments.last())
            .map(|(_, f)| *f);
        match f {
            Some(f) => f.predict(len, groups).round().max(1.0) as usize,
            None => 1,
        }
    }

    /// Clamps a candidate batch size to `[1, max_batch]` and, when the cost model says the
    /// candidate overshoots the budget, falls back to the binary-search oracle (Alg. 2).
    fn clamp(&self, batch: usize, len: usize, groups: usize) -> usize {
        let batch = batch.clamp(1, self.max_batch.max(1));
        let limit = usable_budget(self.budget_bytes, self.budget_fraction);
        if self.memory.bytes_for(batch, len, groups) <= limit {
            batch
        } else {
            self.memory.max_batch_size(len, groups, self.budget_bytes, self.budget_fraction, batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3x + 2
        let xs = vec![1.0f32, 2.0, 3.0, 4.0];
        let ones = vec![1.0f32; 4];
        let ys: Vec<f32> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let c = least_squares(&[xs, ones], &ys).unwrap();
        assert!((c[0] - 3.0).abs() < 1e-4);
        assert!((c[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn fit_best_recovers_inverse_length_law() {
        // B = 1000/L exactly
        let points: Vec<BatchPoint> = [100usize, 200, 400, 500, 1000]
            .iter()
            .map(|&l| BatchPoint { len: l, groups: 10, batch: 1000 / l })
            .collect();
        let (f, err) = fit_best(&points).unwrap();
        assert!(err < 1.0, "err {err}");
        let pred = f.predict(250, 10);
        assert!((pred - 4.0).abs() < 1.5, "pred {pred}");
    }

    #[test]
    fn predictor_tracks_the_memory_oracle() {
        let memory = MemoryModel::default();
        let budget = 1024 * 1024 * 1024; // 1 GB keeps batch sizes small and varied
        let predictor = BatchSizePredictor::train(&memory, 4000, budget, 6, 4);
        assert!(!predictor.segments.is_empty());
        assert!(!predictor.training_points.is_empty());
        // Relative error against the oracle on unseen points should be modest.
        let mut total_rel = 0.0;
        let mut count = 0;
        for &(len, groups) in &[(700usize, 20usize), (1500, 64), (2500, 128), (3500, 32)] {
            let oracle = memory.max_batch_size(len, groups, budget, 0.9, 1 << 16);
            let pred = predictor.predict(len, groups);
            total_rel += (pred as f32 - oracle as f32).abs() / oracle.max(1) as f32;
            count += 1;
        }
        let mean_rel = total_rel / count as f32;
        assert!(mean_rel < 0.6, "mean relative error {mean_rel}");
    }

    #[test]
    fn prediction_is_monotone_enough_in_length() {
        let memory = MemoryModel::default();
        let predictor = BatchSizePredictor::train(&memory, 8000, 2 * 1024 * 1024 * 1024, 5, 3);
        let short = predictor.predict(400, 32);
        let long = predictor.predict(8000, 32);
        assert!(short >= long, "short {short} long {long}");
        assert!(predictor.predict(123, 4) >= 1);
    }

    #[test]
    fn extrapolated_predictions_respect_the_budget() {
        // Train up to length 1000, then query 2–4× beyond the grid: the raw fit may
        // extrapolate to arbitrary values, but the clamped prediction must stay inside
        // the budget and the batch cap.
        let memory = MemoryModel::default();
        let budget = 256 * 1024 * 1024;
        let p = BatchSizePredictor::train(&memory, 1000, budget, 5, 4);
        let limit = usable_budget(budget, p.budget_fraction);
        for &len in &[2000usize, 2500, 3000, 4000] {
            for &groups in &[1usize, 8, 64, 200] {
                let b = p.predict(len, groups);
                assert!(b >= 1 && b <= p.max_batch, "len {len} groups {groups} batch {b}");
                assert!(
                    memory.bytes_for(b, len, groups) <= limit,
                    "len {len} groups {groups}: predicted batch {b} blows the budget"
                );
            }
        }
    }

    #[test]
    fn runaway_affine_extrapolation_is_clamped() {
        // A hand-built predictor whose only segment grows linearly in L: beyond the
        // training grid the raw prediction explodes, the clamped one does not.
        let memory = MemoryModel::default();
        let budget = 64 * 1024 * 1024;
        let p = BatchSizePredictor {
            segments: vec![(1000, FittedFn::Affine(10.0, 1.0, 0.0))],
            training_points: Vec::new(),
            memory,
            budget_bytes: budget,
            budget_fraction: 0.9,
            max_batch: 4096,
        };
        let raw = p.predict_unclamped(4000, 4);
        assert!(raw > 4000, "raw extrapolation should explode, got {raw}");
        let clamped = p.predict(4000, 4);
        assert!(clamped < raw);
        assert!(clamped <= p.max_batch);
        assert!(memory.bytes_for(clamped, 4000, 4) <= usable_budget(budget, 0.9));
        // The clamp is exactly the oracle's boundary, not an arbitrary shrink.
        assert_eq!(clamped, memory.max_batch_size(4000, 4, budget, 0.9, 4096));
    }

    #[test]
    fn more_segments_never_fit_worse() {
        let memory = MemoryModel::default();
        let budget = 512 * 1024 * 1024;
        let one = BatchSizePredictor::train(&memory, 3000, budget, 5, 1);
        let four = BatchSizePredictor::train(&memory, 3000, budget, 5, 4);
        let sse = |p: &BatchSizePredictor| -> f32 {
            p.training_points
                .iter()
                .map(|pt| {
                    let e = p.predict(pt.len, pt.groups) as f32 - pt.batch as f32;
                    e * e
                })
                .sum()
        };
        assert!(sse(&four) <= sse(&one) * 1.05 + 1.0);
    }
}
