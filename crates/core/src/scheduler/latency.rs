//! Spending a *latency* budget with the §5.2 batch-size machinery.
//!
//! At training time, `B = f(L, N)` answers "how many samples fit in accelerator
//! memory?". At serving time the scarce resource is the tail-latency SLO: a batch may
//! only be as large as can be computed inside the slice of the deadline reserved for
//! compute. Both questions have the same shape — find the largest `B` whose *cost*
//! stays under a budget, where the cost is monotone in `B`, `L` and `N` — so the same
//! binary-search oracle, function prior, and plane-division DP transfer unchanged.
//!
//! The transfer works by converting seconds to bytes. A tape-free CPU forward is
//! memory-bandwidth bound, so its wall time is roughly proportional to the bytes it
//! touches ([`MemoryModel::serve_bytes_for`]). A measured serving throughput
//! (`bytes_per_sec`, calibrated by timing one representative forward) turns the compute
//! slice of the SLO into a byte budget; [`LatencyBudget::train_predictor`] then hands
//! that budget to the unmodified [`BatchSizePredictor`] pipeline.
//!
//! One wrinkle: [`MemoryModel::bytes_for`] — the cost the predictor's oracle and clamp
//! consult — charges training's gradient copies (activations ×2) and optimiser moments
//! (parameters ×4), which a serving forward never materialises. Rather than teach the
//! predictor a second cost function, [`LatencyBudget::equivalent_train_budget`] applies
//! the inverse transformation to the *budget*: `serve_bytes(B, L, N) ≤ S` holds exactly
//! when `bytes_for(B, L, N) ≤ 2·S + 3·parameter_bytes` (after accounting for the
//! parameters the serve cost already charges once), so a predictor trained and clamped
//! against the transformed budget enforces precisely the serving bound.

use std::time::Duration;

use super::fit::BatchSizePredictor;
use super::memory::MemoryModel;

/// A serve-time latency budget: the SLO slice one batch's compute may consume,
/// expressed through a calibrated byte throughput.
#[derive(Debug, Clone, Copy)]
pub struct LatencyBudget {
    /// The per-request latency SLO the serving tier promises.
    pub slo: Duration,
    /// Fraction of the SLO one batch's compute may consume; the rest is headroom for
    /// queueing, batch assembly, and response delivery. The paper's Alg. 2 keeps 90 %
    /// of GPU memory occupied; a latency budget needs more slack because queueing time
    /// is paid *before* compute starts.
    pub compute_fraction: f32,
    /// Calibrated serving throughput in cost-model bytes per second: how fast the
    /// actual kernels chew through [`MemoryModel::serve_bytes_for`] on this machine.
    pub bytes_per_sec: f64,
}

impl LatencyBudget {
    /// Default compute slice of the SLO (half; the rest absorbs queueing and batching).
    pub const DEFAULT_COMPUTE_FRACTION: f32 = 0.5;

    /// A budget for `slo` at a calibrated throughput, with the default compute slice.
    pub fn new(slo: Duration, bytes_per_sec: f64) -> Self {
        Self { slo, compute_fraction: Self::DEFAULT_COMPUTE_FRACTION, bytes_per_sec }
    }

    /// The byte budget one batch's compute may spend: `slo × compute_fraction`
    /// converted through the calibrated throughput. Always at least 1.
    pub fn serve_budget_bytes(&self) -> usize {
        let seconds = self.slo.as_secs_f64() * self.compute_fraction.clamp(0.0, 1.0) as f64;
        (seconds * self.bytes_per_sec).max(1.0) as usize
    }

    /// The training-cost budget equivalent to this serving budget under `memory`:
    /// the unique `T` with `bytes_for(B, L, N) ≤ T ⟺ serve_bytes_for(B, L, N) ≤ S`.
    ///
    /// Derivation (element counts, `p` = parameters, `a` = activations per sample):
    /// serve charges `p + B·a`, training charges `4p + 2·B·a`; doubling the serve
    /// bound and adding the `2p` the doubled form still lacks gives
    /// `4p + 2·B·a ≤ 2·S/bpe + 2p ⟺ p + B·a ≤ S/bpe`.
    pub fn equivalent_train_budget(&self, memory: &MemoryModel) -> usize {
        let parameter_bytes = memory.parameter_elements() * memory.bytes_per_element;
        2 * self.serve_budget_bytes() + 2 * parameter_bytes
    }

    /// Trains a [`BatchSizePredictor`] that spends this latency budget: `predict(L, N)`
    /// is the largest batch whose estimated compute time fits in the SLO's compute
    /// slice, learned and clamped through the unmodified §5.2 pipeline.
    ///
    /// The budget fraction is pinned at 1.0 — the head-room a *memory* budget keeps
    /// for allocator slack is already expressed here by `compute_fraction`.
    pub fn train_predictor(
        &self,
        memory: &MemoryModel,
        max_len: usize,
        max_batch: usize,
        samples_per_axis: usize,
        max_segments: usize,
    ) -> BatchSizePredictor {
        BatchSizePredictor::train_with(
            memory,
            max_len,
            self.equivalent_train_budget(memory),
            1.0,
            max_batch,
            samples_per_axis,
            max_segments,
        )
    }

    /// Estimated wall time of one `(batch, len, groups)` forward under the calibrated
    /// throughput — what the continuous batcher compares against a request's remaining
    /// deadline when deciding to close a batch early.
    pub fn estimated_compute(
        &self,
        memory: &MemoryModel,
        batch: usize,
        len: usize,
        groups: usize,
    ) -> Duration {
        let bytes = memory.serve_bytes_for(batch, len, groups) as f64;
        Duration::from_secs_f64(bytes / self.bytes_per_sec.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::memory::usable_budget;

    fn budget(ms: u64) -> LatencyBudget {
        // 1 GB/s of cost-model bytes keeps the numbers in a realistic CPU range.
        LatencyBudget::new(Duration::from_millis(ms), 1e9)
    }

    #[test]
    fn equivalent_budget_preserves_the_serving_bound() {
        // The predictor clamp consults bytes_for against the transformed budget; that
        // must accept/reject exactly the batches serve_bytes_for accepts/rejects
        // against the raw serving budget.
        let m = MemoryModel::default();
        let lb = budget(50);
        let serve = lb.serve_budget_bytes();
        let train = lb.equivalent_train_budget(&m);
        for &len in &[100usize, 500, 2000, 8000] {
            for &groups in &[1usize, 16, 128] {
                for &b in &[1usize, 2, 7, 32, 256] {
                    assert_eq!(
                        m.serve_bytes_for(b, len, groups) <= serve,
                        m.bytes_for(b, len, groups) <= train,
                        "b {b} len {len} groups {groups}"
                    );
                }
            }
        }
    }

    #[test]
    fn latency_predictor_fits_the_compute_slice() {
        let m = MemoryModel::default();
        let lb = budget(100);
        let p = lb.train_predictor(&m, 4000, 256, 5, 3);
        let slice = Duration::from_secs_f64(lb.slo.as_secs_f64() * lb.compute_fraction as f64);
        for &len in &[200usize, 1000, 3000, 6000] {
            for &groups in &[4usize, 32, 200] {
                let b = p.predict(len, groups);
                assert!((1..=256).contains(&b));
                // A predicted batch's estimated compute never exceeds the slice
                // (except the B = 1 floor, which mirrors Alg. 2's: serving at all
                // requires serving one request).
                if b > 1 {
                    let est = lb.estimated_compute(&m, b, len, groups);
                    assert!(est <= slice, "len {len} groups {groups}: {est:?} > {slice:?}");
                }
            }
        }
    }

    #[test]
    fn tighter_slos_admit_smaller_batches() {
        let m = MemoryModel::default();
        let tight = budget(5).train_predictor(&m, 2000, 1 << 12, 5, 3);
        let loose = budget(500).train_predictor(&m, 2000, 1 << 12, 5, 3);
        for &len in &[200usize, 1000, 2000] {
            assert!(
                tight.predict(len, 32) <= loose.predict(len, 32),
                "len {len}: tight {} loose {}",
                tight.predict(len, 32),
                loose.predict(len, 32)
            );
        }
        assert!(tight.predict(1000, 32) < loose.predict(1000, 32));
    }

    #[test]
    fn predictions_track_the_serving_oracle() {
        // The clamp path goes through bytes_for + the transformed budget; spot-check
        // against a direct binary search on serve_bytes_for.
        let m = MemoryModel::default();
        let lb = budget(30);
        let serve = lb.serve_budget_bytes();
        let p = lb.train_predictor(&m, 3000, 1 << 12, 6, 4);
        let train_equiv = lb.equivalent_train_budget(&m);
        assert_eq!(usable_budget(train_equiv, 1.0), train_equiv);
        for &(len, groups) in &[(400usize, 8usize), (1200, 64), (2800, 16)] {
            let b = p.predict(len, groups);
            if b > 1 {
                assert!(m.serve_bytes_for(b, len, groups) <= serve, "len {len} groups {groups}");
            }
        }
    }
}
