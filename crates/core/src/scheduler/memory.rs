//! Memory cost model and batch-size search (§5.2, Alg. 2).
//!
//! The paper finds the largest batch size that keeps GPU memory below 90 % by actually
//! running a forward/backward pass and reading the CUDA allocator's peak. This CPU
//! reproduction replaces the allocator oracle with an **analytic cost model** that charges
//! every activation and parameter buffer of the configured model; the model is monotone in
//! batch size, sequence length and group count, which is all the binary search (and the
//! downstream function fitting) relies on.

/// Memory-relevant shape of a RITA model. Field names follow the paper's notation.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Hidden dimension d of the encoder.
    pub d_model: usize,
    /// Number of stacked encoder layers.
    pub layers: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward hidden size.
    pub ff_hidden: usize,
    /// Number of input channels of the timeseries.
    pub channels: usize,
    /// Convolution window width (timestamps per window).
    pub window: usize,
    /// Convolution stride (the paper chunks, i.e. stride = window; overlapping windows
    /// with stride < window produce more windows and cost more memory).
    pub stride: usize,
    /// Bytes per element (4 for f32).
    pub bytes_per_element: usize,
}

impl Default for MemoryModel {
    fn default() -> Self {
        // The paper's configuration: 8 layers, 2 heads, hidden dimension 64.
        Self {
            d_model: 64,
            layers: 8,
            heads: 2,
            ff_hidden: 256,
            channels: 3,
            window: 5,
            stride: 5,
            bytes_per_element: 4,
        }
    }
}

impl MemoryModel {
    /// Parameter elements of the configured model (weights only, no copies).
    pub fn parameter_elements(&self) -> usize {
        self.layers
            * (self.d_model * self.d_model * 4
                + self.d_model * self.ff_hidden * 2
                + self.d_model * 4)
            + self.channels * self.window * self.d_model
    }

    /// Activation elements one sample of length `series_len` materialises in a forward
    /// pass when every group-attention layer uses `groups` groups.
    ///
    /// The dominant terms per layer are the window embeddings (`n·d`), the group
    /// attention matrix (`n·N`), the aggregated values (`N·d`) and the feed-forward
    /// activations (`n·ff`).
    pub fn activation_elements(&self, series_len: usize, groups: usize) -> usize {
        let n = self.windows(series_len);
        let groups = groups.clamp(1, n);
        let per_sample_input = self.channels * series_len;
        let per_layer = n * self.d_model * 4          // Q, K, V, output projections
            + n * groups                               // compressed attention matrix
            + groups * self.d_model                    // aggregated values / representatives
            + n * self.ff_hidden                       // feed-forward hidden
            + n * self.d_model * 2; // residual + layer norm
        per_sample_input + self.layers * per_layer + n * self.d_model
    }

    /// Estimated bytes needed to train one batch of `batch_size` series of length
    /// `series_len` when every group-attention layer uses `groups` groups.
    pub fn bytes_for(&self, batch_size: usize, series_len: usize, groups: usize) -> usize {
        // Parameters + gradients + optimiser moments are batch-independent (×4);
        // activations grow linearly with the batch and are also kept for gradients (×2).
        (self.parameter_elements() * 4
            + batch_size * self.activation_elements(series_len, groups) * 2)
            * self.bytes_per_element
    }

    /// Estimated bytes a tape-free *serving* forward touches for one batch: parameters
    /// are read once, activations are produced once, and nothing is retained for a
    /// backward pass. This is the cost the latency budgeting of
    /// [`super::latency`] charges per batch — on a memory-bandwidth-bound CPU
    /// forward, time per batch is roughly proportional to it.
    pub fn serve_bytes_for(&self, batch_size: usize, series_len: usize, groups: usize) -> usize {
        (self.parameter_elements() + batch_size * self.activation_elements(series_len, groups))
            * self.bytes_per_element
    }

    /// Windows per series of length `series_len` — the same `(len - window) / stride + 1`
    /// arithmetic as `rita_core::model::config::windows_for`, saturating to one window
    /// for shorter-than-window series instead of panicking (a cost model must stay total).
    pub fn windows(&self, series_len: usize) -> usize {
        if series_len >= self.window.max(1) {
            (series_len - self.window) / self.stride.max(1) + 1
        } else {
            1
        }
    }

    /// The largest batch size whose estimated footprint stays below
    /// `budget_fraction × budget_bytes`, found by the paper's binary search (Alg. 2).
    /// Returns at least 1.
    pub fn max_batch_size(
        &self,
        series_len: usize,
        groups: usize,
        budget_bytes: usize,
        budget_fraction: f32,
        max_batch: usize,
    ) -> usize {
        let limit = usable_budget(budget_bytes, budget_fraction);
        let fits = |b: usize| self.bytes_for(b, series_len, groups) <= limit;
        if !fits(1) {
            return 1;
        }
        let (mut lo, mut hi) = (1usize, max_batch.max(1));
        // classic binary search for the largest b with fits(b)
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// Default simulated accelerator memory: 16 GB, matching the V100 the paper used.
pub const DEFAULT_BUDGET_BYTES: usize = 16 * 1024 * 1024 * 1024;

/// The fraction of the budget the paper keeps occupied (Alg. 2 targets 90 %).
pub const DEFAULT_BUDGET_FRACTION: f32 = 0.9;

/// The usable slice of an accelerator budget: `budget_fraction × budget_bytes`.
pub fn usable_budget(budget_bytes: usize, budget_fraction: f32) -> usize {
    (budget_bytes as f64 * budget_fraction as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_batch_length_and_groups() {
        let m = MemoryModel::default();
        assert!(m.bytes_for(2, 1000, 64) > m.bytes_for(1, 1000, 64));
        assert!(m.bytes_for(1, 2000, 64) > m.bytes_for(1, 1000, 64));
        assert!(m.bytes_for(1, 2000, 256) > m.bytes_for(1, 2000, 32));
    }

    #[test]
    fn groups_are_clamped_to_window_count() {
        let m = MemoryModel::default();
        let n = m.windows(1000);
        assert_eq!(n, 200);
        assert_eq!(m.bytes_for(1, 1000, n), m.bytes_for(1, 1000, 10 * n));
    }

    #[test]
    fn overlapping_windows_cost_more_memory() {
        // stride < window multiplies the window count; the cost model must see it.
        let chunked = MemoryModel::default();
        let overlapping = MemoryModel { stride: 1, ..chunked };
        assert_eq!(overlapping.windows(200), 196);
        assert_eq!(chunked.windows(200), 40);
        assert!(overlapping.bytes_for(1, 200, 16) > chunked.bytes_for(1, 200, 16));
        // Shorter-than-window series saturate to one window instead of panicking.
        assert_eq!(chunked.windows(3), 1);
    }

    #[test]
    fn binary_search_finds_the_boundary() {
        let m = MemoryModel::default();
        let budget = 512 * 1024 * 1024; // 512 MB
        let b = m.max_batch_size(2000, 64, budget, 0.9, 4096);
        assert!(b >= 1);
        assert!(m.bytes_for(b, 2000, 64) <= (budget as f64 * 0.9) as usize);
        if b < 4096 {
            assert!(m.bytes_for(b + 1, 2000, 64) > (budget as f64 * 0.9) as usize);
        }
    }

    #[test]
    fn longer_series_allow_smaller_batches() {
        let m = MemoryModel::default();
        let budget = DEFAULT_BUDGET_BYTES;
        let short = m.max_batch_size(200, 64, budget, 0.9, 1 << 20);
        let long = m.max_batch_size(10_000, 64, budget, 0.9, 1 << 20);
        assert!(short > long, "short {short} long {long}");
    }

    #[test]
    fn fewer_groups_allow_larger_batches() {
        // This is the motivation for re-predicting B as the scheduler shrinks N (§1, §5.2).
        let m = MemoryModel::default();
        let budget = 2 * 1024 * 1024 * 1024;
        let small_n = m.max_batch_size(10_000, 16, budget, 0.9, 1 << 20);
        let large_n = m.max_batch_size(10_000, 1024, budget, 0.9, 1 << 20);
        assert!(small_n > large_n, "small_n {small_n} large_n {large_n}");
    }

    #[test]
    fn serve_cost_is_forward_only_and_monotone() {
        let m = MemoryModel::default();
        // Serving charges neither gradient copies nor optimiser moments, so it is
        // strictly cheaper than training the same batch.
        assert!(m.serve_bytes_for(4, 1000, 64) < m.bytes_for(4, 1000, 64));
        assert!(m.serve_bytes_for(2, 1000, 64) > m.serve_bytes_for(1, 1000, 64));
        assert!(m.serve_bytes_for(1, 2000, 64) > m.serve_bytes_for(1, 1000, 64));
        assert!(m.serve_bytes_for(1, 2000, 256) > m.serve_bytes_for(1, 2000, 32));
        // The train/serve costs share one set of element counters.
        assert_eq!(
            m.bytes_for(3, 500, 16),
            (m.parameter_elements() * 4 + 3 * m.activation_elements(500, 16) * 2)
                * m.bytes_per_element
        );
    }

    #[test]
    fn over_budget_returns_one() {
        let m = MemoryModel::default();
        assert_eq!(m.max_batch_size(1_000_000, 1024, 1024, 0.9, 128), 1);
    }
}
