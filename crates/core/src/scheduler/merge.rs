//! Dynamically determining the number of groups `N` (§5.1).
//!
//! The scheduler starts from a large `N` and shrinks it by merging clusters whose union
//! still satisfies the distance threshold `d` derived from the user's error bound ε
//! (Lemma 2). Finding the maximum set of mergeable clusters is a minimum clique cover
//! (NP-hard), so the paper halves the clusters into two sets `S1` / `S2` and greedily
//! marks clusters of `S2` that can be absorbed by some cluster of `S1`; transfer through
//! the `S1` node keeps the merged cluster within the bound (Eq. 6). The number of groups
//! is then smoothed with a momentum update: `N_new = α (N − D) + (1 − α) N`.

use crate::group::Grouping;

/// Lemma 2's pairwise condition: cluster `j` (with radius `radius_j`) can be absorbed into
/// cluster `i` (radius `radius_i`) at centre distance `center_dist` under threshold `d`
/// when both directions satisfy the bound. The paper's simplified solution additionally
/// tightens the `S2`-side bound to `d/2` so that several `S2` clusters can share one `S1`
/// transfer node (Eq. 5).
pub fn can_absorb(center_dist: f32, radius_i: f32, radius_j: f32, d: f32) -> bool {
    center_dist + radius_i <= d && center_dist + radius_j <= d / 2.0
}

/// Counts how many clusters of the grouping could be merged away under threshold `d`
/// using the paper's S1/S2 halving heuristic.
pub fn mergeable_count(grouping: &Grouping, d: f32) -> usize {
    let n = grouping.num_groups();
    if n < 2 || !d.is_finite() {
        // Infinite threshold means every cluster could merge into one.
        return if d.is_finite() { 0 } else { n.saturating_sub(1) };
    }
    let dim = grouping.centers.shape()[1];
    let centers = grouping.centers.as_slice();
    let half = n / 2;
    // S1 = clusters [0, half), S2 = clusters [half, n)
    let mut merged = 0usize;
    for j in half..n {
        let cj = &centers[j * dim..(j + 1) * dim];
        let rj = grouping.radii[j];
        let absorbable = (0..half).any(|i| {
            let ci = &centers[i * dim..(i + 1) * dim];
            let dist: f32 = ci.iter().zip(cj).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
            can_absorb(dist, grouping.radii[i], rj, d)
        });
        if absorbable {
            merged += 1;
        }
    }
    merged
}

/// Momentum update of the (real-valued) group count: `α (N − D) + (1 − α) N`.
pub fn momentum_update(n: f32, merged: usize, alpha: f32) -> f32 {
    assert!((0.0..=1.0).contains(&alpha), "momentum alpha must be in [0,1]");
    alpha * (n - merged as f32) + (1.0 - alpha) * n
}

/// Exhaustive greedy merge on small inputs, used by property tests to confirm the
/// halving heuristic never merges more aggressively than a direct check of Lemma 2
/// would allow (i.e. it is conservative, hence safe).
pub fn exhaustive_mergeable_count(grouping: &Grouping, d: f32) -> usize {
    let n = grouping.num_groups();
    if n < 2 || !d.is_finite() {
        return if d.is_finite() { 0 } else { n.saturating_sub(1) };
    }
    let dim = grouping.centers.shape()[1];
    let centers = grouping.centers.as_slice();
    let mut absorbed = vec![false; n];
    let mut count = 0usize;
    for j in 0..n {
        if absorbed[j] {
            continue;
        }
        for i in 0..n {
            if i == j || absorbed[i] {
                continue;
            }
            let ci = &centers[i * dim..(i + 1) * dim];
            let cj = &centers[j * dim..(j + 1) * dim];
            let dist: f32 = ci.iter().zip(cj).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
            // Symmetric Lemma 2 condition (without the heuristic's d/2 tightening).
            if dist + grouping.radii[i] <= d && dist + grouping.radii[j] <= d {
                absorbed[j] = true;
                count += 1;
                break;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::kmeans_matmul;
    use rand::SeedableRng;
    use rita_tensor::{NdArray, SeedableRng64};

    fn clustered_points(
        centres: &[f32],
        spread: f32,
        per: usize,
        dim: usize,
        seed: u64,
    ) -> NdArray {
        let mut rng = SeedableRng64::seed_from_u64(seed);
        let mut parts = Vec::new();
        for &c in centres {
            parts.push(NdArray::randn(&[per, dim], spread, &mut rng).add_scalar(c));
        }
        let refs: Vec<&NdArray> = parts.iter().collect();
        NdArray::concat(&refs, 0).unwrap()
    }

    #[test]
    fn can_absorb_conditions() {
        assert!(can_absorb(0.1, 0.2, 0.1, 1.0));
        // violates the d/2 side
        assert!(!can_absorb(0.4, 0.1, 0.2, 1.0));
        // violates the d side
        assert!(!can_absorb(0.9, 0.3, 0.0, 1.0));
    }

    #[test]
    fn tight_threshold_merges_nothing_loose_threshold_merges_a_lot() {
        // Points spread over four distinct locations; cluster into 8 groups.
        let x = clustered_points(&[0.0, 1.0, 2.0, 3.0], 0.01, 10, 4, 1);
        let g = kmeans_matmul(&x, 8, 10);
        assert_eq!(mergeable_count(&g, 1e-6), 0);
        let loose = mergeable_count(&g, 100.0);
        assert!(loose > 0, "expected merges under a loose threshold");
        assert_eq!(mergeable_count(&g, f32::INFINITY), 7);
    }

    #[test]
    fn heuristic_is_no_more_aggressive_than_exhaustive() {
        for seed in 0..5u64 {
            let x = clustered_points(&[0.0, 0.2, 2.0, 2.2], 0.05, 8, 3, seed);
            let g = kmeans_matmul(&x, 6, 6);
            for &d in &[0.1f32, 0.5, 1.0, 5.0] {
                let heuristic = mergeable_count(&g, d);
                let exhaustive = exhaustive_mergeable_count(&g, d);
                assert!(
                    heuristic <= exhaustive,
                    "seed {seed} d {d}: heuristic {heuristic} > exhaustive {exhaustive}"
                );
            }
        }
    }

    #[test]
    fn momentum_smooths_the_decrease() {
        let n = 100.0;
        let full = momentum_update(n, 40, 1.0);
        let half = momentum_update(n, 40, 0.5);
        let none = momentum_update(n, 40, 0.0);
        assert_eq!(full, 60.0);
        assert_eq!(half, 80.0);
        assert_eq!(none, 100.0);
    }

    #[test]
    #[should_panic(expected = "momentum alpha")]
    fn momentum_rejects_bad_alpha() {
        let _ = momentum_update(10.0, 1, 1.5);
    }

    #[test]
    fn single_cluster_never_merges() {
        let x = clustered_points(&[0.0], 0.1, 5, 2, 3);
        let g = kmeans_matmul(&x, 1, 2);
        assert_eq!(mergeable_count(&g, 10.0), 0);
    }
}
