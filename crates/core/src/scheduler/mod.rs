//! The adaptive scheduler (§5): dynamically determining the number of groups `N` for each
//! group-attention module and the batch size `B` for the training loop.
//!
//! * [`error_bound`] — Lemma 1: user error bound ε → key-distance threshold `d`.
//! * [`merge`] — Lemma 2 and the S1/S2 halving heuristic that shrinks `N`, plus the
//!   momentum update.
//! * [`memory`] — the analytic memory cost model and the binary-search batch-size oracle
//!   (Alg. 2). The cost model replaces the paper's CUDA peak-memory probe; see DESIGN.md.
//! * [`fit`] — the learned batch-size predictor `B = f(L, N)`: least-squares fits over a
//!   small function prior and the DP plane division (Alg. 3).
//! * [`latency`] — the serve-time transfer of the predictor: the same `B = f(L, N)`
//!   machinery spending a latency SLO's compute slice instead of training memory.

pub mod error_bound;
pub mod fit;
pub mod latency;
pub mod memory;
pub mod merge;

pub use error_bound::{distance_threshold, guaranteed_epsilon, key_ball_radius};
pub use fit::{BatchPoint, BatchSizePredictor, FittedFn};
pub use latency::LatencyBudget;
pub use memory::{usable_budget, MemoryModel, DEFAULT_BUDGET_BYTES, DEFAULT_BUDGET_FRACTION};
pub use merge::{can_absorb, mergeable_count, momentum_update};
