//! Timeseries classification (Appendix A.7.1): the `[CLS]` representation is fed into a
//! linear classifier trained with cross entropy.

use crate::model::{RitaConfig, RitaModel};
use crate::tasks::trainer::{timed, train_task, TrainConfig, TrainReport, TrainTask};
use rand::Rng;
use rita_data::batch::{batch_indices_by_length, make_batch};
use rita_data::TimeseriesDataset;
use rita_nn::layers::Linear;
use rita_nn::loss::{accuracy, cross_entropy_logits};
use rita_nn::{no_grad, BufferVisitor, BufferVisitorMut, Module, ParamVisitor, Var};
use rita_tensor::NdArray;

/// A RITA backbone with a classification head.
pub struct Classifier {
    /// The shared backbone (possibly pretrained).
    pub model: RitaModel,
    /// Linear head mapping the `[CLS]` embedding to class logits.
    pub head: Linear,
    /// Number of classes.
    pub num_classes: usize,
}

impl Classifier {
    /// Builds a classifier from scratch.
    pub fn new(config: RitaConfig, num_classes: usize, rng: &mut impl Rng) -> Self {
        let model = RitaModel::new(config, rng);
        Self::from_model(model, num_classes, rng)
    }

    /// Attaches a fresh classification head to an existing (e.g. pretrained) backbone.
    pub fn from_model(model: RitaModel, num_classes: usize, rng: &mut impl Rng) -> Self {
        assert!(num_classes >= 2, "classification requires at least two classes");
        let head = Linear::new(model.config.d_model, num_classes, rng);
        Self { model, head, num_classes }
    }

    /// Class logits for a raw batch `(batch, channels, length)`.
    pub fn logits(&mut self, x: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let cls = self.model.encode_cls(x, training, rng);
        self.head.forward(&cls)
    }

    /// Trains for `config.epochs` epochs through the shared adaptive engine
    /// ([`train_task`]), returning per-epoch metrics and batch-size decisions.
    pub fn train(
        &mut self,
        data: &TimeseriesDataset,
        config: &TrainConfig,
        rng: &mut impl Rng,
    ) -> TrainReport {
        let labels = data.labels.as_ref().expect("classification needs labels");
        assert!(!labels.is_empty(), "empty training set");
        train_task(self, data, config, rng)
    }

    /// Classification accuracy on a labelled dataset (inference mode, no graph).
    /// Variable-length datasets are evaluated in length-bucketed batches.
    pub fn evaluate(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> f32 {
        let labels = data.labels.as_ref().expect("evaluation needs labels");
        if labels.is_empty() {
            return 0.0;
        }
        let mut correct_weighted = 0.0f32;
        for idx in batch_indices_by_length(&data.lengths(), |_| batch_size, false, rng) {
            let batch = make_batch(data, &idx);
            let logits = no_grad(|| self.logits(&batch.inputs, false, rng).to_array());
            correct_weighted += accuracy(&logits, &batch.labels) * idx.len() as f32;
        }
        correct_weighted / data.len() as f32
    }

    /// Mean inference seconds per batch over a dataset (Tables 6–7).
    pub fn inference_seconds(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> f64 {
        let (_, seconds) = timed(|| {
            for idx in batch_indices_by_length(&data.lengths(), |_| batch_size, false, rng) {
                let batch = make_batch(data, &idx);
                let _ = no_grad(|| self.logits(&batch.inputs, false, rng).to_array());
            }
        });
        seconds
    }
}

impl TrainTask for Classifier {
    fn backbone(&self) -> &RitaModel {
        &self.model
    }

    fn batch_loss_on<R: Rng>(
        &mut self,
        data: &TimeseriesDataset,
        idx: &[usize],
        _config: &TrainConfig,
        rng: &mut R,
    ) -> (Var, f32) {
        let batch = make_batch(data, idx);
        let logits = self.logits(&batch.inputs, true, rng);
        // Cross entropy averages over samples, so a batch weighs its sample count.
        (cross_entropy_logits(&logits, &batch.labels), idx.len() as f32)
    }
}

impl Module for Classifier {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("model", |v| self.model.visit_params(v));
        v.scope("head", |v| self.head.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("model", |v| self.model.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("model", |v| self.model.visit_buffers_mut(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn two_class_dataset(n: usize, rng: &mut SeedableRng64) -> TimeseriesDataset {
        // Use the HHAR generator but relabel into two well-separated classes (0 vs 4)
        // so a couple of epochs suffice for the test.
        let mut spec = DatasetKind::Hhar.reduced_spec(n, 0, 40);
        spec.num_classes = 2;
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let gen_class = if class == 0 { 0 } else { 4 };
            samples.push(rita_data::generators::har(
                rita_data::generators::HarFlavour::Hhar,
                gen_class,
                3,
                40,
                rng,
            ));
            labels.push(class);
        }
        TimeseriesDataset { spec, samples, labels: Some(labels) }
    }

    #[test]
    fn logits_shape_matches_classes() {
        let mut r = rng(0);
        let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let mut clf = Classifier::new(config, 5, &mut r);
        let x = NdArray::randn(&[3, 3, 40], 1.0, &mut r);
        assert_eq!(clf.logits(&x, false, &mut r).shape(), vec![3, 5]);
        assert_eq!(clf.num_classes, 5);
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let mut r = rng(1);
        let data = two_class_dataset(24, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut clf = Classifier::new(config, 2, &mut r);
        let train_cfg = TrainConfig { epochs: 4, batch_size: 8, lr: 3e-3, ..Default::default() };
        let report = clf.train(&data, &train_cfg, &mut r);
        assert_eq!(report.epochs.len(), 4);
        assert!(
            report.final_loss() < report.epochs[0].loss,
            "loss should decrease: {:?}",
            report.epochs
        );
        let acc = clf.evaluate(&data, 8, &mut r);
        assert!(acc > 0.6, "train accuracy {acc}");
    }

    #[test]
    fn group_attention_classifier_trains() {
        let mut r = rng(2);
        let data = two_class_dataset(16, &mut r);
        let config = RitaConfig::tiny(
            3,
            40,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: true },
        );
        let mut clf = Classifier::new(config, 2, &mut r);
        let train_cfg = TrainConfig { epochs: 2, batch_size: 8, lr: 3e-3, ..Default::default() };
        let report = clf.train(&data, &train_cfg, &mut r);
        assert!(report.final_loss().is_finite());
        assert!(clf.model.mean_group_count().is_some());
        assert!(clf.inference_seconds(&data, 8, &mut r) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let mut r = rng(3);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let _ = Classifier::new(config, 1, &mut r);
    }
}
