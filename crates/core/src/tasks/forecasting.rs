//! Forecasting (Appendix A.7.3): a special case of imputation where every missing value
//! lies at the end of the series. The observed prefix is fed to the model with sentinel
//! values on the horizon, and the reconstruction is evaluated on the horizon only.

use crate::tasks::imputation::Imputer;
use rand::Rng;
use rita_data::batch::{batch_indices, stack_samples};
use rita_data::masking::mask_suffix;
use rita_data::TimeseriesDataset;
use rita_nn::no_grad;
use rita_tensor::NdArray;

/// Per-dataset forecasting result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastMetrics {
    /// Mean squared error over the forecast horizon.
    pub mse: f32,
    /// Number of forecast timestamps per series.
    pub horizon: usize,
}

/// Evaluates an (already trained) imputer as a forecaster: the final
/// `horizon` timestamps of each series are hidden and reconstructed.
pub fn evaluate_forecast(
    imputer: &mut Imputer,
    data: &TimeseriesDataset,
    horizon: usize,
    batch_size: usize,
    rng: &mut impl Rng,
) -> ForecastMetrics {
    assert!(horizon < data.length(), "horizon must be shorter than the series");
    if data.is_empty() {
        return ForecastMetrics { mse: 0.0, horizon };
    }
    let observed_len = data.length() - horizon;
    let mut weighted = 0.0f32;
    for idx in batch_indices(data.len(), batch_size, false, rng) {
        let masked: Vec<_> =
            idx.iter().map(|&i| mask_suffix(&data.samples[i], observed_len)).collect();
        let observed =
            stack_samples(&masked.iter().map(|m| m.observed.clone()).collect::<Vec<_>>());
        let targets = stack_samples(&masked.iter().map(|m| m.target.clone()).collect::<Vec<_>>());
        let mask = stack_samples(&masked.iter().map(|m| m.mask.clone()).collect::<Vec<_>>());
        let recon = no_grad(|| imputer.reconstruct(&observed, false, rng).to_array());
        weighted += horizon_mse(&recon, &targets, &mask) * idx.len() as f32;
    }
    ForecastMetrics { mse: weighted / data.len() as f32, horizon }
}

/// Mean squared error restricted to masked (horizon) positions.
fn horizon_mse(recon: &NdArray, targets: &NdArray, mask: &NdArray) -> f32 {
    let diff = recon.sub(targets).expect("shape mismatch in forecast mse");
    let masked = diff.mul(&diff).expect("square").mul(mask).expect("mask");
    let count = mask.sum_all().max(1.0);
    masked.sum_all() / count
}

/// A naive persistence baseline: predict the last observed value for the whole horizon.
/// Used in tests and examples to sanity-check that a trained model beats the trivial rule.
pub fn persistence_forecast_mse(data: &TimeseriesDataset, horizon: usize) -> f32 {
    assert!(horizon < data.length());
    let observed_len = data.length() - horizon;
    let mut total = 0.0f32;
    let mut count = 0usize;
    for sample in &data.samples {
        let masked = mask_suffix(sample, observed_len);
        let channels = sample.shape()[0];
        for c in 0..channels {
            let last = masked.target.get(&[c, observed_len - 1]).expect("last observed");
            for t in observed_len..data.length() {
                let truth = masked.target.get(&[c, t]).expect("target");
                total += (truth - last) * (truth - last);
                count += 1;
            }
        }
    }
    total / count.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use crate::model::RitaConfig;
    use crate::tasks::trainer::TrainConfig;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn forecast_evaluation_produces_finite_mse() {
        let mut r = rng(0);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 6, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let mut imp = Imputer::new(config, &mut r);
        let cfg = TrainConfig { epochs: 1, batch_size: 3, ..Default::default() };
        let _ = imp.train(&data, &cfg, &mut r);
        let m = evaluate_forecast(&mut imp, &data, 10, 3, &mut r);
        assert_eq!(m.horizon, 10);
        assert!(m.mse.is_finite() && m.mse >= 0.0);
    }

    #[test]
    fn persistence_baseline_is_positive_for_oscillating_series() {
        let mut r = rng(1);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Wisdm, 5, 0, 60, &mut r);
        let mse = persistence_forecast_mse(&data, 20);
        assert!(mse > 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon must be shorter")]
    fn rejects_horizon_longer_than_series() {
        let mut r = rng(2);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 2, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        let _ = evaluate_forecast(&mut imp, &data, 40, 2, &mut r);
    }
}
