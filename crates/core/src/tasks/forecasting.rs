//! Forecasting (Appendix A.7.3): a special case of imputation where every missing value
//! lies at the end of the series. The observed prefix is fed to the model with sentinel
//! values on the horizon, and the reconstruction is evaluated on the horizon only.

use crate::tasks::imputation::Imputer;
use rand::Rng;
use rita_data::batch::{batch_indices, stack_samples};
use rita_data::masking::mask_suffix;
use rita_data::TimeseriesDataset;
use rita_nn::no_grad;
use rita_tensor::NdArray;

// NOTE: `mask_suffix` scales every series by the minimum of its *observed prefix* only.
// Scaling by the full-series minimum would leak the horizon's minimum into the model
// input and silently flatter every forecasting number reported here.

/// Per-dataset forecasting result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastMetrics {
    /// Mean squared error over the forecast horizon.
    pub mse: f32,
    /// Number of forecast timestamps per series.
    pub horizon: usize,
}

/// Evaluates an (already trained) imputer as a forecaster: the final
/// `horizon` timestamps of each series are hidden and reconstructed.
pub fn evaluate_forecast(
    imputer: &mut Imputer,
    data: &TimeseriesDataset,
    horizon: usize,
    batch_size: usize,
    rng: &mut impl Rng,
) -> ForecastMetrics {
    assert!(
        !data.is_variable_length(),
        "forecasting assumes a fixed-length dataset (horizons are counted from a shared \
         series length); truncate or bucket the data first"
    );
    assert!(horizon < data.length(), "horizon must be shorter than the series");
    if data.is_empty() {
        return ForecastMetrics { mse: 0.0, horizon };
    }
    let observed_len = data.length() - horizon;
    let mut weighted = 0.0f32;
    let mut masked_total = 0.0f32;
    for idx in batch_indices(data.len(), batch_size, false, rng) {
        let masked: Vec<_> =
            idx.iter().map(|&i| mask_suffix(&data.samples[i], observed_len)).collect();
        let observed =
            stack_samples(&masked.iter().map(|m| m.observed.clone()).collect::<Vec<_>>());
        let targets = stack_samples(&masked.iter().map(|m| m.target.clone()).collect::<Vec<_>>());
        let mask = stack_samples(&masked.iter().map(|m| m.mask.clone()).collect::<Vec<_>>());
        let recon = no_grad(|| imputer.reconstruct(&observed, false, rng).to_array());
        // Weight by masked-element count so the smaller final batch is not over-weighted.
        let weight = mask.sum_all();
        weighted += horizon_mse(&recon, &targets, &mask) * weight;
        masked_total += weight;
    }
    ForecastMetrics { mse: weighted / masked_total.max(1.0), horizon }
}

/// Mean squared error restricted to masked (horizon) positions.
fn horizon_mse(recon: &NdArray, targets: &NdArray, mask: &NdArray) -> f32 {
    let diff = recon.sub(targets).expect("shape mismatch in forecast mse");
    let masked = diff.mul(&diff).expect("square").mul(mask).expect("mask");
    let count = mask.sum_all().max(1.0);
    masked.sum_all() / count
}

/// A naive persistence baseline: predict the last observed value for the whole horizon.
/// Used in tests and examples to sanity-check that a trained model beats the trivial rule.
pub fn persistence_forecast_mse(data: &TimeseriesDataset, horizon: usize) -> f32 {
    assert!(
        !data.is_variable_length(),
        "forecasting assumes a fixed-length dataset (horizons are counted from a shared \
         series length); truncate or bucket the data first"
    );
    assert!(horizon < data.length());
    let observed_len = data.length() - horizon;
    let mut total = 0.0f32;
    let mut count = 0usize;
    for sample in &data.samples {
        let masked = mask_suffix(sample, observed_len);
        let channels = sample.shape()[0];
        for c in 0..channels {
            let last = masked.target.get(&[c, observed_len - 1]).expect("last observed");
            for t in observed_len..data.length() {
                let truth = masked.target.get(&[c, t]).expect("target");
                total += (truth - last) * (truth - last);
                count += 1;
            }
        }
    }
    total / count.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use crate::model::RitaConfig;
    use crate::tasks::trainer::TrainConfig;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn forecast_evaluation_produces_finite_mse() {
        let mut r = rng(0);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 6, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let mut imp = Imputer::new(config, &mut r);
        let cfg = TrainConfig { epochs: 1, batch_size: 3, ..Default::default() };
        let _ = imp.train(&data, &cfg, &mut r);
        let m = evaluate_forecast(&mut imp, &data, 10, 3, &mut r);
        assert_eq!(m.horizon, 10);
        assert!(m.mse.is_finite() && m.mse >= 0.0);
    }

    #[test]
    fn forecast_input_is_independent_of_horizon_values() {
        // Regression for the future-leak: two datasets identical on the observed prefix,
        // but `deep` hides a large negative dip inside the horizon. The model must see
        // bit-identical inputs (prefix scaling only), hence produce identical forecasts.
        let mut r = rng(4);
        let base = TimeseriesDataset::generate_reduced(DatasetKind::Wisdm, 3, 0, 40, &mut r);
        let observed_len = 30;
        let mut deep = base.clone();
        for s in &mut deep.samples {
            let mut modified = s.clone();
            modified.set(&[0, 35], s.min_all() - 7.0).unwrap();
            *s = modified;
        }
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        for (a, b) in base.samples.iter().zip(&deep.samples) {
            let ma = mask_suffix(a, observed_len);
            let mb = mask_suffix(b, observed_len);
            assert_eq!(ma.observed, mb.observed, "observed input leaked horizon information");
            let ra = rita_nn::no_grad(|| {
                imp.reconstruct(
                    &stack_samples(std::slice::from_ref(&ma.observed)),
                    false,
                    &mut rng(9),
                )
                .to_array()
            });
            let rb = rita_nn::no_grad(|| {
                imp.reconstruct(
                    &stack_samples(std::slice::from_ref(&mb.observed)),
                    false,
                    &mut rng(9),
                )
                .to_array()
            });
            assert_eq!(ra, rb, "forecast changed when only hidden horizon values changed");
        }
    }

    #[test]
    fn forecast_mse_matches_per_sample_expectation() {
        // The batched metric must equal the hand-computed masked MSE over all samples,
        // independent of the batch split (weighting by masked elements, prefix scaling).
        let mut r = rng(6);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Wisdm, 5, 0, 40, &mut r);
        let horizon = 10;
        let observed_len = data.length() - horizon;
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for sample in &data.samples {
            let m = mask_suffix(sample, observed_len);
            let recon = rita_nn::no_grad(|| {
                imp.reconstruct(&stack_samples(std::slice::from_ref(&m.observed)), false, &mut r)
                    .to_array()
            });
            let target = stack_samples(std::slice::from_ref(&m.target));
            let mask = stack_samples(std::slice::from_ref(&m.mask));
            let diff = recon.sub(&target).unwrap();
            num += diff.mul(&diff).unwrap().mul(&mask).unwrap().sum_all();
            den += mask.sum_all();
        }
        let expected = num / den;
        // Batch size 2 over 5 samples: a skewed final batch exercises the weighting.
        let metrics = evaluate_forecast(&mut imp, &data, horizon, 2, &mut r);
        assert!(
            (metrics.mse - expected).abs() <= 1e-4 * expected.max(1.0),
            "batched forecast MSE {} != per-sample expectation {expected}",
            metrics.mse
        );
    }

    #[test]
    fn persistence_baseline_is_positive_for_oscillating_series() {
        let mut r = rng(1);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Wisdm, 5, 0, 60, &mut r);
        let mse = persistence_forecast_mse(&data, 20);
        assert!(mse > 0.0);
    }

    #[test]
    #[should_panic(expected = "fixed-length dataset")]
    fn persistence_baseline_rejects_variable_length_data() {
        let mut r = rng(7);
        let data = TimeseriesDataset::generate_variable(DatasetKind::Hhar, 6, 0, 40, 80, 2, &mut r);
        let _ = persistence_forecast_mse(&data, 10);
    }

    #[test]
    #[should_panic(expected = "horizon must be shorter")]
    fn rejects_horizon_longer_than_series() {
        let mut r = rng(2);
        let data = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 2, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        let _ = evaluate_forecast(&mut imp, &data, 40, 2, &mut r);
    }
}
