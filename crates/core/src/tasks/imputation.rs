//! Imputation and the mask-and-predict (cloze) objective (§3, Appendix A.7.2).
//!
//! The observed series (with `-1` sentinels at masked timestamps) is encoded by the RITA
//! backbone; the per-window output representations are decoded back to the raw series with
//! a transpose-convolution-style head (a linear map per window followed by a fold), and a
//! masked mean-squared error over the missing positions is minimised.

use crate::model::{RitaConfig, RitaModel};
use crate::tasks::trainer::{timed, train_task, TrainConfig, TrainReport, TrainTask};
use rand::Rng;
use rita_data::batch::{batch_indices_by_length, make_masked_batch, MaskedBatch};
use rita_data::TimeseriesDataset;
use rita_nn::layers::Linear;
use rita_nn::loss::masked_mse;
use rita_nn::{no_grad, BufferVisitor, BufferVisitorMut, Module, ParamVisitor, Var};
use rita_tensor::NdArray;

/// A RITA backbone with a reconstruction (transpose-convolution) head.
pub struct Imputer {
    /// The shared backbone.
    pub model: RitaModel,
    /// Linear decoder mapping each window embedding back to `channels × window` raw values.
    pub decoder: Linear,
}

impl Imputer {
    /// Builds an imputer from scratch.
    pub fn new(config: RitaConfig, rng: &mut impl Rng) -> Self {
        let model = RitaModel::new(config, rng);
        Self::from_model(model, rng)
    }

    /// Attaches a fresh decoder to an existing backbone.
    pub fn from_model(model: RitaModel, rng: &mut impl Rng) -> Self {
        let config = model.config;
        let decoder = Linear::new(config.d_model, config.channels * config.window, rng);
        Self { model, decoder }
    }

    /// Reconstructs the full series from the observed (masked) input.
    /// Input and output are `(batch, channels, length)`.
    pub fn reconstruct(&mut self, observed: &NdArray, training: bool, rng: &mut impl Rng) -> Var {
        let shape = observed.shape().to_vec();
        let length = shape[2];
        let config = self.model.config;
        let windows = self.model.encode_windows(observed, training, rng); // (B, n, d)
        let decoded = self.decoder.forward(&windows); // (B, n, c*w)
        decoded.fold1d(config.channels, config.window, config.stride, length)
    }

    /// Masked-MSE loss of one batch.
    pub fn batch_loss(&mut self, batch: &MaskedBatch, training: bool, rng: &mut impl Rng) -> Var {
        let recon = self.reconstruct(&batch.observed, training, rng);
        masked_mse(&recon, &batch.targets, &batch.mask)
    }

    /// Trains for `config.epochs` epochs through the shared adaptive engine
    /// ([`train_task`]).
    pub fn train(
        &mut self,
        data: &TimeseriesDataset,
        config: &TrainConfig,
        rng: &mut impl Rng,
    ) -> TrainReport {
        train_task(self, data, config, rng)
    }

    /// Mean squared imputation error over masked positions of a held-out dataset.
    ///
    /// Each batch's mean masked MSE is weighted by its number of masked elements
    /// (`mask.sum_all()`), not by its sample count: batches mask different numbers of
    /// elements (random mask draws, shorter samples in variable-length data, the smaller
    /// final batch), and sample-count weighting would bias the estimate towards batches
    /// with few masked positions.
    pub fn evaluate(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        mask_rate: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let mut weighted = 0.0f32;
        let mut masked_total = 0.0f32;
        for idx in batch_indices_by_length(&data.lengths(), |_| batch_size, false, rng) {
            let batch = make_masked_batch(data, &idx, mask_rate, rng);
            let mse = no_grad(|| self.batch_loss(&batch, false, rng).item());
            let weight = batch.mask.sum_all();
            weighted += mse * weight;
            masked_total += weight;
        }
        if masked_total > 0.0 {
            weighted / masked_total
        } else {
            0.0
        }
    }

    /// Mean inference seconds for reconstructing a dataset (Table 7).
    pub fn inference_seconds(
        &mut self,
        data: &TimeseriesDataset,
        batch_size: usize,
        mask_rate: f32,
        rng: &mut impl Rng,
    ) -> f64 {
        let (_, seconds) = timed(|| {
            for idx in batch_indices_by_length(&data.lengths(), |_| batch_size, false, rng) {
                let batch = make_masked_batch(data, &idx, mask_rate, rng);
                let _ = no_grad(|| self.reconstruct(&batch.observed, false, rng).to_array());
            }
        });
        seconds
    }
}

impl TrainTask for Imputer {
    fn backbone(&self) -> &RitaModel {
        &self.model
    }

    fn batch_loss_on<R: Rng>(
        &mut self,
        data: &TimeseriesDataset,
        idx: &[usize],
        config: &TrainConfig,
        rng: &mut R,
    ) -> (Var, f32) {
        let batch = make_masked_batch(data, idx, config.mask_rate, rng);
        // Masked MSE averages over masked elements, so a batch weighs its mask count —
        // the same unbiased weighting `evaluate` uses.
        let weight = batch.mask.sum_all();
        (self.batch_loss(&batch, true, rng), weight)
    }
}

impl Module for Imputer {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("model", |v| self.model.visit_params(v));
        v.scope("decoder", |v| self.decoder.visit_params(v));
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.scope("model", |v| self.model.visit_buffers(v));
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.scope("model", |v| self.model.visit_buffers_mut(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn tiny_data(n: usize, len: usize, seed: u64) -> TimeseriesDataset {
        TimeseriesDataset::generate_reduced(DatasetKind::Hhar, n, 0, len, &mut rng(seed))
    }

    #[test]
    fn reconstruction_shape_matches_input() {
        let mut r = rng(0);
        let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let mut imp = Imputer::new(config, &mut r);
        let x = NdArray::randn(&[2, 3, 40], 1.0, &mut r);
        let y = imp.reconstruct(&x, false, &mut r);
        assert_eq!(y.shape(), vec![2, 3, 40]);
        assert!(!y.to_array().has_non_finite());
    }

    #[test]
    fn training_reduces_masked_mse() {
        let mut r = rng(1);
        let data = tiny_data(16, 40, 2);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        let cfg = TrainConfig { epochs: 4, batch_size: 8, lr: 3e-3, ..Default::default() };
        let report = imp.train(&data, &cfg, &mut r);
        assert_eq!(report.epochs.len(), 4);
        assert!(
            report.final_loss() < report.epochs[0].loss,
            "imputation loss should decrease: {:?}",
            report.epochs
        );
        let mse = imp.evaluate(&data, 8, 0.2, &mut r);
        assert!(mse.is_finite() && mse >= 0.0);
    }

    #[test]
    fn group_attention_imputer_runs_on_longer_series() {
        let mut r = rng(3);
        let data = tiny_data(4, 100, 4);
        let config = RitaConfig::tiny(
            3,
            100,
            AttentionKind::Group { epsilon: 2.0, initial_groups: 8, adaptive: true },
        );
        let mut imp = Imputer::new(config, &mut r);
        let cfg = TrainConfig { epochs: 1, batch_size: 4, lr: 1e-3, ..Default::default() };
        let report = imp.train(&data, &cfg, &mut r);
        assert!(report.final_loss().is_finite());
        assert!(imp.inference_seconds(&data, 4, 0.2, &mut r) > 0.0);
        assert!(imp.model.mean_group_count().is_some());
    }

    #[test]
    fn evaluation_weights_batches_by_masked_elements() {
        // Variable-length data with mask_rate 1.0: masks are deterministic (every element
        // masked) and the model is deterministic in eval mode, so the masked MSE must not
        // depend on how samples are batched. The length-40 bucket holds three samples and
        // the length-80 bucket two — a skewed split whose batches mask very different
        // element counts. Sample-count weighting (the old bug) disagrees between the two
        // calls; per-masked-element weighting makes them identical.
        let mut r = rng(7);
        let mut samples = Vec::new();
        for i in 0..3 {
            samples.push(rita_data::generators::har(
                rita_data::generators::HarFlavour::Hhar,
                i,
                3,
                40,
                &mut r,
            ));
        }
        for i in 0..2 {
            samples.push(rita_data::generators::har(
                rita_data::generators::HarFlavour::Hhar,
                i,
                3,
                80,
                &mut r,
            ));
        }
        let spec = DatasetKind::Hhar.reduced_spec(5, 0, 80).with_variable_length(40, 2);
        let data = TimeseriesDataset { spec, samples, labels: None };
        assert!(data.is_variable_length());
        let config = RitaConfig::tiny(3, 80, AttentionKind::Vanilla);
        let mut imp = Imputer::new(config, &mut r);
        let batched = imp.evaluate(&data, 4, 1.0, &mut rng(8));
        let one_by_one = imp.evaluate(&data, 1, 1.0, &mut rng(9));
        assert!(batched.is_finite() && batched > 0.0);
        assert!(
            (batched - one_by_one).abs() <= 1e-4 * batched.max(1.0),
            "masked MSE must not depend on batching: {batched} vs {one_by_one}"
        );
    }

    #[test]
    fn variable_length_dataset_trains_through_the_engine() {
        let mut r = rng(11);
        let data =
            TimeseriesDataset::generate_variable(DatasetKind::Hhar, 10, 0, 40, 80, 3, &mut r);
        let config = RitaConfig::tiny(3, 80, AttentionKind::default_group());
        let mut imp = Imputer::new(config, &mut r);
        let cfg = TrainConfig { epochs: 2, batch_size: 4, lr: 1e-3, ..Default::default() };
        let report = imp.train(&data, &cfg, &mut r);
        assert_eq!(report.epochs.len(), 2);
        assert!(report.final_loss().is_finite());
        // Fixed policy records no batch-size decisions.
        assert!(report.decisions.is_empty());
    }

    #[test]
    fn decoder_dimensions_follow_config() {
        let mut r = rng(5);
        let config = RitaConfig::tiny(12, 60, AttentionKind::Vanilla);
        let imp = Imputer::new(config, &mut r);
        assert_eq!(imp.decoder.in_features(), 16);
        assert_eq!(imp.decoder.out_features(), 12 * 5);
        assert!(imp.num_parameters() > imp.model.num_parameters());
    }
}
