//! Downstream tasks supported by RITA (Appendix A.7): classification, imputation,
//! self-supervised pretraining + few-label fine-tuning, and forecasting. All of them
//! train through the unified adaptive engine in [`trainer`], which owns the epoch loop,
//! length-bucketed batching, and the §5.2 batch-size schedule.

pub mod classification;
pub mod forecasting;
pub mod imputation;
pub mod pretrain;
pub mod trainer;

pub use classification::Classifier;
pub use forecasting::{evaluate_forecast, persistence_forecast_mse, ForecastMetrics};
pub use imputation::Imputer;
pub use pretrain::{finetune_classifier, pretrain, train_from_scratch, PretrainOutcome};
pub use trainer::{
    timed, train_task, train_task_resumable, AdaptiveBatchConfig, BatchSizeDecision,
    BatchSizePolicy, EpochMetrics, TrainConfig, TrainReport, TrainTask,
};
