//! Downstream tasks supported by RITA (Appendix A.7): classification, imputation,
//! self-supervised pretraining + few-label fine-tuning, and forecasting, plus the shared
//! training-loop plumbing.

pub mod classification;
pub mod forecasting;
pub mod imputation;
pub mod pretrain;
pub mod trainer;

pub use classification::Classifier;
pub use forecasting::{evaluate_forecast, persistence_forecast_mse, ForecastMetrics};
pub use imputation::Imputer;
pub use pretrain::{finetune_classifier, pretrain, train_from_scratch, PretrainOutcome};
pub use trainer::{timed, EpochMetrics, TrainConfig, TrainReport};
