//! Self-supervised pretraining and few-label fine-tuning (§3, §6.2.2).
//!
//! Pretraining is the cloze task: mask 20 % of the timestamps of *unlabelled* series and
//! train the backbone (plus a throw-away reconstruction head) to recover them. The
//! pretrained backbone is then reused for a downstream task — here classification with
//! only a few labelled samples per class — by attaching a fresh head and fine-tuning.
//!
//! Both stages train through the shared adaptive engine
//! ([`train_task`](crate::tasks::trainer::train_task)): pretraining drives the
//! [`Imputer`] task, fine-tuning the [`Classifier`] task, so variable-length data and the
//! §5.2 batch-size schedule apply to them without extra plumbing.

use crate::model::{RitaConfig, RitaModel};
use crate::tasks::classification::Classifier;
use crate::tasks::imputation::Imputer;
use crate::tasks::trainer::{TrainConfig, TrainReport};
use rand::Rng;
use rita_data::TimeseriesDataset;

/// Outcome of a pretraining run: the trained backbone plus the reconstruction report.
pub struct PretrainOutcome {
    /// The pretrained backbone, ready to be attached to a downstream head.
    pub model: RitaModel,
    /// Per-epoch pretraining metrics.
    pub report: TrainReport,
}

/// Pretrains a RITA backbone on unlabelled data with the mask-and-predict task.
pub fn pretrain(
    config: RitaConfig,
    unlabeled: &TimeseriesDataset,
    train_cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> PretrainOutcome {
    let mut imputer = Imputer::new(config, rng);
    let report = imputer.train(unlabeled, train_cfg, rng);
    PretrainOutcome { model: imputer.model, report }
}

/// Fine-tunes a classifier on a (typically few-label) dataset starting from a pretrained
/// backbone, and returns it together with the fine-tuning report.
pub fn finetune_classifier(
    pretrained: RitaModel,
    num_classes: usize,
    labeled: &TimeseriesDataset,
    train_cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> (Classifier, TrainReport) {
    let mut clf = Classifier::from_model(pretrained, num_classes, rng);
    let report = clf.train(labeled, train_cfg, rng);
    (clf, report)
}

/// Trains a classifier from scratch on the same few-label dataset — the "Scratch" column
/// of Table 3, against which pretraining is compared.
pub fn train_from_scratch(
    config: RitaConfig,
    num_classes: usize,
    labeled: &TimeseriesDataset,
    train_cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> (Classifier, TrainReport) {
    let mut clf = Classifier::new(config, num_classes, rng);
    let report = clf.train(labeled, train_cfg, rng);
    (clf, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use rand::SeedableRng;
    use rita_data::DatasetKind;
    use rita_nn::Module;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn pretrain_then_finetune_pipeline_runs() {
        let mut r = rng(0);
        let unlabeled = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 12, 0, 40, &mut r);
        let labeled = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 10, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::default_group());
        let cfg = TrainConfig { epochs: 1, batch_size: 6, lr: 1e-3, ..Default::default() };

        let outcome = pretrain(config, &unlabeled, &cfg, &mut r);
        assert_eq!(outcome.report.epochs.len(), 1);
        assert!(outcome.report.final_loss().is_finite());

        let pretrained_weights = outcome.model.parameters()[0].to_array();
        let (mut clf, report) = finetune_classifier(outcome.model, 5, &labeled, &cfg, &mut r);
        assert!(report.final_loss().is_finite());
        // The backbone actually moved during fine-tuning (it is not frozen).
        let finetuned_weights = clf.model.parameters()[0].to_array();
        assert_ne!(pretrained_weights, finetuned_weights);
        let acc = clf.evaluate(&labeled, 6, &mut r);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn scratch_baseline_runs() {
        let mut r = rng(1);
        let labeled = TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 10, 0, 40, &mut r);
        let config = RitaConfig::tiny(3, 40, AttentionKind::Vanilla);
        let cfg = TrainConfig { epochs: 1, batch_size: 5, lr: 1e-3, ..Default::default() };
        let (mut clf, report) = train_from_scratch(config, 5, &labeled, &cfg, &mut r);
        assert!(report.final_loss().is_finite());
        let acc = clf.evaluate(&labeled, 5, &mut r);
        assert!((0.0..=1.0).contains(&acc));
    }
}
