//! Shared training-loop plumbing: hyper-parameter bundle, per-epoch metrics, and timing.

use std::time::Instant;

/// Hyper-parameters of a training run (defaults follow Appendix A.1 of the paper, scaled
/// down where noted).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size. The paper predicts this from `(L, N)`; harness code may pass the
    /// output of the batch-size predictor here.
    pub batch_size: usize,
    /// AdamW learning rate (paper: 1e-4; small-scale runs use a larger value to converge
    /// within few epochs).
    pub lr: f32,
    /// AdamW decoupled weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// Mask rate for cloze pretraining / imputation (paper: 0.2).
    pub mask_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 16,
            lr: 1e-3,
            weight_decay: 1e-4,
            grad_clip: 1.0,
            mask_rate: 0.2,
        }
    }
}

/// Result of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Wall-clock seconds spent in the epoch (forward + backward + grouping + update).
    pub seconds: f64,
}

/// Result of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch metrics in order.
    pub epochs: Vec<EpochMetrics>,
}

impl TrainReport {
    /// Adds an epoch record.
    pub fn push(&mut self, metrics: EpochMetrics) {
        self.epochs.push(metrics);
    }

    /// Mean seconds per epoch (the paper's main efficiency metric).
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.seconds).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }

    /// Total wall-clock seconds across all epochs.
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0);
        assert!((c.mask_rate - 0.2).abs() < 1e-6);
    }

    #[test]
    fn report_aggregates() {
        let mut r = TrainReport::default();
        assert_eq!(r.mean_epoch_seconds(), 0.0);
        assert!(r.final_loss().is_nan());
        r.push(EpochMetrics { loss: 2.0, seconds: 1.0 });
        r.push(EpochMetrics { loss: 1.0, seconds: 3.0 });
        assert_eq!(r.mean_epoch_seconds(), 2.0);
        assert_eq!(r.final_loss(), 1.0);
        assert_eq!(r.total_seconds(), 4.0);
    }

    #[test]
    fn timed_measures_and_passes_through() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
