//! The unified adaptive training engine (§5.2 wired end-to-end).
//!
//! Every task (classification, imputation, and the pretrain/finetune wrappers built on
//! them) trains through [`train_task`]: tasks implement [`TrainTask`] — "build the loss of
//! one mini-batch" — and the engine owns everything around it: the optimiser, the epoch
//! loop, length-bucketed batching for variable-length datasets, and the paper's learned
//! batch-size schedule `B = f(L, N)`.
//!
//! With [`BatchSizePolicy::Adaptive`], the engine trains a [`BatchSizePredictor`] against
//! the backbone's [`MemoryModel`] once at the start of training, predicts a batch size per
//! distinct sample length, and **re-predicts whenever the scheduler's group-count target
//! ([`RitaModel::mean_scheduled_groups`]) shrinks materially** (Alg. 2–3): as the adaptive
//! scheduler merges groups, memory frees up and larger batches fit. The persistent target
//! is used rather than the last forward's clamped count so the plan cannot depend on which
//! length bucket happened to run last. Every decision is recorded in
//! [`TrainReport::decisions`].

use std::collections::BTreeMap;
use std::time::Instant;

use crate::model::RitaModel;
use crate::scheduler::{
    BatchSizePredictor, MemoryModel, DEFAULT_BUDGET_BYTES, DEFAULT_BUDGET_FRACTION,
};
use rand::Rng;
use rita_data::batch::batch_indices_by_length;
use rita_data::TimeseriesDataset;
use rita_nn::optim::{clip_grad_norm, AdamW, Optimizer};
use rita_nn::{Module, Var};

/// Hyper-parameters of a training run (defaults follow Appendix A.1 of the paper, scaled
/// down where noted).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size used by [`BatchSizePolicy::Fixed`] — the explicit override for the
    /// §5.2 machinery.
    pub batch_size: usize,
    /// How the engine chooses the actual per-batch size.
    pub batch_policy: BatchSizePolicy,
    /// AdamW learning rate (paper: 1e-4; small-scale runs use a larger value to converge
    /// within few epochs).
    pub lr: f32,
    /// AdamW decoupled weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// Mask rate for cloze pretraining / imputation (paper: 0.2).
    pub mask_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 16,
            batch_policy: BatchSizePolicy::Fixed,
            lr: 1e-3,
            weight_decay: 1e-4,
            grad_clip: 1.0,
            mask_rate: 0.2,
        }
    }
}

/// How the training engine picks mini-batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchSizePolicy {
    /// Always use [`TrainConfig::batch_size`].
    Fixed,
    /// Learn `B = f(L, N)` from the backbone's memory model (§5.2, Alg. 2–3) and pick a
    /// per-length-bucket batch size, re-predicting as the scheduler shrinks `N`.
    Adaptive(AdaptiveBatchConfig),
}

/// Knobs of the adaptive batch-size schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBatchConfig {
    /// Simulated accelerator memory in bytes.
    pub budget_bytes: usize,
    /// Fraction of the budget training may occupy (paper: 90 %).
    pub budget_fraction: f32,
    /// Hard cap on any predicted batch size.
    pub max_batch: usize,
    /// Grid resolution per axis when training the predictor (Alg. 3).
    pub samples_per_axis: usize,
    /// Maximum number of length segments of the plane division (Alg. 3).
    pub max_segments: usize,
    /// Fractional shrink of the mean group count that triggers re-prediction: with 0.1,
    /// batch sizes are re-predicted once `N` drops below 90 % of the value they were
    /// last planned with.
    pub repredict_shrink: f32,
}

impl Default for AdaptiveBatchConfig {
    fn default() -> Self {
        Self {
            budget_bytes: DEFAULT_BUDGET_BYTES,
            budget_fraction: DEFAULT_BUDGET_FRACTION,
            max_batch: 1 << 16,
            samples_per_axis: 5,
            max_segments: 3,
            repredict_shrink: 0.1,
        }
    }
}

/// One batch-size decision made by the adaptive engine (empty under the fixed policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSizeDecision {
    /// Epoch at which the (re-)prediction happened.
    pub epoch: usize,
    /// Sample length `L` of the bucket.
    pub length: usize,
    /// Group count `N` the prediction was based on: the scheduler's mean target clamped
    /// to this bucket's window count (for non-group attention, the window count itself —
    /// the memory worst case).
    pub groups: usize,
    /// The predicted, budget-clamped batch size `B = f(L, N)`.
    pub batch_size: usize,
}

/// A task trainable by the shared engine: everything except the per-batch loss is common.
pub trait TrainTask: Module {
    /// The RITA backbone, giving the engine group-count statistics and the memory model.
    fn backbone(&self) -> &RitaModel;

    /// Builds the loss graph of one mini-batch given dataset row indices, together with
    /// the batch's weight in the epoch-loss aggregate — the number of atomic units the
    /// loss averages over (samples for classification, masked elements for imputation),
    /// so the reported epoch loss stays unbiased when bucket batch sizes differ. Called
    /// in training mode; the engine handles zero/backward/clip/step around it.
    fn batch_loss_on<R: Rng>(
        &mut self,
        data: &TimeseriesDataset,
        idx: &[usize],
        config: &TrainConfig,
        rng: &mut R,
    ) -> (Var, f32);
}

/// Trains `task` on `data` for `config.epochs` epochs with AdamW — the single training
/// loop behind every task. Handles variable-length datasets via length-bucketed batches
/// and drives the §5.2 batch-size schedule under [`BatchSizePolicy::Adaptive`].
pub fn train_task<T: TrainTask + ?Sized, R: Rng>(
    task: &mut T,
    data: &TimeseriesDataset,
    config: &TrainConfig,
    rng: &mut R,
) -> TrainReport {
    // Named construction: moment state keyed by parameter path (checkpointable), tied
    // weights deduplicated by node identity so they are stepped once.
    let mut opt = AdamW::for_module(task, config.lr, config.weight_decay);
    train_task_resumable(task, data, config, &mut opt, rng)
}

/// [`train_task`] with a caller-owned optimiser, for checkpoint/resume workflows: pass a
/// fresh `AdamW` (or one rebuilt via `Checkpoint::restore_optimizer`) and capture its
/// state afterwards. Splitting one run into `train(k)` + save + load + `train(n − k)`
/// reproduces the uninterrupted `train(n)` step-for-step, provided the caller carries
/// the RNG stream across the boundary (RNG state is deliberately not part of a
/// checkpoint).
pub fn train_task_resumable<T: TrainTask + ?Sized, R: Rng>(
    task: &mut T,
    data: &TimeseriesDataset,
    config: &TrainConfig,
    opt: &mut AdamW,
    rng: &mut R,
) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    let mut planner = BatchPlanner::new(task.backbone(), config);
    let lengths = data.lengths();
    let mut report = TrainReport::default();
    for epoch in 0..config.epochs {
        planner.plan_epoch(task.backbone(), &lengths, epoch);
        let (loss, seconds) = timed(|| {
            // Weight each batch's mean loss by the task-reported unit count: adaptive
            // bucket batch sizes differ widely, and an unweighted mean over batches
            // would silently over-weight the units of small-batch (long-series) buckets.
            let mut loss_sum = 0.0f32;
            let mut weight_sum = 0.0f32;
            for idx in batch_indices_by_length(&lengths, |l| planner.batch_size_for(l), true, rng) {
                opt.zero_grad();
                let (loss, weight) = task.batch_loss_on(data, &idx, config, rng);
                loss.backward();
                if config.grad_clip > 0.0 {
                    clip_grad_norm(&opt.parameters(), config.grad_clip);
                }
                opt.step();
                loss_sum += loss.item() * weight;
                weight_sum += weight;
            }
            loss_sum / weight_sum.max(1.0)
        });
        report.push(EpochMetrics { loss, seconds });
    }
    report.decisions = planner.into_decisions();
    report
}

/// Per-length batch-size planning state of one training run.
struct BatchPlanner {
    mode: PlannerMode,
}

enum PlannerMode {
    Fixed(usize),
    Adaptive(Box<AdaptiveState>),
}

struct AdaptiveState {
    predictor: BatchSizePredictor,
    memory: MemoryModel,
    repredict_shrink: f32,
    /// Scheduler group-count target the current plan is based on; `None` for
    /// non-group attention, where the plan uses the worst case `N = windows(L)`.
    groups_at_plan: Option<f32>,
    plan: BTreeMap<usize, usize>,
    decisions: Vec<BatchSizeDecision>,
}

impl BatchPlanner {
    fn new(backbone: &RitaModel, config: &TrainConfig) -> Self {
        match config.batch_policy {
            BatchSizePolicy::Fixed => {
                assert!(config.batch_size > 0, "batch size must be positive");
                Self { mode: PlannerMode::Fixed(config.batch_size) }
            }
            BatchSizePolicy::Adaptive(cfg) => {
                let memory = backbone.memory_model();
                let predictor = BatchSizePredictor::train_with(
                    &memory,
                    backbone.config.max_len,
                    cfg.budget_bytes,
                    cfg.budget_fraction,
                    cfg.max_batch,
                    cfg.samples_per_axis,
                    cfg.max_segments,
                );
                Self {
                    mode: PlannerMode::Adaptive(Box::new(AdaptiveState {
                        predictor,
                        memory,
                        repredict_shrink: cfg.repredict_shrink,
                        groups_at_plan: None,
                        plan: BTreeMap::new(),
                        decisions: Vec::new(),
                    })),
                }
            }
        }
    }

    /// Re-predicts the per-length batch sizes when needed: on the first epoch, and
    /// whenever the scheduler's group-count target has shrunk materially since the plan
    /// was last computed.
    fn plan_epoch(&mut self, backbone: &RitaModel, lengths: &[usize], epoch: usize) {
        let PlannerMode::Adaptive(state) = &mut self.mode else {
            return;
        };
        let AdaptiveState { predictor, memory, repredict_shrink, groups_at_plan, plan, decisions } =
            &mut **state;
        // The *persistent* scheduler target (not the last forward's clamped count, which
        // on mixed-length data depends on which bucket happened to run last): defined
        // from construction on, `None` only for non-group attention.
        let current = backbone.mean_scheduled_groups().filter(|&g| g >= 1.0);
        let replan = match (plan.is_empty(), *groups_at_plan, current) {
            (true, _, _) => true,
            (false, Some(prev), Some(now)) => now < prev * (1.0 - *repredict_shrink),
            (false, _, _) => false,
        };
        if !replan {
            return;
        }
        plan.clear();
        let mut distinct: Vec<usize> = lengths.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for len in distinct {
            // A batch of this length runs each group-attention layer with the target
            // clamped to the batch's window count — mirror that clamp per bucket. For
            // non-group attention assume every window is its own group (the memory
            // worst case for the n×n mechanisms).
            let windows = memory.windows(len);
            let groups = match current {
                Some(g) => (g.round() as usize).clamp(1, windows),
                None => windows,
            };
            let batch_size = predictor.predict(len, groups);
            plan.insert(len, batch_size);
            decisions.push(BatchSizeDecision { epoch, length: len, groups, batch_size });
        }
        *groups_at_plan = current;
    }

    fn batch_size_for(&self, len: usize) -> usize {
        match &self.mode {
            PlannerMode::Fixed(b) => *b,
            PlannerMode::Adaptive(state) => state.plan.get(&len).copied().unwrap_or(1).max(1),
        }
    }

    fn into_decisions(self) -> Vec<BatchSizeDecision> {
        match self.mode {
            PlannerMode::Fixed(_) => Vec::new(),
            PlannerMode::Adaptive(state) => state.decisions,
        }
    }

    #[cfg(test)]
    fn decisions_len(&self) -> usize {
        match &self.mode {
            PlannerMode::Fixed(_) => 0,
            PlannerMode::Adaptive(state) => state.decisions.len(),
        }
    }
}

/// Result of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Wall-clock seconds spent in the epoch (forward + backward + grouping + update).
    pub seconds: f64,
}

/// Result of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch metrics in order.
    pub epochs: Vec<EpochMetrics>,
    /// Batch-size decisions of the adaptive engine, in the order they were made (empty
    /// under [`BatchSizePolicy::Fixed`]).
    pub decisions: Vec<BatchSizeDecision>,
}

impl TrainReport {
    /// Adds an epoch record.
    pub fn push(&mut self, metrics: EpochMetrics) {
        self.epochs.push(metrics);
    }

    /// Mean seconds per epoch (the paper's main efficiency metric).
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.seconds).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }

    /// Total wall-clock seconds across all epochs.
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// The most recent batch-size decision for a given sample length, if any.
    pub fn latest_batch_size_for(&self, length: usize) -> Option<usize> {
        self.decisions.iter().rev().find(|d| d.length == length).map(|d| d.batch_size)
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use crate::model::RitaConfig;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0);
        assert_eq!(c.batch_policy, BatchSizePolicy::Fixed);
        assert!((c.mask_rate - 0.2).abs() < 1e-6);
        let a = AdaptiveBatchConfig::default();
        assert!(a.budget_bytes > 0 && a.max_batch > 0);
        assert!((0.0..1.0).contains(&a.repredict_shrink));
    }

    #[test]
    fn report_aggregates() {
        let mut r = TrainReport::default();
        assert_eq!(r.mean_epoch_seconds(), 0.0);
        assert!(r.final_loss().is_nan());
        r.push(EpochMetrics { loss: 2.0, seconds: 1.0 });
        r.push(EpochMetrics { loss: 1.0, seconds: 3.0 });
        assert_eq!(r.mean_epoch_seconds(), 2.0);
        assert_eq!(r.final_loss(), 1.0);
        assert_eq!(r.total_seconds(), 4.0);
        assert!(r.latest_batch_size_for(100).is_none());
        r.decisions.push(BatchSizeDecision { epoch: 0, length: 100, groups: 20, batch_size: 8 });
        r.decisions.push(BatchSizeDecision { epoch: 1, length: 100, groups: 10, batch_size: 12 });
        assert_eq!(r.latest_batch_size_for(100), Some(12));
    }

    #[test]
    fn timed_measures_and_passes_through() {
        let (value, secs) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fixed_planner_always_returns_the_configured_size() {
        let mut rng = SeedableRng64::seed_from_u64(0);
        let model = RitaModel::new(RitaConfig::tiny(1, 40, AttentionKind::Vanilla), &mut rng);
        let config = TrainConfig { batch_size: 7, ..Default::default() };
        let mut planner = BatchPlanner::new(&model, &config);
        planner.plan_epoch(&model, &[40, 40, 20], 0);
        assert_eq!(planner.batch_size_for(40), 7);
        assert_eq!(planner.batch_size_for(20), 7);
        assert!(planner.into_decisions().is_empty());
    }

    #[test]
    fn adaptive_planner_predicts_per_length_and_records_decisions() {
        let mut rng = SeedableRng64::seed_from_u64(1);
        let model =
            RitaModel::new(RitaConfig::tiny(3, 120, AttentionKind::default_group()), &mut rng);
        // A small budget so the predicted batch sizes are in an interesting range.
        let adaptive = AdaptiveBatchConfig {
            budget_bytes: 8 * 1024 * 1024,
            max_batch: 256,
            ..Default::default()
        };
        let config =
            TrainConfig { batch_policy: BatchSizePolicy::Adaptive(adaptive), ..Default::default() };
        let mut planner = BatchPlanner::new(&model, &config);
        planner.plan_epoch(&model, &[40, 40, 80, 120], 0);
        let b40 = planner.batch_size_for(40);
        let b120 = planner.batch_size_for(120);
        assert!(b40 >= 1 && b120 >= 1);
        assert!(b40 >= b120, "shorter series must not get smaller batches: {b40} vs {b120}");
        let decisions = planner.into_decisions();
        assert_eq!(decisions.len(), 3, "one decision per distinct length");
        assert!(decisions.iter().all(|d| d.epoch == 0));
        // The scheduler target (64 for the default group config) clamps to each bucket's
        // window count: 8 windows for length 40.
        assert!(decisions.iter().any(|d| d.length == 40 && d.groups == 8));
    }

    #[test]
    fn planner_repredicts_when_the_scheduler_target_shrinks() {
        let mut rng = SeedableRng64::seed_from_u64(2);
        let mut model =
            RitaModel::new(RitaConfig::tiny(3, 120, AttentionKind::default_group()), &mut rng);
        let adaptive = AdaptiveBatchConfig {
            budget_bytes: 8 * 1024 * 1024,
            max_batch: 256,
            ..Default::default()
        };
        let config =
            TrainConfig { batch_policy: BatchSizePolicy::Adaptive(adaptive), ..Default::default() };
        let mut planner = BatchPlanner::new(&model, &config);
        let lengths = [60usize, 120];
        planner.plan_epoch(&model, &lengths, 0);
        // Same target, same plan: no new decisions.
        planner.plan_epoch(&model, &lengths, 1);
        assert_eq!(planner.decisions_len(), 2);
        // The scheduler shrinks its persistent target materially -> re-prediction with
        // the smaller N, and (memory model monotone in N) batch sizes cannot shrink.
        let before_120 = planner.batch_size_for(120);
        model.set_group_count(4);
        planner.plan_epoch(&model, &lengths, 2);
        let decisions = planner.into_decisions();
        assert_eq!(decisions.len(), 4, "shrunk target must re-predict every bucket");
        let repredicted: Vec<_> = decisions.iter().filter(|d| d.epoch == 2).collect();
        assert_eq!(repredicted.len(), 2);
        assert!(repredicted.iter().all(|d| d.groups == 4));
        let after_120 = repredicted.iter().find(|d| d.length == 120).unwrap().batch_size;
        assert!(after_120 >= before_120, "fewer groups must not shrink the batch");
    }

    #[test]
    fn vanilla_backbone_plans_with_the_window_count_worst_case() {
        let mut rng = SeedableRng64::seed_from_u64(3);
        let model = RitaModel::new(RitaConfig::tiny(3, 120, AttentionKind::Vanilla), &mut rng);
        let config = TrainConfig {
            batch_policy: BatchSizePolicy::Adaptive(AdaptiveBatchConfig::default()),
            ..Default::default()
        };
        let mut planner = BatchPlanner::new(&model, &config);
        planner.plan_epoch(&model, &[120], 0);
        let decisions = planner.into_decisions();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].groups, 24, "no scheduler: every window is its own group");
    }
}
