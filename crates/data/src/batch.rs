//! Mini-batch assembly: stacking `(channels, length)` samples into `(batch, channels,
//! length)` arrays, iterating a dataset in (optionally shuffled) batches, and building
//! masked batches for the cloze/imputation tasks.

use crate::dataset::TimeseriesDataset;
use crate::masking::{mask_sample, MaskedSample};
use rand::seq::SliceRandom;
use rand::Rng;
use rita_tensor::NdArray;

/// A classification mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Inputs of shape `(batch, channels, length)`.
    pub inputs: NdArray,
    /// Class labels, one per sample (empty for unlabeled data).
    pub labels: Vec<usize>,
}

/// A masked (cloze / imputation) mini-batch.
#[derive(Debug, Clone)]
pub struct MaskedBatch {
    /// Observed inputs with sentinel values at masked positions, `(batch, channels, length)`.
    pub observed: NdArray,
    /// Ground-truth targets, `(batch, channels, length)`.
    pub targets: NdArray,
    /// Mask (1 at masked positions), `(batch, channels, length)`.
    pub mask: NdArray,
}

/// Stacks samples (each `(c, l)`) into a single `(n, c, l)` array.
pub fn stack_samples(samples: &[NdArray]) -> NdArray {
    let refs: Vec<&NdArray> = samples.iter().collect();
    NdArray::stack(&refs).expect("stack_samples: inconsistent sample shapes")
}

/// Iterates over index batches of size `batch_size`, optionally shuffling first.
/// The final, smaller batch is included.
pub fn batch_indices(
    n: usize,
    batch_size: usize,
    shuffle: bool,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = (0..n).collect();
    if shuffle {
        order.shuffle(rng);
    }
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Length-bucketed batching for (possibly) variable-length datasets: indices are grouped
/// by their sample length so every batch stacks rectangular, then each bucket is chunked
/// with its own batch size `batch_size_for(length)` — which is where the §5.2 predictor's
/// `B = f(L, N)` plugs in. With `shuffle`, sample order within buckets and the order of
/// the resulting batches are both randomised; otherwise batches come in ascending length
/// order with ascending indices inside.
pub fn batch_indices_by_length(
    lengths: &[usize],
    mut batch_size_for: impl FnMut(usize) -> usize,
    shuffle: bool,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &l) in lengths.iter().enumerate() {
        buckets.entry(l).or_default().push(i);
    }
    let mut batches = Vec::new();
    for (len, mut idxs) in buckets {
        if shuffle {
            idxs.shuffle(rng);
        }
        let batch_size = batch_size_for(len);
        assert!(batch_size > 0, "batch size must be positive (got 0 for length {len})");
        batches.extend(idxs.chunks(batch_size).map(|c| c.to_vec()));
    }
    if shuffle {
        batches.shuffle(rng);
    }
    batches
}

/// Builds a classification batch from dataset rows `indices`.
pub fn make_batch(dataset: &TimeseriesDataset, indices: &[usize]) -> Batch {
    let samples: Vec<NdArray> = indices.iter().map(|&i| dataset.samples[i].clone()).collect();
    let labels = match &dataset.labels {
        Some(l) => indices.iter().map(|&i| l[i]).collect(),
        None => Vec::new(),
    };
    Batch { inputs: stack_samples(&samples), labels }
}

/// Builds a masked batch (mask rate `p`) from dataset rows `indices`.
pub fn make_masked_batch(
    dataset: &TimeseriesDataset,
    indices: &[usize],
    p: f32,
    rng: &mut impl Rng,
) -> MaskedBatch {
    let masked: Vec<MaskedSample> =
        indices.iter().map(|&i| mask_sample(&dataset.samples[i], p, rng)).collect();
    let observed: Vec<NdArray> = masked.iter().map(|m| m.observed.clone()).collect();
    let targets: Vec<NdArray> = masked.iter().map(|m| m.target.clone()).collect();
    let mask: Vec<NdArray> = masked.iter().map(|m| m.mask.clone()).collect();
    MaskedBatch {
        observed: stack_samples(&observed),
        targets: stack_samples(&targets),
        mask: stack_samples(&mask),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn tiny() -> TimeseriesDataset {
        TimeseriesDataset::generate_reduced(DatasetKind::Hhar, 17, 3, 40, &mut rng(1))
    }

    #[test]
    fn stack_builds_batch_dimension() {
        let ds = tiny();
        let b = stack_samples(&ds.samples[..4]);
        assert_eq!(b.shape(), &[4, 3, 40]);
        assert_eq!(b.index_axis0(2).unwrap(), ds.samples[2]);
    }

    #[test]
    fn batch_indices_cover_everything_once() {
        let batches = batch_indices(23, 5, true, &mut rng(2));
        assert_eq!(batches.len(), 5);
        assert_eq!(batches.last().unwrap().len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Unshuffled batches preserve order.
        let plain = batch_indices(6, 4, false, &mut rng(2));
        assert_eq!(plain[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn make_batch_aligns_labels() {
        let ds = tiny();
        let idx = vec![5, 0, 9];
        let b = make_batch(&ds, &idx);
        assert_eq!(b.inputs.shape(), &[3, 3, 40]);
        let labels = ds.labels.as_ref().unwrap();
        assert_eq!(b.labels, vec![labels[5], labels[0], labels[9]]);
    }

    #[test]
    fn make_masked_batch_shapes_and_rate() {
        let ds = tiny();
        let idx: Vec<usize> = (0..8).collect();
        let mb = make_masked_batch(&ds, &idx, 0.25, &mut rng(5));
        assert_eq!(mb.observed.shape(), &[8, 3, 40]);
        assert_eq!(mb.targets.shape(), &[8, 3, 40]);
        assert_eq!(mb.mask.shape(), &[8, 3, 40]);
        let rate = mb.mask.sum_all() / (8.0 * 3.0 * 40.0);
        assert!((rate - 0.25).abs() < 0.1, "rate {rate}");
        assert!(mb.targets.min_all() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = batch_indices(10, 0, false, &mut rng(0));
    }

    #[test]
    fn length_bucketed_batches_are_rectangular_and_cover_everything() {
        let ds =
            TimeseriesDataset::generate_variable(DatasetKind::Hhar, 20, 0, 40, 80, 3, &mut rng(3));
        let lengths = ds.lengths();
        let batches = batch_indices_by_length(&lengths, |_| 4, true, &mut rng(4));
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        for idx in &batches {
            assert!(idx.len() <= 4);
            // Every batch holds samples of one length, so stacking stays rectangular.
            let first = lengths[idx[0]];
            assert!(idx.iter().all(|&i| lengths[i] == first));
            let b = make_batch(&ds, idx);
            assert_eq!(b.inputs.shape(), &[idx.len(), 3, first]);
        }
    }

    #[test]
    fn per_length_batch_sizes_are_respected() {
        let lengths = [10usize, 20, 10, 20, 20, 10, 10, 20, 20];
        let batches =
            batch_indices_by_length(&lengths, |l| if l == 10 { 4 } else { 2 }, false, &mut rng(5));
        // Unshuffled: ascending length order, ascending indices inside.
        assert_eq!(batches[0], vec![0, 2, 5, 6]); // all four length-10 samples, batch size 4
        assert_eq!(batches[1], vec![1, 3]); // length-20 samples in pairs
        assert_eq!(batches[2], vec![4, 7]);
        assert_eq!(batches[3], vec![8]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_bucket_batch_size_rejected() {
        let _ = batch_indices_by_length(&[10, 10], |_| 0, false, &mut rng(0));
    }
}
