//! In-memory dataset container, train/validation splits, and univariate derivation.

use crate::generators::generate_sample;
use crate::spec::{DatasetKind, DatasetSpec};
use rand::seq::SliceRandom;
use rand::Rng;
use rita_tensor::NdArray;

/// A labelled (or unlabelled) collection of fixed-length multivariate timeseries samples.
///
/// Samples are stored as `(channels, length)` arrays. Labels are class indices; the MGH
/// EEG dataset is unlabelled (`labels == None`).
#[derive(Debug, Clone)]
pub struct TimeseriesDataset {
    /// Specification this dataset was generated from.
    pub spec: DatasetSpec,
    /// Samples, each of shape `(channels, length)`.
    pub samples: Vec<NdArray>,
    /// Optional class labels, one per sample.
    pub labels: Option<Vec<usize>>,
}

/// A train/validation split of a [`TimeseriesDataset`].
#[derive(Debug, Clone)]
pub struct DataSplit {
    /// Training portion.
    pub train: TimeseriesDataset,
    /// Validation portion.
    pub valid: TimeseriesDataset,
}

impl TimeseriesDataset {
    /// Generates a synthetic dataset for `spec`, with labels balanced across classes for
    /// labelled datasets.
    pub fn generate(spec: DatasetSpec, rng: &mut impl Rng) -> Self {
        let total = spec.total_size();
        let mut samples = Vec::with_capacity(total);
        let mut labels = if spec.is_labeled() { Some(Vec::with_capacity(total)) } else { None };
        for i in 0..total {
            let class = if spec.is_labeled() { i % spec.num_classes } else { 0 };
            samples.push(generate_sample(&spec, class, rng));
            if let Some(l) = labels.as_mut() {
                l.push(class);
            }
        }
        let mut ds = Self { spec, samples, labels };
        ds.shuffle(rng);
        ds
    }

    /// Convenience: generate a reduced-scale dataset for `kind`.
    pub fn generate_reduced(
        kind: DatasetKind,
        train_size: usize,
        valid_size: usize,
        length: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::generate(kind.reduced_spec(train_size, valid_size, length), rng)
    }

    /// Convenience: generate a reduced-scale *variable-length* dataset — sample lengths
    /// are drawn uniformly from `buckets` evenly spaced values in `[min_length, length]`
    /// (the paper's Fig. 4 varying-length workload).
    pub fn generate_variable(
        kind: DatasetKind,
        train_size: usize,
        valid_size: usize,
        min_length: usize,
        length: usize,
        buckets: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = kind
            .reduced_spec(train_size, valid_size, length)
            .with_variable_length(min_length, buckets);
        Self::generate(spec, rng)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of channels per sample.
    pub fn channels(&self) -> usize {
        self.spec.channels
    }

    /// Nominal (maximum) length in timestamps. For variable-length datasets individual
    /// samples may be shorter — see [`TimeseriesDataset::sample_length`].
    pub fn length(&self) -> usize {
        self.spec.length
    }

    /// Length (timestamps) of sample `i`.
    pub fn sample_length(&self, i: usize) -> usize {
        self.samples[i].shape()[1]
    }

    /// Per-sample lengths, aligned with `samples` — the input to length-bucketed batching
    /// ([`crate::batch::batch_indices_by_length`]).
    pub fn lengths(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.shape()[1]).collect()
    }

    /// `true` when samples do not all share one length.
    pub fn is_variable_length(&self) -> bool {
        let mut lens = self.samples.iter().map(|s| s.shape()[1]);
        match lens.next() {
            Some(first) => lens.any(|l| l != first),
            None => false,
        }
    }

    /// The longest sample length actually present (equals [`TimeseriesDataset::length`]
    /// for generated datasets; 0 when empty).
    pub fn max_length(&self) -> usize {
        self.samples.iter().map(|s| s.shape()[1]).max().unwrap_or(0)
    }

    /// Shuffles samples (and labels) in place.
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.shuffle(rng);
        self.samples = order.iter().map(|&i| self.samples[i].clone()).collect();
        if let Some(labels) = &self.labels {
            self.labels = Some(order.iter().map(|&i| labels[i]).collect());
        }
    }

    /// Splits into train/validation according to the spec's sizes (train first). The
    /// paper uses a 0.9/0.1 random split; [`TimeseriesDataset::generate`] already
    /// shuffles, so taking the prefix is a random split.
    pub fn split(&self) -> DataSplit {
        let train_n = self.spec.train_size.min(self.len());
        self.split_at(train_n)
    }

    /// Splits after `train_n` samples.
    pub fn split_at(&self, train_n: usize) -> DataSplit {
        let train_n = train_n.min(self.len());
        let mut train_spec = self.spec;
        train_spec.train_size = train_n;
        train_spec.valid_size = 0;
        let mut valid_spec = self.spec;
        valid_spec.train_size = 0;
        valid_spec.valid_size = self.len() - train_n;
        let train = TimeseriesDataset {
            spec: train_spec,
            samples: self.samples[..train_n].to_vec(),
            labels: self.labels.as_ref().map(|l| l[..train_n].to_vec()),
        };
        let valid = TimeseriesDataset {
            spec: valid_spec,
            samples: self.samples[train_n..].to_vec(),
            labels: self.labels.as_ref().map(|l| l[train_n..].to_vec()),
        };
        DataSplit { train, valid }
    }

    /// Derives a univariate dataset by keeping a single channel
    /// (how the paper builds WISDM*/HHAR*/RWHAR*).
    pub fn to_univariate(&self, channel: usize) -> TimeseriesDataset {
        assert!(channel < self.channels(), "channel {channel} out of range");
        let samples = self
            .samples
            .iter()
            .map(|s| s.slice_axis(0, channel, channel + 1).expect("channel slice"))
            .collect();
        let mut spec = self.spec;
        spec.channels = 1;
        spec.kind = match spec.kind {
            DatasetKind::Wisdm => DatasetKind::WisdmUni,
            DatasetKind::Hhar => DatasetKind::HharUni,
            DatasetKind::Rwhar => DatasetKind::RwharUni,
            other => other,
        };
        TimeseriesDataset { spec, samples, labels: self.labels.clone() }
    }

    /// Truncates every sample to the first `length` timestamps (used by the
    /// varying-length experiment, Fig. 4).
    pub fn truncate_length(&self, length: usize) -> TimeseriesDataset {
        assert!(length <= self.length(), "cannot truncate {} to {length}", self.length());
        // Materialize: a truncated dataset is long-lived and should not pin the full-length
        // buffers of its source alive through slice views.
        let samples = self
            .samples
            .iter()
            .map(|s| s.slice_axis(1, 0, length).expect("truncate").materialize())
            .collect();
        let mut spec = self.spec;
        spec.length = length;
        TimeseriesDataset { spec, samples, labels: self.labels.clone() }
    }

    /// Keeps only the first `n` samples per class (the "few-label fine-tuning" setting:
    /// the paper uses 100 labelled samples per class).
    pub fn few_labels_per_class(&self, n: usize) -> TimeseriesDataset {
        let labels = self.labels.as_ref().expect("few_labels_per_class requires labels");
        let mut counts = vec![0usize; self.spec.num_classes];
        let mut keep = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if counts[l] < n {
                counts[l] += 1;
                keep.push(i);
            }
        }
        let samples = keep.iter().map(|&i| self.samples[i].clone()).collect();
        let kept_labels = keep.iter().map(|&i| labels[i]).collect();
        let mut spec = self.spec;
        spec.train_size = keep.len();
        spec.valid_size = 0;
        TimeseriesDataset { spec, samples, labels: Some(kept_labels) }
    }

    /// Keeps the first `fraction` (0..=1) of the samples (pretraining-size ablation, Table 5).
    pub fn take_fraction(&self, fraction: f32) -> TimeseriesDataset {
        let n = ((self.len() as f32) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut spec = self.spec;
        spec.train_size = n;
        spec.valid_size = 0;
        TimeseriesDataset {
            spec,
            samples: self.samples[..n].to_vec(),
            labels: self.labels.as_ref().map(|l| l[..n].to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    fn tiny(kind: DatasetKind) -> TimeseriesDataset {
        TimeseriesDataset::generate_reduced(kind, 40, 10, 60, &mut rng(1))
    }

    #[test]
    fn generate_balanced_and_shuffled() {
        let ds = tiny(DatasetKind::Hhar);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.channels(), 3);
        assert_eq!(ds.length(), 60);
        let labels = ds.labels.as_ref().unwrap();
        // Balanced across the 5 classes (50 / 5 = 10 each).
        for c in 0..5 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 10);
        }
        // Shuffled: labels should not be exactly the cyclic pattern 0,1,2,3,4,...
        let cyclic: Vec<usize> = (0..50).map(|i| i % 5).collect();
        assert_ne!(labels, &cyclic);
    }

    #[test]
    fn unlabeled_mgh_has_no_labels() {
        let ds = TimeseriesDataset::generate_reduced(DatasetKind::Mgh, 4, 2, 500, &mut rng(2));
        assert!(ds.labels.is_none());
        assert_eq!(ds.channels(), 21);
    }

    #[test]
    fn split_respects_sizes_and_alignment() {
        let ds = tiny(DatasetKind::Rwhar);
        let split = ds.split();
        assert_eq!(split.train.len(), 40);
        assert_eq!(split.valid.len(), 10);
        // Sample/label alignment preserved: re-splitting at a different point keeps pairs.
        let s2 = ds.split_at(25);
        assert_eq!(s2.train.len(), 25);
        assert_eq!(s2.valid.len(), 25);
        assert_eq!(s2.train.labels.as_ref().unwrap()[3], ds.labels.as_ref().unwrap()[3]);
        assert_eq!(s2.valid.samples[0], ds.samples[25]);
    }

    #[test]
    fn univariate_derivation_keeps_labels() {
        let ds = tiny(DatasetKind::Wisdm);
        let uni = ds.to_univariate(1);
        assert_eq!(uni.channels(), 1);
        assert_eq!(uni.spec.kind, DatasetKind::WisdmUni);
        assert_eq!(uni.labels, ds.labels);
        // the kept channel matches channel 1 of the original
        assert_eq!(
            uni.samples[0].as_slice(),
            ds.samples[0].slice_axis(0, 1, 2).unwrap().as_slice()
        );
    }

    #[test]
    fn truncate_length_shortens_samples() {
        let ds = TimeseriesDataset::generate_reduced(DatasetKind::Mgh, 3, 1, 400, &mut rng(3));
        let t = ds.truncate_length(100);
        assert_eq!(t.length(), 100);
        assert_eq!(t.samples[0].shape(), &[21, 100]);
        assert_eq!(t.samples[0].as_slice()[..100], ds.samples[0].as_slice()[..100]);
    }

    #[test]
    fn few_labels_per_class_caps_counts() {
        let ds = tiny(DatasetKind::Hhar);
        let few = ds.few_labels_per_class(3);
        assert_eq!(few.len(), 15);
        let labels = few.labels.as_ref().unwrap();
        for c in 0..5 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 3);
        }
    }

    #[test]
    fn variable_length_generation_mixes_bucket_lengths() {
        let ds =
            TimeseriesDataset::generate_variable(DatasetKind::Hhar, 24, 0, 40, 80, 3, &mut rng(7));
        assert!(ds.is_variable_length());
        assert_eq!(ds.length(), 80);
        assert_eq!(ds.max_length(), 80);
        let buckets = ds.spec.bucket_lengths();
        assert_eq!(buckets, vec![40, 60, 80]);
        let lengths = ds.lengths();
        assert_eq!(lengths.len(), 24);
        for (i, &l) in lengths.iter().enumerate() {
            assert!(buckets.contains(&l));
            assert_eq!(ds.sample_length(i), l);
        }
        let distinct: std::collections::BTreeSet<usize> = lengths.into_iter().collect();
        assert!(distinct.len() > 1, "expected mixed lengths, got {distinct:?}");
        // Labels stay aligned through the shuffle.
        assert_eq!(ds.labels.as_ref().unwrap().len(), 24);
        // Fixed-length datasets report themselves as such.
        assert!(!tiny(DatasetKind::Hhar).is_variable_length());
    }

    #[test]
    fn take_fraction_prefixes() {
        let ds = tiny(DatasetKind::Wisdm);
        let half = ds.take_fraction(0.5);
        assert_eq!(half.len(), 25);
        assert_eq!(half.samples[0], ds.samples[0]);
        assert_eq!(ds.take_fraction(2.0).len(), ds.len());
        assert_eq!(ds.take_fraction(0.0).len(), 0);
    }
}
