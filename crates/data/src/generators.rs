//! Synthetic signal generators that stand in for the paper's datasets.
//!
//! Each generator produces samples as `(channels, length)` arrays whose structure mirrors
//! what makes the original data amenable to group attention:
//!
//! * **HAR family** (WISDM / HHAR / RWHAR) — quasi-periodic limb motion: each class is a
//!   small set of base frequencies with per-channel phase offsets, harmonics, a gravity
//!   offset, and sensor noise. HHAR additionally varies the effective sampling rate per
//!   sample to emulate device heterogeneity.
//! * **ECG** — a beat template (P-QRS-T-like sequence of Gaussian bumps) repeated with a
//!   class-dependent heart rate, rhythm irregularity, and per-lead projection weights.
//! * **EEG (MGH)** — a mixture of band-limited oscillations (delta/theta/alpha/beta) with
//!   slowly varying amplitude envelopes and occasional burst events across 21 channels;
//!   unlabeled, used for imputation and pretraining.

use crate::spec::{DatasetKind, DatasetSpec};
use rand::Rng;
use rita_tensor::NdArray;

use std::f32::consts::PI;

/// Flavour of HAR data, controlling class structure and rate heterogeneity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarFlavour {
    /// 18-class WISDM-like data at a fixed sampling rate.
    Wisdm,
    /// 5-class HHAR-like data with per-sample sampling-rate jitter.
    Hhar,
    /// 8-class RWHAR-like data at a fixed sampling rate.
    Rwhar,
}

impl HarFlavour {
    /// Number of classes for this flavour.
    pub fn num_classes(&self) -> usize {
        match self {
            HarFlavour::Wisdm => 18,
            HarFlavour::Hhar => 5,
            HarFlavour::Rwhar => 8,
        }
    }

    /// Whether the effective sampling rate varies per sample.
    pub fn heterogeneous(&self) -> bool {
        matches!(self, HarFlavour::Hhar)
    }
}

/// Generates one HAR-like sample of shape `(channels, length)` for class `class`.
///
/// The class determines a base frequency and harmonic mix; channels share the rhythm but
/// differ in phase and amplitude, as accelerometer axes do.
pub fn har(
    flavour: HarFlavour,
    class: usize,
    channels: usize,
    length: usize,
    rng: &mut impl Rng,
) -> NdArray {
    let classes = flavour.num_classes();
    let class = class % classes.max(1);
    // Base frequency: spread classes across [0.8, 3.5] cycles per 100 samples.
    let base_freq = 0.8 + 2.7 * (class as f32 / classes.max(2) as f32);
    // Device / subject heterogeneity.
    let rate_jitter: f32 =
        if flavour.heterogeneous() { rng.gen_range(0.7..1.3) } else { rng.gen_range(0.95..1.05) };
    let amp = 1.0 + 0.4 * ((class % 3) as f32);
    let harmonic = 0.3 + 0.1 * ((class % 4) as f32);
    let noise_std = 0.15;

    let mut data = vec![0.0f32; channels * length];
    for c in 0..channels {
        let phase: f32 = rng.gen_range(0.0..2.0 * PI) + c as f32 * PI / 3.0;
        let gravity = if c == channels - 1 { 1.0 } else { 0.0 };
        let chan_amp = amp * (1.0 - 0.2 * c as f32 / channels.max(1) as f32);
        for t in 0..length {
            let x = t as f32 / 100.0 * 2.0 * PI * base_freq * rate_jitter;
            let v = chan_amp * (x + phase).sin()
                + harmonic * chan_amp * (2.0 * x + 1.3 * phase).sin()
                + 0.1 * (4.0 * x).sin()
                + gravity
                + noise_std * sample_normal(rng);
            data[c * length + t] = v;
        }
    }
    NdArray::from_vec(data, &[channels, length]).expect("har sample shape")
}

/// Generates one ECG-like sample of shape `(channels, length)` for class `class`
/// (class ∈ 0..9 mirrors the nine rhythm/morphology abnormalities).
pub fn ecg(class: usize, channels: usize, length: usize, rng: &mut impl Rng) -> NdArray {
    let class = class % 9;
    // Heart rate in beats per 1000 samples; classes differ in rate and irregularity.
    let rate = 4.0 + class as f32 * 0.8;
    let irregularity = match class {
        1 | 4 => 0.35, // AF-like: highly irregular intervals
        7 | 8 => 0.15,
        _ => 0.04,
    };
    let widened_qrs = class == 3 || class == 6;
    let inverted_t = class == 2 || class == 5;

    // Build a single-channel rhythm first, then project to leads.
    let mut rhythm = vec![0.0f32; length];
    let beat_interval = 1000.0 / rate;
    let mut t = rng.gen_range(0.0..beat_interval);
    while (t as usize) < length {
        let centre = t;
        // P wave, QRS complex, T wave as Gaussian bumps.
        add_bump(&mut rhythm, centre - 0.16 * beat_interval, 8.0, 0.15);
        let qrs_width = if widened_qrs { 6.0 } else { 3.0 };
        add_bump(&mut rhythm, centre - 2.0, qrs_width, -0.2);
        add_bump(&mut rhythm, centre, qrs_width, 1.0 + 0.1 * class as f32);
        add_bump(&mut rhythm, centre + 2.0 + qrs_width, qrs_width, -0.15);
        let t_amp = if inverted_t { -0.3 } else { 0.3 };
        add_bump(&mut rhythm, centre + 0.25 * beat_interval, 14.0, t_amp);
        let jitter = 1.0 + irregularity * sample_normal(rng);
        t += beat_interval * jitter.max(0.3);
    }

    let mut data = vec![0.0f32; channels * length];
    for c in 0..channels {
        // Each lead sees the rhythm with its own projection weight and baseline wander.
        let weight = 0.4 + 0.6 * ((c as f32 * 0.37).sin().abs());
        let sign = if c % 5 == 4 { -1.0 } else { 1.0 };
        let wander_freq = rng.gen_range(0.2..0.6);
        let wander_phase = rng.gen_range(0.0..2.0 * PI);
        for ti in 0..length {
            let wander =
                0.05 * (ti as f32 / length as f32 * 2.0 * PI * wander_freq + wander_phase).sin();
            data[c * length + ti] = sign * weight * rhythm[ti] + wander + 0.02 * sample_normal(rng);
        }
    }
    NdArray::from_vec(data, &[channels, length]).expect("ecg sample shape")
}

/// Generates one EEG-like (MGH-style) sample of shape `(channels, length)`.
///
/// The signal is a sum of band-limited oscillations with slowly drifting envelopes plus
/// occasional high-amplitude bursts, which creates the recurring-window structure the MGH
/// imputation experiments rely on.
#[allow(clippy::needless_range_loop)] // the time index drives envelope and burst math
pub fn eeg(channels: usize, length: usize, rng: &mut impl Rng) -> NdArray {
    // Frequencies in cycles per 1000 samples: delta, theta, alpha, beta bands.
    let bands = [6.0f32, 14.0, 25.0, 60.0];
    // Shared burst events and shared band sources: EEG channels record mixtures of the
    // same underlying cortical sources, which is what makes them correlated.
    let n_bursts = length / 2500 + 1;
    let bursts: Vec<(usize, f32)> =
        (0..n_bursts).map(|_| (rng.gen_range(0..length), rng.gen_range(1.5..3.0))).collect();
    let mut sources = vec![vec![0.0f32; length]; bands.len()];
    for (bi, &f) in bands.iter().enumerate() {
        let phase: f32 = rng.gen_range(0.0..2.0 * PI);
        let mut amp: f32 = rng.gen_range(0.4..1.0);
        for t in 0..length {
            // Slow random walk of the band envelope produces non-stationarity.
            if t % 500 == 0 && t > 0 {
                amp = (amp + 0.1 * sample_normal(rng)).clamp(0.05, 1.5);
            }
            let x = t as f32 / 1000.0 * 2.0 * PI;
            let mut v = amp * (f * x + phase).sin();
            // Burst events: localised high-amplitude spindles shared across channels.
            for &(centre, burst_amp) in &bursts {
                let d = (t as f32 - centre as f32).abs();
                if d < 200.0 {
                    v += burst_amp / bands.len() as f32
                        * (-d * d / (2.0 * 60.0 * 60.0)).exp()
                        * (24.0 * x).sin();
                }
            }
            sources[bi][t] = v;
        }
    }
    let mut data = vec![0.0f32; channels * length];
    for c in 0..channels {
        // Per-channel mixing weights over the shared sources (montage projection).
        let weights: Vec<f32> = (0..bands.len()).map(|_| rng.gen_range(0.3..1.0)).collect();
        let scale = 0.5 + 0.5 * ((c as f32 * 0.7).cos().abs());
        for t in 0..length {
            let mut v = 0.0;
            for (bi, src) in sources.iter().enumerate() {
                v += weights[bi] * src[t];
            }
            data[c * length + t] = scale * (v + 0.1 * sample_normal(rng));
        }
    }
    NdArray::from_vec(data, &[channels, length]).expect("eeg sample shape")
}

/// Generates one sample for `spec`, choosing the right generator family. For labeled
/// datasets the label must be provided; unlabeled datasets ignore it.
///
/// Variable-length specs ([`DatasetSpec::is_variable_length`]) draw the sample length
/// uniformly from the spec's length buckets, emitting the mixed-length workloads of the
/// paper's Fig. 4 varying-length experiment.
pub fn generate_sample(spec: &DatasetSpec, class: usize, rng: &mut impl Rng) -> NdArray {
    let length = spec.sample_length(rng);
    generate_sample_of_length(spec, class, length, rng)
}

/// Generates one sample for `spec` with an explicit `length` (overriding the spec's).
pub fn generate_sample_of_length(
    spec: &DatasetSpec,
    class: usize,
    length: usize,
    rng: &mut impl Rng,
) -> NdArray {
    match spec.kind {
        DatasetKind::Wisdm | DatasetKind::WisdmUni => {
            har(HarFlavour::Wisdm, class, spec.channels, length, rng)
        }
        DatasetKind::Hhar | DatasetKind::HharUni => {
            har(HarFlavour::Hhar, class, spec.channels, length, rng)
        }
        DatasetKind::Rwhar | DatasetKind::RwharUni => {
            har(HarFlavour::Rwhar, class, spec.channels, length, rng)
        }
        DatasetKind::Ecg => ecg(class, spec.channels, length, rng),
        DatasetKind::Mgh => eeg(spec.channels, length, rng),
    }
}

fn add_bump(signal: &mut [f32], centre: f32, width: f32, amp: f32) {
    let lo = (centre - 4.0 * width).max(0.0) as usize;
    let hi = ((centre + 4.0 * width) as usize).min(signal.len().saturating_sub(1));
    for (t, s) in signal.iter_mut().enumerate().take(hi + 1).skip(lo) {
        let d = t as f32 - centre;
        *s += amp * (-d * d / (2.0 * width * width)).exp();
    }
}

/// One standard-normal sample via Box–Muller (keeps the crate free of extra rand features).
fn sample_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn har_sample_shape_and_determinism() {
        let a = har(HarFlavour::Wisdm, 3, 3, 200, &mut rng(1));
        assert_eq!(a.shape(), &[3, 200]);
        let b = har(HarFlavour::Wisdm, 3, 3, 200, &mut rng(1));
        assert_eq!(a, b);
        let c = har(HarFlavour::Wisdm, 3, 3, 200, &mut rng(2));
        assert_ne!(a, c);
        assert!(!a.has_non_finite());
    }

    #[test]
    fn har_classes_are_distinguishable_in_frequency() {
        // Zero crossings of the dominant channel should increase with class index,
        // since base frequency grows with class.
        let count_crossings = |a: &NdArray| {
            let row = &a.as_slice()[..200];
            row.windows(2).filter(|w| (w[0] - 1.0) * (w[1] - 1.0) < 0.0).count()
        };
        let lo: usize =
            (0..5).map(|s| count_crossings(&har(HarFlavour::Rwhar, 0, 1, 200, &mut rng(s)))).sum();
        let hi: usize =
            (0..5).map(|s| count_crossings(&har(HarFlavour::Rwhar, 7, 1, 200, &mut rng(s)))).sum();
        assert!(hi > lo, "crossings hi={hi} lo={lo}");
    }

    #[test]
    fn hhar_flavour_varies_rate_more_than_wisdm() {
        assert!(HarFlavour::Hhar.heterogeneous());
        assert!(!HarFlavour::Rwhar.heterogeneous());
        assert_eq!(HarFlavour::Wisdm.num_classes(), 18);
        assert_eq!(HarFlavour::Hhar.num_classes(), 5);
        assert_eq!(HarFlavour::Rwhar.num_classes(), 8);
    }

    #[test]
    fn ecg_sample_is_periodic_and_bounded() {
        let a = ecg(0, 12, 2000, &mut rng(5));
        assert_eq!(a.shape(), &[12, 2000]);
        assert!(!a.has_non_finite());
        assert!(a.max_all() < 10.0 && a.min_all() > -10.0);
        // The QRS peaks should make the max clearly larger than the mean.
        assert!(a.max_all() > a.mean_all() + 0.3);
    }

    #[test]
    fn ecg_classes_differ_in_beat_rate() {
        // Higher class index → higher heart rate → more large peaks per window.
        // Count beats as rising threshold crossings with a refractory window, so noise
        // jitter on a QRS flank cannot register the same beat several times.
        let count_peaks = |a: &NdArray| {
            let row = &a.as_slice()[..2000];
            let thresh = 0.4 * row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut beats = 0usize;
            let mut last_beat: isize = -40;
            for (i, w) in row.windows(2).enumerate() {
                if w[0] <= thresh && w[1] > thresh && i as isize - last_beat >= 40 {
                    beats += 1;
                    last_beat = i as isize;
                }
            }
            beats
        };
        let slow = count_peaks(&ecg(0, 1, 2000, &mut rng(7)));
        let fast = count_peaks(&ecg(8, 1, 2000, &mut rng(7)));
        assert!(fast > slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn eeg_sample_shape_and_channel_correlation() {
        let a = eeg(21, 4000, &mut rng(9));
        assert_eq!(a.shape(), &[21, 4000]);
        assert!(!a.has_non_finite());
        // Channels share burst events, so average absolute channel correlation with
        // channel 0 should be non-trivial.
        let c0: Vec<f32> = a.as_slice()[..4000].to_vec();
        let c1: Vec<f32> = a.as_slice()[4000..8000].to_vec();
        let m0 = c0.iter().sum::<f32>() / 4000.0;
        let m1 = c1.iter().sum::<f32>() / 4000.0;
        let cov: f32 = c0.iter().zip(&c1).map(|(a, b)| (a - m0) * (b - m1)).sum::<f32>() / 4000.0;
        let s0 = (c0.iter().map(|x| (x - m0) * (x - m0)).sum::<f32>() / 4000.0).sqrt();
        let s1 = (c1.iter().map(|x| (x - m1) * (x - m1)).sum::<f32>() / 4000.0).sqrt();
        let corr = (cov / (s0 * s1)).abs();
        assert!(corr > 0.05, "corr {corr}");
    }

    #[test]
    fn generate_sample_dispatches_per_kind() {
        for kind in DatasetKind::MULTIVARIATE {
            let spec = kind.reduced_spec(1, 1, 100);
            let s = generate_sample(&spec, 0, &mut rng(3));
            assert_eq!(s.shape(), &[spec.channels, 100], "{kind:?}");
        }
        let uni = DatasetKind::WisdmUni.reduced_spec(1, 1, 120);
        assert_eq!(generate_sample(&uni, 2, &mut rng(3)).shape(), &[1, 120]);
    }

    #[test]
    fn variable_length_spec_emits_bucket_lengths() {
        let spec = DatasetKind::Hhar.reduced_spec(1, 1, 100).with_variable_length(50, 3);
        let buckets = spec.bucket_lengths();
        let mut r = rng(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let s = generate_sample(&spec, 0, &mut r);
            assert_eq!(s.shape()[0], 3);
            assert!(buckets.contains(&s.shape()[1]), "unexpected length {}", s.shape()[1]);
            seen.insert(s.shape()[1]);
        }
        assert!(seen.len() > 1, "mixed-length workload expected, got {seen:?}");
        // Explicit lengths override the spec.
        assert_eq!(generate_sample_of_length(&spec, 0, 75, &mut r).shape(), &[3, 75]);
    }
}
