//! # rita-data
//!
//! Synthetic timeseries datasets, windowing, masking and batching utilities for the RITA
//! reproduction.
//!
//! The RITA paper evaluates on five multivariate datasets (WISDM, HHAR, RWHAR, ECG, MGH
//! EEG) plus three univariate derivations. Those datasets are either large public HAR
//! corpora or hospital EEG recordings that cannot be redistributed here, so this crate
//! generates **synthetic equivalents** that match the published statistics (number of
//! channels, window length, number of classes, sampling-rate heterogeneity) and — more
//! importantly for RITA — the *structural properties* the paper's group attention
//! exploits: periodicity, recurring window shapes, and class-dependent spectral content.
//!
//! | Generator | Stands in for | Channels | Window | Classes |
//! |---|---|---|---|---|
//! | [`generators::har`] (Wisdm flavour)  | WISDM  | 3  | 200    | 18 |
//! | [`generators::har`] (Hhar flavour)   | HHAR   | 3  | 200    | 5  |
//! | [`generators::har`] (Rwhar flavour)  | RWHAR  | 3  | 200    | 8  |
//! | [`generators::ecg`]                  | ECG    | 12 | 2000   | 9  |
//! | [`generators::eeg`]                  | MGH    | 21 | 10000  | –  |
//!
//! See `DESIGN.md` at the workspace root for the substitution rationale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod dataset;
pub mod generators;
pub mod masking;
pub mod spec;

pub use dataset::{DataSplit, TimeseriesDataset};
pub use spec::{DatasetKind, DatasetSpec};
