//! Mask-and-predict (cloze) task construction, following §3 of the paper:
//! the series is scaled to be non-negative, a fraction `p` of *timestamps* is masked,
//! and the values across all channels on masked timestamps are replaced by `-1`
//! (a value impossible on normal, non-negative timestamps).

use rand::Rng;
use rita_tensor::NdArray;

/// Sentinel written into masked positions.
pub const MASK_VALUE: f32 = -1.0;

/// A masked sample ready for the cloze pretraining / imputation tasks.
#[derive(Debug, Clone)]
pub struct MaskedSample {
    /// The observed series with masked timestamps set to [`MASK_VALUE`]; shape `(c, l)`.
    pub observed: NdArray,
    /// The ground-truth (scaled, non-negative) series; shape `(c, l)`.
    pub target: NdArray,
    /// 1.0 at masked positions, 0.0 elsewhere; shape `(c, l)`.
    pub mask: NdArray,
}

/// Scales a series to be non-negative by subtracting its minimum (per sample), as the
/// paper requires before masking.
pub fn scale_non_negative(sample: &NdArray) -> NdArray {
    let min = sample.min_all();
    sample.add_scalar(-min)
}

/// Masks a fraction `p` of timestamps of a `(channels, length)` sample.
pub fn mask_sample(sample: &NdArray, p: f32, rng: &mut impl Rng) -> MaskedSample {
    assert_eq!(sample.ndim(), 2, "mask_sample expects (channels, length)");
    assert!((0.0..=1.0).contains(&p), "mask rate must be in [0,1]");
    let channels = sample.shape()[0];
    let length = sample.shape()[1];
    let target = scale_non_negative(sample);
    let mut observed = target.clone();
    let mut mask = NdArray::zeros(&[channels, length]);
    for t in 0..length {
        if rng.gen::<f32>() < p {
            for c in 0..channels {
                observed.set(&[c, t], MASK_VALUE).expect("mask set");
                mask.set(&[c, t], 1.0).expect("mask set");
            }
        }
    }
    MaskedSample { observed, target, mask }
}

/// Masks the *suffix* of the series after `observed_len` timestamps — the forecasting
/// task of Appendix A.7.3, where all "missing" values are at the end.
pub fn mask_suffix(sample: &NdArray, observed_len: usize) -> MaskedSample {
    assert_eq!(sample.ndim(), 2, "mask_suffix expects (channels, length)");
    let channels = sample.shape()[0];
    let length = sample.shape()[1];
    assert!(observed_len <= length, "observed_len {observed_len} exceeds length {length}");
    let target = scale_non_negative(sample);
    let mut observed = target.clone();
    let mut mask = NdArray::zeros(&[channels, length]);
    for t in observed_len..length {
        for c in 0..channels {
            observed.set(&[c, t], MASK_VALUE).expect("mask set");
            mask.set(&[c, t], 1.0).expect("mask set");
        }
    }
    MaskedSample { observed, target, mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn scaling_makes_series_non_negative() {
        let s = NdArray::from_vec(vec![-2.0, 0.0, 3.0, -1.0], &[2, 2]).unwrap();
        let scaled = scale_non_negative(&s);
        assert!(scaled.min_all() >= 0.0);
        assert_eq!(scaled.min_all(), 0.0);
        assert_eq!(scaled.max_all(), 5.0);
    }

    #[test]
    fn mask_rate_is_respected_and_spans_all_channels() {
        let s = NdArray::ones(&[3, 1000]);
        let m = mask_sample(&s, 0.2, &mut rng(1));
        let rate = m.mask.sum_all() / (3.0 * 1000.0);
        assert!((rate - 0.2).abs() < 0.05, "rate {rate}");
        // Masking is per-timestamp: for any t, all channels agree.
        for t in 0..1000 {
            let a = m.mask.get(&[0, t]).unwrap();
            for c in 1..3 {
                assert_eq!(m.mask.get(&[c, t]).unwrap(), a);
            }
        }
        // Masked entries carry the sentinel; unmasked carry the target.
        for t in 0..1000 {
            for c in 0..3 {
                let is_masked = m.mask.get(&[c, t]).unwrap() == 1.0;
                let o = m.observed.get(&[c, t]).unwrap();
                if is_masked {
                    assert_eq!(o, MASK_VALUE);
                } else {
                    assert_eq!(o, m.target.get(&[c, t]).unwrap());
                }
            }
        }
    }

    #[test]
    fn zero_and_full_mask_rates() {
        let s = NdArray::ones(&[2, 50]);
        let none = mask_sample(&s, 0.0, &mut rng(2));
        assert_eq!(none.mask.sum_all(), 0.0);
        let all = mask_sample(&s, 1.0, &mut rng(2));
        assert_eq!(all.mask.sum_all(), 100.0);
        assert!(all.observed.as_slice().iter().all(|&v| v == MASK_VALUE));
    }

    #[test]
    fn sentinel_is_impossible_after_scaling() {
        let mut r = rng(3);
        let s = NdArray::randn(&[2, 100], 5.0, &mut r);
        let m = mask_sample(&s, 0.3, &mut r);
        // After scaling, every target value is >= 0, so -1 never collides with real data.
        assert!(m.target.min_all() >= 0.0);
    }

    #[test]
    fn suffix_masking_for_forecasting() {
        let s = NdArray::ones(&[2, 10]);
        let m = mask_suffix(&s, 7);
        assert_eq!(m.mask.sum_all(), 2.0 * 3.0);
        for t in 0..7 {
            assert_eq!(m.mask.get(&[0, t]).unwrap(), 0.0);
        }
        for t in 7..10 {
            assert_eq!(m.observed.get(&[1, t]).unwrap(), MASK_VALUE);
        }
    }
}
