//! Mask-and-predict (cloze) task construction, following §3 of the paper:
//! the series is scaled to be non-negative, a fraction `p` of *timestamps* is masked,
//! and the values across all channels on masked timestamps are replaced by `-1`
//! (a value impossible on normal, non-negative timestamps).

use rand::Rng;
use rita_tensor::NdArray;

/// Sentinel written into masked positions.
pub const MASK_VALUE: f32 = -1.0;

/// A masked sample ready for the cloze pretraining / imputation tasks.
#[derive(Debug, Clone)]
pub struct MaskedSample {
    /// The observed series with masked timestamps set to [`MASK_VALUE`]; shape `(c, l)`.
    pub observed: NdArray,
    /// The ground-truth scaled series; shape `(c, l)`. Non-negative at every *observed*
    /// position; for [`mask_suffix`] the masked horizon may dip below zero, because the
    /// shift uses the observed-prefix minimum only (anything else would leak the future
    /// into the model input). Masked targets are never fed to the model.
    pub target: NdArray,
    /// 1.0 at masked positions, 0.0 elsewhere; shape `(c, l)`.
    pub mask: NdArray,
}

/// Scales a series to be non-negative by subtracting its minimum (per sample), as the
/// paper requires before masking.
pub fn scale_non_negative(sample: &NdArray) -> NdArray {
    let min = sample.min_all();
    sample.add_scalar(-min)
}

/// Masks a fraction `p` of timestamps of a `(channels, length)` sample.
pub fn mask_sample(sample: &NdArray, p: f32, rng: &mut impl Rng) -> MaskedSample {
    assert_eq!(sample.ndim(), 2, "mask_sample expects (channels, length)");
    assert!((0.0..=1.0).contains(&p), "mask rate must be in [0,1]");
    let channels = sample.shape()[0];
    let length = sample.shape()[1];
    let target = scale_non_negative(sample);
    let mut observed = target.clone();
    let mut mask = NdArray::zeros(&[channels, length]);
    for t in 0..length {
        if rng.gen::<f32>() < p {
            for c in 0..channels {
                observed.set(&[c, t], MASK_VALUE).expect("mask set");
                mask.set(&[c, t], 1.0).expect("mask set");
            }
        }
    }
    MaskedSample { observed, target, mask }
}

/// Masks the *suffix* of the series after `observed_len` timestamps — the forecasting
/// task of Appendix A.7.3, where all "missing" values are at the end.
///
/// The non-negativity scaling uses the minimum of the **observed prefix only**: scaling by
/// the full-series minimum would leak future information (a deep minimum hidden in the
/// forecast horizon shifts the observed prefix) into every forecasting metric. As a
/// consequence, `target` values inside the horizon may be negative — they are never fed to
/// the model, only compared against its reconstruction.
pub fn mask_suffix(sample: &NdArray, observed_len: usize) -> MaskedSample {
    assert_eq!(sample.ndim(), 2, "mask_suffix expects (channels, length)");
    let channels = sample.shape()[0];
    let length = sample.shape()[1];
    assert!(observed_len <= length, "observed_len {observed_len} exceeds length {length}");
    let prefix_min = if observed_len > 0 {
        sample.slice_axis(1, 0, observed_len).expect("prefix slice").min_all()
    } else {
        // Nothing is observed, so nothing can leak; scale by the full series.
        sample.min_all()
    };
    let target = sample.add_scalar(-prefix_min);
    let mut observed = target.clone();
    let mut mask = NdArray::zeros(&[channels, length]);
    for t in observed_len..length {
        for c in 0..channels {
            observed.set(&[c, t], MASK_VALUE).expect("mask set");
            mask.set(&[c, t], 1.0).expect("mask set");
        }
    }
    MaskedSample { observed, target, mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_tensor::SeedableRng64;

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    #[test]
    fn scaling_makes_series_non_negative() {
        let s = NdArray::from_vec(vec![-2.0, 0.0, 3.0, -1.0], &[2, 2]).unwrap();
        let scaled = scale_non_negative(&s);
        assert!(scaled.min_all() >= 0.0);
        assert_eq!(scaled.min_all(), 0.0);
        assert_eq!(scaled.max_all(), 5.0);
    }

    #[test]
    fn mask_rate_is_respected_and_spans_all_channels() {
        let s = NdArray::ones(&[3, 1000]);
        let m = mask_sample(&s, 0.2, &mut rng(1));
        let rate = m.mask.sum_all() / (3.0 * 1000.0);
        assert!((rate - 0.2).abs() < 0.05, "rate {rate}");
        // Masking is per-timestamp: for any t, all channels agree.
        for t in 0..1000 {
            let a = m.mask.get(&[0, t]).unwrap();
            for c in 1..3 {
                assert_eq!(m.mask.get(&[c, t]).unwrap(), a);
            }
        }
        // Masked entries carry the sentinel; unmasked carry the target.
        for t in 0..1000 {
            for c in 0..3 {
                let is_masked = m.mask.get(&[c, t]).unwrap() == 1.0;
                let o = m.observed.get(&[c, t]).unwrap();
                if is_masked {
                    assert_eq!(o, MASK_VALUE);
                } else {
                    assert_eq!(o, m.target.get(&[c, t]).unwrap());
                }
            }
        }
    }

    #[test]
    fn zero_and_full_mask_rates() {
        let s = NdArray::ones(&[2, 50]);
        let none = mask_sample(&s, 0.0, &mut rng(2));
        assert_eq!(none.mask.sum_all(), 0.0);
        let all = mask_sample(&s, 1.0, &mut rng(2));
        assert_eq!(all.mask.sum_all(), 100.0);
        assert!(all.observed.as_slice().iter().all(|&v| v == MASK_VALUE));
    }

    #[test]
    fn sentinel_is_impossible_after_scaling() {
        let mut r = rng(3);
        let s = NdArray::randn(&[2, 100], 5.0, &mut r);
        let m = mask_sample(&s, 0.3, &mut r);
        // After scaling, every target value is >= 0, so -1 never collides with real data.
        assert!(m.target.min_all() >= 0.0);
    }

    #[test]
    fn suffix_masking_does_not_leak_the_horizon_minimum() {
        // Two series identical on the observed prefix; `b` hides the global minimum in the
        // horizon. The model input (observed prefix) must not depend on hidden values, so
        // both must produce bit-identical observed arrays — under full-series scaling the
        // horizon minimum would shift b's prefix (the future leak this test pins down).
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 6]).unwrap();
        let b = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, -10.0, 6.0], &[1, 6]).unwrap();
        let ma = mask_suffix(&a, 4);
        let mb = mask_suffix(&b, 4);
        assert_eq!(ma.observed, mb.observed, "observed prefix leaked horizon information");
        // The prefix is exactly what scaling the prefix alone produces.
        let prefix = b.slice_axis(1, 0, 4).unwrap();
        let scaled_prefix = scale_non_negative(&prefix);
        for t in 0..4 {
            assert_eq!(mb.observed.get(&[0, t]).unwrap(), scaled_prefix.get(&[0, t]).unwrap());
            assert_eq!(mb.target.get(&[0, t]).unwrap(), scaled_prefix.get(&[0, t]).unwrap());
        }
        // Horizon targets keep the prefix scale (and may legitimately be negative).
        assert_eq!(mb.target.get(&[0, 4]).unwrap(), -11.0);
        assert_eq!(mb.target.get(&[0, 5]).unwrap(), 5.0);
    }

    #[test]
    fn suffix_masking_for_forecasting() {
        let s = NdArray::ones(&[2, 10]);
        let m = mask_suffix(&s, 7);
        assert_eq!(m.mask.sum_all(), 2.0 * 3.0);
        for t in 0..7 {
            assert_eq!(m.mask.get(&[0, t]).unwrap(), 0.0);
        }
        for t in 7..10 {
            assert_eq!(m.observed.get(&[1, t]).unwrap(), MASK_VALUE);
        }
    }
}
