//! Dataset specifications matching Table 1 of the RITA paper.

use rand::Rng;

/// The eight datasets used in the paper's evaluation (five multivariate, three
/// univariate derivations marked with `*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// WISDM: smartphone accelerometer, 18 daily activities, 20 Hz.
    Wisdm,
    /// HHAR: heterogeneous smartphones, 5 activities, varying sampling rate.
    Hhar,
    /// RWHAR: RealWorld HAR, 8 locomotion activities, 50 Hz.
    Rwhar,
    /// ECG: 12-lead recordings, 9 arrhythmia classes, 500 Hz.
    Ecg,
    /// MGH: 21-channel EEG from ICU monitoring, unlabeled, 200 Hz, very long series.
    Mgh,
    /// Univariate channel picked from WISDM (`WISDM*` in the paper).
    WisdmUni,
    /// Univariate channel picked from HHAR (`HHAR*`).
    HharUni,
    /// Univariate channel picked from RWHAR (`RWHAR*`).
    RwharUni,
}

impl DatasetKind {
    /// All multivariate datasets in paper order.
    pub const MULTIVARIATE: [DatasetKind; 5] = [
        DatasetKind::Wisdm,
        DatasetKind::Hhar,
        DatasetKind::Rwhar,
        DatasetKind::Ecg,
        DatasetKind::Mgh,
    ];

    /// The three univariate derivations used in the GRAIL comparison (Fig. 5).
    pub const UNIVARIATE: [DatasetKind; 3] =
        [DatasetKind::WisdmUni, DatasetKind::HharUni, DatasetKind::RwharUni];

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Wisdm => "WISDM",
            DatasetKind::Hhar => "HHAR",
            DatasetKind::Rwhar => "RWHAR",
            DatasetKind::Ecg => "ECG",
            DatasetKind::Mgh => "MGH",
            DatasetKind::WisdmUni => "WISDM*",
            DatasetKind::HharUni => "HHAR*",
            DatasetKind::RwharUni => "RWHAR*",
        }
    }

    /// The paper-scale specification (Table 1) for this dataset.
    pub fn paper_spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Wisdm => DatasetSpec {
                kind: *self,
                train_size: 28_280,
                valid_size: 3_112,
                length: 200,
                channels: 3,
                num_classes: 18,
                sampling_hz: 20.0,
                heterogeneous_rate: false,
                min_length: 200,
                length_buckets: 1,
            },
            DatasetKind::Hhar => DatasetSpec {
                kind: *self,
                train_size: 20_484,
                valid_size: 2_296,
                length: 200,
                channels: 3,
                num_classes: 5,
                sampling_hz: 50.0,
                heterogeneous_rate: true,
                min_length: 200,
                length_buckets: 1,
            },
            DatasetKind::Rwhar => DatasetSpec {
                kind: *self,
                train_size: 27_253,
                valid_size: 3_059,
                length: 200,
                channels: 3,
                num_classes: 8,
                sampling_hz: 50.0,
                heterogeneous_rate: false,
                min_length: 200,
                length_buckets: 1,
            },
            DatasetKind::Ecg => DatasetSpec {
                kind: *self,
                train_size: 31_091,
                valid_size: 3_551,
                length: 2_000,
                channels: 12,
                num_classes: 9,
                sampling_hz: 500.0,
                heterogeneous_rate: false,
                min_length: 2_000,
                length_buckets: 1,
            },
            DatasetKind::Mgh => DatasetSpec {
                kind: *self,
                train_size: 8_550,
                valid_size: 950,
                length: 10_000,
                channels: 21,
                num_classes: 0,
                sampling_hz: 200.0,
                heterogeneous_rate: false,
                min_length: 10_000,
                length_buckets: 1,
            },
            DatasetKind::WisdmUni => {
                DatasetSpec { channels: 1, ..DatasetKind::Wisdm.paper_spec() }.with_kind(*self)
            }
            DatasetKind::HharUni => {
                DatasetSpec { channels: 1, ..DatasetKind::Hhar.paper_spec() }.with_kind(*self)
            }
            DatasetKind::RwharUni => {
                DatasetSpec { channels: 1, ..DatasetKind::Rwhar.paper_spec() }.with_kind(*self)
            }
        }
    }

    /// A reduced-scale specification that keeps the same shape characteristics but runs
    /// on a laptop CPU in seconds. Sample counts shrink; channels, lengths and class
    /// counts follow `length_scale` only for the long datasets.
    pub fn reduced_spec(&self, train_size: usize, valid_size: usize, length: usize) -> DatasetSpec {
        let mut spec = self.paper_spec();
        spec.train_size = train_size;
        spec.valid_size = valid_size;
        spec.length = length;
        spec.min_length = length;
        spec.length_buckets = 1;
        spec
    }
}

/// Size and shape of one dataset, mirroring Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub kind: DatasetKind,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of validation samples.
    pub valid_size: usize,
    /// Window length (timestamps per sample).
    pub length: usize,
    /// Number of channels (variables).
    pub channels: usize,
    /// Number of classes (0 for the unlabeled MGH dataset).
    pub num_classes: usize,
    /// Nominal sampling rate in Hz.
    pub sampling_hz: f32,
    /// Whether the sampling rate varies across (synthetic) devices, as in HHAR.
    pub heterogeneous_rate: bool,
    /// Minimum sample length. When below [`DatasetSpec::length`], generated samples draw
    /// their lengths from [`DatasetSpec::length_buckets`] evenly spaced values in
    /// `[min_length, length]` — the paper's varying-length workload (Fig. 4).
    pub min_length: usize,
    /// Number of distinct sample lengths a variable-length spec generates (1 = fixed).
    pub length_buckets: usize,
}

impl DatasetSpec {
    fn with_kind(mut self, kind: DatasetKind) -> Self {
        self.kind = kind;
        self
    }

    /// Total number of samples (train + validation).
    pub fn total_size(&self) -> usize {
        self.train_size + self.valid_size
    }

    /// `true` for datasets with class labels.
    pub fn is_labeled(&self) -> bool {
        self.num_classes > 0
    }

    /// Switches the spec to a mixed-length workload: sample lengths are drawn uniformly
    /// from `buckets` evenly spaced values in `[min_length, self.length]`.
    pub fn with_variable_length(mut self, min_length: usize, buckets: usize) -> Self {
        assert!(min_length > 0, "min_length must be positive");
        assert!(
            min_length <= self.length,
            "min_length {min_length} exceeds the spec length {}",
            self.length
        );
        assert!(
            min_length == self.length || buckets >= 2,
            "a variable-length spec needs at least two length buckets"
        );
        assert!(
            min_length == self.length || self.length - min_length >= buckets - 1,
            "length span {}..{} is too small for {buckets} distinct buckets",
            min_length,
            self.length
        );
        self.min_length = min_length;
        self.length_buckets = buckets.max(1);
        self
    }

    /// `true` when samples are generated with more than one length.
    pub fn is_variable_length(&self) -> bool {
        self.min_length < self.length && self.length_buckets > 1
    }

    /// The distinct sample lengths this spec generates, ascending.
    pub fn bucket_lengths(&self) -> Vec<usize> {
        if !self.is_variable_length() {
            return vec![self.length];
        }
        let b = self.length_buckets;
        (0..b).map(|i| self.min_length + (self.length - self.min_length) * i / (b - 1)).collect()
    }

    /// Draws a sample length: `length` for fixed-length specs, otherwise a uniformly
    /// random bucket from [`DatasetSpec::bucket_lengths`].
    pub fn sample_length(&self, rng: &mut impl Rng) -> usize {
        if !self.is_variable_length() {
            return self.length;
        }
        let buckets = self.bucket_lengths();
        buckets[rng.gen_range(0..buckets.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_table1() {
        let w = DatasetKind::Wisdm.paper_spec();
        assert_eq!(
            (w.train_size, w.valid_size, w.length, w.channels, w.num_classes),
            (28_280, 3_112, 200, 3, 18)
        );
        let e = DatasetKind::Ecg.paper_spec();
        assert_eq!(
            (e.train_size, e.valid_size, e.length, e.channels, e.num_classes),
            (31_091, 3_551, 2_000, 12, 9)
        );
        let m = DatasetKind::Mgh.paper_spec();
        assert_eq!((m.length, m.channels, m.num_classes), (10_000, 21, 0));
        assert!(!m.is_labeled());
        assert!(w.is_labeled());
    }

    #[test]
    fn univariate_specs_have_one_channel() {
        for kind in DatasetKind::UNIVARIATE {
            let s = kind.paper_spec();
            assert_eq!(s.channels, 1, "{kind:?}");
            assert_eq!(s.kind, kind);
        }
        assert_eq!(DatasetKind::WisdmUni.paper_spec().num_classes, 18);
    }

    #[test]
    fn reduced_spec_overrides_sizes_only() {
        let r = DatasetKind::Ecg.reduced_spec(100, 20, 400);
        assert_eq!(r.train_size, 100);
        assert_eq!(r.valid_size, 20);
        assert_eq!(r.length, 400);
        assert_eq!(r.channels, 12);
        assert_eq!(r.num_classes, 9);
        assert_eq!(r.total_size(), 120);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetKind::Wisdm.name(), "WISDM");
        assert_eq!(DatasetKind::WisdmUni.name(), "WISDM*");
        assert_eq!(DatasetKind::MULTIVARIATE.len(), 5);
        assert_eq!(DatasetKind::UNIVARIATE.len(), 3);
    }

    #[test]
    fn variable_length_buckets_span_the_range() {
        let spec = DatasetKind::Hhar.reduced_spec(10, 2, 120).with_variable_length(60, 3);
        assert!(spec.is_variable_length());
        assert_eq!(spec.bucket_lengths(), vec![60, 90, 120]);
        // Fixed specs report a single bucket.
        let fixed = DatasetKind::Hhar.reduced_spec(10, 2, 120);
        assert!(!fixed.is_variable_length());
        assert_eq!(fixed.bucket_lengths(), vec![120]);
    }

    #[test]
    fn sample_length_draws_only_bucket_values() {
        use rand::SeedableRng;
        let spec = DatasetKind::Wisdm.reduced_spec(10, 2, 100).with_variable_length(40, 4);
        let buckets = spec.bucket_lengths();
        let mut rng = rita_tensor::SeedableRng64::seed_from_u64(0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let l = spec.sample_length(&mut rng);
            assert!(buckets.contains(&l), "length {l} not in buckets {buckets:?}");
            seen.insert(l);
        }
        assert!(seen.len() > 1, "variable-length spec should produce mixed lengths");
    }

    #[test]
    #[should_panic(expected = "at least two length buckets")]
    fn variable_length_rejects_single_bucket() {
        let _ = DatasetKind::Hhar.reduced_spec(10, 2, 120).with_variable_length(60, 1);
    }

    #[test]
    #[should_panic(expected = "too small for 5 distinct buckets")]
    fn variable_length_rejects_more_buckets_than_the_span_supports() {
        // Span 118..120 can hold at most 3 distinct lengths; 5 buckets would silently
        // duplicate values and skew the uniform length draw.
        let _ = DatasetKind::Hhar.reduced_spec(10, 2, 120).with_variable_length(118, 5);
    }

    #[test]
    fn bucket_lengths_are_distinct_whenever_accepted() {
        // Minimal span (buckets - 1): the evenly spaced values are exactly consecutive.
        let spec = DatasetKind::Hhar.reduced_spec(10, 2, 120).with_variable_length(117, 4);
        assert_eq!(spec.bucket_lengths(), vec![117, 118, 119, 120]);
    }

    #[test]
    fn hhar_is_heterogeneous() {
        assert!(DatasetKind::Hhar.paper_spec().heterogeneous_rate);
        assert!(!DatasetKind::Wisdm.paper_spec().heterogeneous_rate);
    }
}
