//! Deterministic runtime fault injection for the serving tier.
//!
//! PR 8's `rita_verify::mutate` proved the exactness-oracle value of injected faults
//! for *static* checking; this module applies the same discipline to the *runtime*.
//! Each injection point sits on a real failure path of the [`Server`](crate::Server):
//!
//! | point | fires as | exercises |
//! |---|---|---|
//! | `worker_panic` | `panic!` inside a worker's batch | catch-unwind isolation, the supervisor respawn path, the circuit breaker |
//! | `slow_batch` | a sleep before the batch forward | hard-deadline cancellation, brownout under queue pressure |
//! | `poison_logits` | the batch output replaced with NaN | non-finite detection, quarantine + last-good rollback |
//! | `corrupt_publish` | one byte of the checkpoint file flipped in `publish_path` | the version-2 CRC trailer, publish rejection with traffic on last-good |
//!
//! Injection is **runtime-scoped and default-off**: every hook first checks one
//! relaxed atomic, so an un-injected server pays a single load per batch. A
//! [`ChaosGuard`] from [`inject`] owns a process-wide serialization lock (chaos tests
//! cannot race each other), installs a panic hook that silences the injected panics'
//! backtraces, and disarms everything on drop. Firing is counter-based
//! (`every`/`limit` per point), so a given config produces the same fault schedule on
//! every run — the property `tests/fault_tolerance.rs` leans on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use rita_tensor::NdArray;

/// When one injection point fires: on every `every`-th visit, at most `limit` times
/// (`every == 0` disables the point; `limit == 0` means unlimited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Injection {
    /// Fire on every `every`-th visit to the point (0 = never).
    pub every: u64,
    /// Stop after this many firings (0 = no cap).
    pub limit: u64,
}

impl Injection {
    /// The disabled injection.
    pub const OFF: Injection = Injection { every: 0, limit: 0 };

    /// Fires on every `n`-th visit, forever.
    pub fn every(n: u64) -> Self {
        Self { every: n, limit: 0 }
    }

    /// Fires on the first visit only.
    pub fn once() -> Self {
        Self { every: 1, limit: 1 }
    }

    /// Fires on the first `n` visits.
    pub fn times(n: u64) -> Self {
        Self { every: 1, limit: n }
    }
}

/// Which faults to inject, one [`Injection`] schedule per point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Panic a worker mid-batch (after the batch left the queue, before its forward).
    pub worker_panic: Injection,
    /// Sleep `slow_batch_delay` before a batch's forward.
    pub slow_batch: Injection,
    /// How long a fired `slow_batch` sleeps.
    pub slow_batch_delay: Duration,
    /// Replace a batch's logits with NaN after the forward.
    pub poison_logits: Injection,
    /// Flip one byte of the checkpoint bytes read by
    /// [`ModelRegistry::publish_path`](crate::ModelRegistry::publish_path).
    pub corrupt_publish: Injection,
}

/// How often each point has fired under the current [`ChaosGuard`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Worker panics injected.
    pub worker_panics: u64,
    /// Batches slowed.
    pub slow_batches: u64,
    /// Batches poisoned.
    pub poisoned_logits: u64,
    /// Publishes corrupted.
    pub corrupted_publishes: u64,
}

/// The message injected worker panics carry; the guard's panic hook silences
/// payloads with this prefix so chaos tests do not spray backtraces.
pub const PANIC_MESSAGE: &str = "chaos: injected worker panic";

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CONFIG: Mutex<ChaosConfig> = Mutex::new(ChaosConfig {
    worker_panic: Injection::OFF,
    slow_batch: Injection::OFF,
    slow_batch_delay: Duration::ZERO,
    poison_logits: Injection::OFF,
    corrupt_publish: Injection::OFF,
});
/// Serializes chaos scopes across threads: the global config cannot race between two
/// concurrently running chaos tests in one process.
static SERIAL: Mutex<()> = Mutex::new(());

struct Point {
    calls: AtomicU64,
    fires: AtomicU64,
}

impl Point {
    const fn new() -> Self {
        Self { calls: AtomicU64::new(0), fires: AtomicU64::new(0) }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.fires.store(0, Ordering::Relaxed);
    }

    /// Counts one visit and decides whether the point fires under `inj`.
    fn fire(&self, inj: Injection) -> bool {
        if inj.every == 0 {
            return false;
        }
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if !call.is_multiple_of(inj.every) {
            return false;
        }
        if inj.limit != 0 && self.fires.load(Ordering::Relaxed) >= inj.limit {
            return false;
        }
        self.fires.fetch_add(1, Ordering::Relaxed);
        true
    }
}

static WORKER_PANIC: Point = Point::new();
static SLOW_BATCH: Point = Point::new();
static POISON_LOGITS: Point = Point::new();
static CORRUPT_PUBLISH: Point = Point::new();

/// Scoped fault injection: holds the injected [`ChaosConfig`] active until dropped.
///
/// Holding the guard also holds the process-wide chaos serialization lock — a second
/// `inject` from another thread blocks until this scope ends.
pub struct ChaosGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        // Pop our silencing hook (reinstalls the default); counters stay readable
        // through `stats()` until the next `inject`. The hook registry cannot be
        // touched from a panicking thread (it would abort the process mid-unwind,
        // exactly when a failing chaos test drops its guard) — in that case leave the
        // hook installed; it chains to the previous one and the next `inject` swaps it.
        if !std::thread::panicking() {
            drop(std::panic::take_hook());
        }
    }
}

/// Arms `config` and returns the guard that keeps it active.
///
/// Deterministic by construction: per-point counters restart at zero, so the same
/// config yields the same fault schedule on every run.
pub fn inject(config: ChaosConfig) -> ChaosGuard {
    let serial = crate::lock_mx(&SERIAL);
    for p in [&WORKER_PANIC, &SLOW_BATCH, &POISON_LOGITS, &CORRUPT_PUBLISH] {
        p.reset();
    }
    *crate::lock_mx(&CONFIG) = config;
    // Injected panics are expected control flow for the supervisor; keep them off
    // stderr. Anything else still reaches the previous hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let silenced = info.payload().downcast_ref::<&str>().is_some_and(|s| *s == PANIC_MESSAGE)
            || info.payload().downcast_ref::<String>().is_some_and(|s| s == PANIC_MESSAGE);
        if !silenced {
            prev(info);
        }
    }));
    ACTIVE.store(true, Ordering::SeqCst);
    ChaosGuard { _serial: serial }
}

/// Whether a chaos scope is currently armed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Firing counts for the current (or most recent) chaos scope.
pub fn stats() -> ChaosStats {
    ChaosStats {
        worker_panics: WORKER_PANIC.fires.load(Ordering::Relaxed),
        slow_batches: SLOW_BATCH.fires.load(Ordering::Relaxed),
        poisoned_logits: POISON_LOGITS.fires.load(Ordering::Relaxed),
        corrupted_publishes: CORRUPT_PUBLISH.fires.load(Ordering::Relaxed),
    }
}

/// Server hook: called once per closed batch, before its forward. May sleep
/// (`slow_batch`) and may panic (`worker_panic`) — in that order, so a single config
/// can exercise both.
pub(crate) fn before_batch() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let cfg = *crate::lock_mx(&CONFIG);
    if SLOW_BATCH.fire(cfg.slow_batch) {
        std::thread::sleep(cfg.slow_batch_delay);
    }
    if WORKER_PANIC.fire(cfg.worker_panic) {
        panic!("{}", PANIC_MESSAGE);
    }
}

/// Server hook: given a batch's logits, returns them poisoned (all-NaN, same shape)
/// when the point fires, unchanged otherwise.
pub(crate) fn poison_logits(logits: NdArray) -> NdArray {
    if !ACTIVE.load(Ordering::Relaxed) {
        return logits;
    }
    let cfg = *crate::lock_mx(&CONFIG);
    if !POISON_LOGITS.fire(cfg.poison_logits) {
        return logits;
    }
    let shape = logits.shape().to_vec();
    let n = shape.iter().product();
    crate::reclaim(logits);
    NdArray::from_vec(vec![f32::NAN; n], &shape).expect("poisoned shape matches element count")
}

/// Registry hook: flips one mid-file byte of the checkpoint bytes about to be parsed
/// by `publish_path` when the point fires.
pub(crate) fn corrupt_publish(bytes: &mut [u8]) {
    if !ACTIVE.load(Ordering::Relaxed) || bytes.is_empty() {
        return;
    }
    let cfg = *crate::lock_mx(&CONFIG);
    if CORRUPT_PUBLISH.fire(cfg.corrupt_publish) {
        let site = bytes.len() / 2;
        rita_verify::flip_byte(bytes, site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_capped() {
        let _guard = inject(ChaosConfig {
            worker_panic: Injection { every: 3, limit: 2 },
            ..Default::default()
        });
        let fired: Vec<bool> =
            (0..12).map(|_| WORKER_PANIC.fire(Injection { every: 3, limit: 2 })).collect();
        // Fires on visits 3 and 6, then the limit caps it.
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, false, false, false, false]
        );
        assert_eq!(stats().worker_panics, 2);
    }

    #[test]
    fn disarmed_hooks_are_inert() {
        // Hold the serialization lock with everything OFF: hooks must be no-ops.
        let _guard = inject(ChaosConfig::default());
        before_batch();
        let a = NdArray::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = poison_logits(a);
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
        let mut bytes = vec![0xAAu8; 16];
        corrupt_publish(&mut bytes);
        assert_eq!(bytes, vec![0xAAu8; 16]);
    }
}
