//! # rita-infer
//!
//! A planned-graph inference engine for RITA checkpoints: the layer that turns the
//! training stack into a *servable* system.
//!
//! Training runs through `rita-nn`'s autograd `Var` machinery; even under `no_grad`,
//! every operation allocates a graph node and every output buffer comes fresh from the
//! allocator. This crate instead **executes compiled plans**: loading a checkpoint
//! emits the static forward graph (`rita_core::graph::build_graph`), a peephole pass
//! fuses matmul+bias and unfold+projection chains, and each `(batch, length)` shape
//! bucket is compiled once into a plan — topological schedule, per-value shapes,
//! last-use positions, and an exact arena of buffer capacities that pre-sizes the
//! tensor crate's thread-local pool (`rita_tensor::pool_reserve`). The plan interpreter
//! runs raw [`NdArray`] kernels with no `Var` allocation per op and recycles each
//! activation at its planned last use, so a long-lived serving session reaches a
//! steady state where differently-shaped batches share one working set of buffers.
//!
//! ## Bit-identical by construction
//!
//! The plan interpreter calls the *same tensor kernels in the same order* as the `Var`
//! forward pass (layer norm as sum → scale → sub → square → …, attention through the
//! fused streaming kernel, grouping through `rita_core::group::group_key_blocks`) —
//! both interpret the *same graph*, so there is no hand-kept mirror to drift. Pooled
//! buffers are re-zeroed before reuse, and fusion only merges nodes whose kernel
//! sequence is unchanged. The result is bit-identical to a `no_grad` `Var` forward —
//! the property `tests/infer_parity.rs` and `tests/plan_executor.rs` pin at 0 ulp
//! across every attention variant, with the `Var` interpreter
//! (`rita_core::graph::run_var`) kept in-tree as the exactness oracle. Kernel or plan
//! failures surface as a typed [`InferError`] on the offending request instead of
//! panicking a worker thread.
//!
//! ## Serving
//!
//! [`InferSession`] wraps a loaded model with request batching: concurrent requests of
//! mixed lengths are grouped into rectangular length buckets (the same
//! `batch_indices_by_length` the training engine uses) and answered in request order.
//!
//! ```no_run
//! use rita_core::checkpoint::Checkpoint;
//! use rita_infer::InferSession;
//!
//! let ckpt = Checkpoint::load("classifier.ckpt").unwrap();
//! let session = InferSession::from_checkpoint(&ckpt).unwrap();
//! # let requests: Vec<rita_tensor::NdArray> = vec![];
//! let predictions = session.classify(&requests).unwrap();
//! ```
//!
//! On top of the session sits the multi-tenant serving core: a [`ModelRegistry`] of
//! versioned hot-swappable checkpoints and a continuous-batching [`Server`] with
//! per-tenant admission control, SLO-aware batch closing, and a [`Metrics`] layer —
//! see the [`server`](crate::Server) docs.
//!
//! ```no_run
//! use std::sync::Arc;
//! use rita_core::checkpoint::Checkpoint;
//! use rita_infer::{ModelRegistry, Server, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish(&Checkpoint::load("classifier.ckpt").unwrap()).unwrap();
//! let server = Server::start(registry, ServerConfig::default());
//! # let request: rita_tensor::NdArray = todo!();
//! let answer = server.classify("tenant-a", request).unwrap();
//! println!("{}", server.metrics().snapshot().to_json());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chaos;
mod metrics;
mod model;
mod plan;
mod registry;
mod server;
mod session;

pub use metrics::{
    FaultCounters, FaultSnapshot, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
    PoolCounters, PoolSnapshot, TenantMetrics, TenantSnapshot,
};
pub use model::{InferModel, Precision};
pub use plan::{plan_cache_stats, InferError, PlanCacheStats};
pub use registry::{ModelHandle, ModelRegistry, PublishError};
pub use rita_tensor::{pool_reset, pool_stats, PoolStats};
pub use server::{
    BreakerPolicy, BrownoutPolicy, ServeError, ServedResponse, Server, ServerConfig, ShedReason,
    TenantPolicy, Ticket,
};
pub use session::{InferSession, Prediction, RequestError, SessionConfig};

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

use rita_tensor::NdArray;

/// Offers an intermediate activation back to the thread-local buffer pool (no-op when
/// the storage is still aliased).
pub(crate) fn reclaim(a: NdArray) {
    let _ = rita_tensor::recycle(a);
}

// ------------------------------------------------------------- poison-safe lock access
//
// A panicking worker poisons every mutex it holds; `.expect("lock")` would then take
// every *other* worker down with it — the cascade PR 9 removes. Every shared structure
// guarded by these locks stays structurally valid mid-mutation (counters, maps, and
// deques whose individual operations are panic-atomic), so recovering the guard is
// sound: the supervisor restarts the crashed worker and everyone else keeps serving.

pub(crate) fn lock_mx<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn read_rw<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn write_rw<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait_cv<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn wait_cv_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner).0
}
