//! Lightweight serving metrics: lock-free counters and gauges, log-scale histograms
//! for batch sizes and latencies, and per-tenant accounting, snapshotable as JSON.
//!
//! Everything on the hot path is a relaxed atomic increment — workers and admission
//! control never contend on a lock to record a measurement. Only registering a
//! previously-unseen tenant takes a mutex, once per tenant lifetime; after that the
//! tenant's counters are reached through an `Arc` the caller keeps.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rita_tensor::PoolStats;

use crate::plan::{plan_cache_stats, PlanCacheStats};

/// Power-of-two-bucketed histogram: bucket `i` counts values in `[2^i, 2^(i+1))`
/// (bucket 0 holds 0 and 1). 48 buckets cover u64 microsecond latencies and batch
/// sizes alike; recording is one relaxed fetch-add.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 48],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize - 1).min(47);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the recorded maximum for the top bucket,
    /// otherwise the geometric midpoint of the bucket holding the `q`-th value.
    /// Resolution is the bucket width (a factor of two) — plenty for p50/p99 trend
    /// lines, and recording stays constant-time and allocation-free.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        if rank == n {
            // The top of the distribution is tracked exactly.
            return self.max.load(Ordering::Relaxed);
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                let mid = lo + (hi - lo) / 2;
                return mid.min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Per-tenant serving counters.
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests answered.
    pub served: AtomicU64,
    /// Requests shed by the token-bucket rate limit.
    pub shed_rate: AtomicU64,
    /// Requests shed because the tenant's queue slice was full.
    pub shed_depth: AtomicU64,
    /// Requests rejected by validation before reaching the queue.
    pub invalid: AtomicU64,
    /// Requests that ended in a server-side failure (worker crash, deadline blowout,
    /// model fault) after admission.
    pub failed: AtomicU64,
    /// The `retry_after` hint (µs) attached to this tenant's most recent rate-limit
    /// shed (gauge; 0 until the first such shed).
    pub retry_after_us: AtomicU64,
}

/// Point-in-time view of one tenant's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests answered.
    pub served: u64,
    /// Requests shed by the token-bucket rate limit.
    pub shed_rate: u64,
    /// Requests shed because the tenant's queue slice was full.
    pub shed_depth: u64,
    /// Requests rejected by validation.
    pub invalid: u64,
    /// Requests that ended in a server-side failure after admission.
    pub failed: u64,
    /// Most recent rate-limit `retry_after` hint (µs).
    pub retry_after_us: u64,
}

/// Fault-tolerance counters: everything the supervision tree, circuit breaker,
/// rollback path, and brownout controller record. All relaxed atomics, same
/// discipline as the rest of [`Metrics`].
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Worker threads that died to a panic and were caught by the supervisor.
    pub worker_panics: AtomicU64,
    /// Workers respawned by the supervisor.
    pub worker_respawns: AtomicU64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: AtomicU64,
    /// Requests rejected fast because the breaker was open.
    pub breaker_rejections: AtomicU64,
    /// Requests cancelled because their hard deadline passed.
    pub deadline_expired: AtomicU64,
    /// Serve-time model faults detected (executor error or non-finite logits).
    pub model_faults: AtomicU64,
    /// Automatic rollbacks to the last-good checkpoint version.
    pub rollbacks: AtomicU64,
    /// Requests answered with `ServeError::Internal` (crashed mid-batch).
    pub internal_errors: AtomicU64,
    /// Current brownout level (gauge; 0 = full latency budget).
    pub brownout_level: AtomicU64,
    /// Times the brownout level was raised.
    pub brownout_raises: AtomicU64,
    /// The most recent `retry_after` hint handed out by the breaker (µs, gauge).
    pub last_retry_after_us: AtomicU64,
}

/// Point-in-time view of [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Workers respawned.
    pub worker_respawns: u64,
    /// Breaker trips.
    pub breaker_opens: u64,
    /// Fast rejections while the breaker was open.
    pub breaker_rejections: u64,
    /// Hard-deadline cancellations.
    pub deadline_expired: u64,
    /// Serve-time model faults.
    pub model_faults: u64,
    /// Automatic last-good rollbacks.
    pub rollbacks: u64,
    /// Requests answered with `ServeError::Internal`.
    pub internal_errors: u64,
    /// Current brownout level.
    pub brownout_level: u64,
    /// Brownout raises.
    pub brownout_raises: u64,
    /// Most recent breaker `retry_after` hint (µs).
    pub last_retry_after_us: u64,
}

/// Buffer-pool counters aggregated across worker threads. The tensor crate's pool is
/// thread-local, so each worker folds its per-batch `pool_stats()` delta in here after
/// the forward — the snapshot shows the server-wide arena behaviour.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Allocations served from a thread's free list.
    pub reused: AtomicU64,
    /// Allocations that fell through to the system allocator.
    pub fresh: AtomicU64,
    /// Buffers returned to a free list at their planned last use.
    pub recycled: AtomicU64,
    /// Bytes served from free lists (requested sizes, not capacities).
    pub reused_bytes: AtomicU64,
    /// Bytes that fell through to the system allocator.
    pub fresh_bytes: AtomicU64,
}

/// Point-in-time view of the aggregated pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Allocations served from a free list.
    pub reused: u64,
    /// Allocations that fell through to the system allocator.
    pub fresh: u64,
    /// Buffers returned to a free list.
    pub recycled: u64,
    /// Bytes served from free lists.
    pub reused_bytes: u64,
    /// Bytes allocated fresh.
    pub fresh_bytes: u64,
}

impl PoolSnapshot {
    /// Fraction of allocations served from the pool (0 when nothing was allocated).
    pub fn hit_rate(&self) -> f64 {
        let total = self.reused + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// The serving tier's metrics: global counters and histograms plus per-tenant slices.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Requests shed because the global queue was full.
    pub shed_queue_full: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Batches closed before reaching their target size because the oldest queued
    /// request approached its SLO deadline.
    pub early_closes: AtomicU64,
    /// Hot-swaps observed by workers (a batch ran on a different version than the
    /// previous batch on that worker).
    pub model_swaps: AtomicU64,
    /// Distribution of executed batch sizes.
    pub batch_size: Histogram,
    /// Distribution of end-to-end request latencies, in microseconds (enqueue → reply).
    pub latency_us: Histogram,
    /// Distribution of queue wait times, in microseconds (enqueue → batch close).
    pub queue_wait_us: Histogram,
    /// Buffer-pool behaviour, aggregated over worker threads.
    pub pool: PoolCounters,
    /// Supervision, breaker, rollback, and brownout counters.
    pub faults: FaultCounters,
    tenants: Mutex<BTreeMap<String, Arc<TenantMetrics>>>,
    /// Numeric precision of every model version a worker has served a batch on, so a
    /// mixed-precision rollout (f32 current, int8 canary) is observable per version.
    versions: Mutex<BTreeMap<u64, &'static str>>,
}

impl Metrics {
    /// The counters of `tenant`, registering it on first sight. Callers hold the `Arc`
    /// so steady-state recording never touches the registry lock.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantMetrics> {
        let mut map = crate::lock_mx(&self.tenants);
        if let Some(t) = map.get(tenant) {
            return Arc::clone(t);
        }
        let t = Arc::new(TenantMetrics::default());
        map.insert(tenant.to_string(), Arc::clone(&t));
        t
    }

    /// Records that a worker served a batch on model `version` running at `precision`
    /// (idempotent; workers call it once per observed swap, not per batch).
    pub fn record_version(&self, version: u64, precision: &'static str) {
        crate::lock_mx(&self.versions).insert(version, precision);
    }

    /// Records one served request's end-to-end latency and queue wait.
    pub fn record_served(&self, tenant: &TenantMetrics, latency: Duration, queue_wait: Duration) {
        tenant.served.fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(latency.as_micros() as u64);
        self.queue_wait_us.record(queue_wait.as_micros() as u64);
    }

    /// Folds one worker's pool delta (its thread-local `pool_stats()` before vs after a
    /// batch) into the aggregated counters.
    pub fn record_pool(&self, before: &PoolStats, after: &PoolStats) {
        let add = |c: &AtomicU64, b: u64, a: u64| {
            c.fetch_add(a.saturating_sub(b), Ordering::Relaxed);
        };
        add(&self.pool.reused, before.reused, after.reused);
        add(&self.pool.fresh, before.fresh, after.fresh);
        add(&self.pool.recycled, before.recycled, after.recycled);
        add(&self.pool.reused_bytes, before.reused_bytes, after.reused_bytes);
        add(&self.pool.fresh_bytes, before.fresh_bytes, after.fresh_bytes);
    }

    /// Point-in-time snapshot of every counter, histogram, and tenant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let tenants = crate::lock_mx(&self.tenants)
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    TenantSnapshot {
                        accepted: t.accepted.load(Ordering::Relaxed),
                        served: t.served.load(Ordering::Relaxed),
                        shed_rate: t.shed_rate.load(Ordering::Relaxed),
                        shed_depth: t.shed_depth.load(Ordering::Relaxed),
                        invalid: t.invalid.load(Ordering::Relaxed),
                        failed: t.failed.load(Ordering::Relaxed),
                        retry_after_us: t.retry_after_us.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            early_closes: self.early_closes.load(Ordering::Relaxed),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
            batch_size: self.batch_size.snapshot(),
            latency_us: self.latency_us.snapshot(),
            queue_wait_us: self.queue_wait_us.snapshot(),
            pool: PoolSnapshot {
                reused: self.pool.reused.load(Ordering::Relaxed),
                fresh: self.pool.fresh.load(Ordering::Relaxed),
                recycled: self.pool.recycled.load(Ordering::Relaxed),
                reused_bytes: self.pool.reused_bytes.load(Ordering::Relaxed),
                fresh_bytes: self.pool.fresh_bytes.load(Ordering::Relaxed),
            },
            faults: FaultSnapshot {
                worker_panics: self.faults.worker_panics.load(Ordering::Relaxed),
                worker_respawns: self.faults.worker_respawns.load(Ordering::Relaxed),
                breaker_opens: self.faults.breaker_opens.load(Ordering::Relaxed),
                breaker_rejections: self.faults.breaker_rejections.load(Ordering::Relaxed),
                deadline_expired: self.faults.deadline_expired.load(Ordering::Relaxed),
                model_faults: self.faults.model_faults.load(Ordering::Relaxed),
                rollbacks: self.faults.rollbacks.load(Ordering::Relaxed),
                internal_errors: self.faults.internal_errors.load(Ordering::Relaxed),
                brownout_level: self.faults.brownout_level.load(Ordering::Relaxed),
                brownout_raises: self.faults.brownout_raises.load(Ordering::Relaxed),
                last_retry_after_us: self.faults.last_retry_after_us.load(Ordering::Relaxed),
            },
            plan_cache: plan_cache_stats(),
            tenants,
            versions: crate::lock_mx(&self.versions).iter().map(|(&v, &p)| (v, p)).collect(),
        }
    }
}

/// A consistent-enough point-in-time view of [`Metrics`] (individual loads are relaxed;
/// totals may straddle in-flight requests by ±1, which is fine for dashboards).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Requests shed because the global queue was full.
    pub shed_queue_full: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches closed early on SLO pressure.
    pub early_closes: u64,
    /// Hot-swaps observed by workers.
    pub model_swaps: u64,
    /// Executed batch sizes.
    pub batch_size: HistogramSnapshot,
    /// End-to-end request latencies (µs).
    pub latency_us: HistogramSnapshot,
    /// Queue wait times (µs).
    pub queue_wait_us: HistogramSnapshot,
    /// Aggregated buffer-pool behaviour (hits, misses, bytes) across workers.
    pub pool: PoolSnapshot,
    /// Supervision, breaker, rollback, and brownout counters.
    pub faults: FaultSnapshot,
    /// Process-wide plan-cache hit/miss counters.
    pub plan_cache: PlanCacheStats,
    /// Per-tenant counters, keyed by tenant name.
    pub tenants: Vec<(String, TenantSnapshot)>,
    /// Precision of every served model version, in version order — the observable a
    /// mixed-precision rollout watches while shifting traffic.
    pub versions: Vec<(u64, &'static str)>,
}

impl MetricsSnapshot {
    /// Total served across tenants.
    pub fn served(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.served).sum()
    }

    /// Total shed across tenants and the global queue bound.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full
            + self.tenants.iter().map(|(_, t)| t.shed_rate + t.shed_depth).sum::<u64>()
    }

    /// Serialises the snapshot as a self-contained JSON object (hand-rolled, matching
    /// the repo's dependency-free bench emitters).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let h = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                h.count, h.mean, h.p50, h.p99, h.max
            )
        };
        let _ = write!(
            s,
            "{{\"queue_depth\": {}, \"batches\": {}, \"early_closes\": {}, \
             \"model_swaps\": {}, \"shed_queue_full\": {}, \"served\": {}, \"shed\": {}, \
             \"batch_size\": {}, \"latency_us\": {}, \"queue_wait_us\": {}, \
             \"pool\": {{\"reused\": {}, \"fresh\": {}, \"recycled\": {}, \
             \"reused_bytes\": {}, \"fresh_bytes\": {}, \"hit_rate\": {:.4}}}, \
             \"faults\": {{\"worker_panics\": {}, \"worker_respawns\": {}, \
             \"breaker_opens\": {}, \"breaker_rejections\": {}, \"deadline_expired\": {}, \
             \"model_faults\": {}, \"rollbacks\": {}, \"internal_errors\": {}, \
             \"brownout_level\": {}, \"brownout_raises\": {}, \"last_retry_after_us\": {}}}, \
             \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}, \
             \"versions\": {{",
            self.queue_depth,
            self.batches,
            self.early_closes,
            self.model_swaps,
            self.shed_queue_full,
            self.served(),
            self.shed(),
            h(&self.batch_size),
            h(&self.latency_us),
            h(&self.queue_wait_us),
            self.pool.reused,
            self.pool.fresh,
            self.pool.recycled,
            self.pool.reused_bytes,
            self.pool.fresh_bytes,
            self.pool.hit_rate(),
            self.faults.worker_panics,
            self.faults.worker_respawns,
            self.faults.breaker_opens,
            self.faults.breaker_rejections,
            self.faults.deadline_expired,
            self.faults.model_faults,
            self.faults.rollbacks,
            self.faults.internal_errors,
            self.faults.brownout_level,
            self.faults.brownout_raises,
            self.faults.last_retry_after_us,
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.hit_rate(),
        );
        for (i, (version, precision)) in self.versions.iter().enumerate() {
            let comma = if i + 1 < self.versions.len() { ", " } else { "" };
            let _ = write!(s, "\"{version}\": \"{precision}\"{comma}");
        }
        s.push_str("}, \"tenants\": {");
        for (i, (name, t)) in self.tenants.iter().enumerate() {
            let comma = if i + 1 < self.tenants.len() { ", " } else { "" };
            let _ = write!(
                s,
                "\"{}\": {{\"accepted\": {}, \"served\": {}, \"shed_rate\": {}, \
                 \"shed_depth\": {}, \"invalid\": {}, \"failed\": {}, \
                 \"retry_after_us\": {}}}{}",
                escape_json(name),
                t.accepted,
                t.served,
                t.shed_rate,
                t.shed_depth,
                t.invalid,
                t.failed,
                t.retry_after_us,
                comma
            );
        }
        s.push_str("}}");
        s
    }
}

/// Escapes a string for embedding in a JSON object key or value.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        // Bucket resolution is a factor of two: the median of 1..=1000 (500) lives in
        // [256, 512); the reported midpoint must too.
        assert!((256..1024).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.25) <= 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn tenant_registry_returns_one_instance_per_name() {
        let m = Metrics::default();
        let a1 = m.tenant("a");
        let a2 = m.tenant("a");
        let b = m.tenant("b");
        a1.served.fetch_add(3, Ordering::Relaxed);
        a2.served.fetch_add(2, Ordering::Relaxed);
        b.shed_rate.fetch_add(1, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.tenants.len(), 2);
        assert_eq!(
            snap.tenants[0],
            ("a".to_string(), TenantSnapshot { served: 5, ..Default::default() })
        );
        assert_eq!(snap.served(), 5);
        assert_eq!(snap.shed(), 1);
    }

    /// The atomics-audit stress test (see DESIGN.md "Atomics audit"): every counter
    /// uses `Ordering::Relaxed`, which is sound because each is independently
    /// meaningful — so after all writers join, plain load visibility (guaranteed by
    /// the join's synchronizes-with edge) must make every final total exact, and
    /// snapshots taken *during* the run must stay within the monotone envelope
    /// (relaxed counters never run backwards from one snapshot to the next on the
    /// same thread, and a histogram's bucket total can never exceed what its `count`
    /// will eventually reach).
    #[test]
    fn relaxed_counters_are_exact_under_forced_multithreading() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let m = Arc::new(Metrics::default());
        let stop = Arc::new(AtomicU64::new(0));

        let writers: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let tenant = m.tenant(if t % 2 == 0 { "even" } else { "odd" });
                    for i in 0..PER_THREAD {
                        tenant.accepted.fetch_add(1, Ordering::Relaxed);
                        tenant.served.fetch_add(1, Ordering::Relaxed);
                        m.batches.fetch_add(1, Ordering::Relaxed);
                        m.batch_size.record(i % 32);
                    }
                })
            })
            .collect();
        // A concurrent observer: snapshots must be monotone in every counter.
        let observer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_served = 0u64;
                let mut last_batches = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let snap = m.snapshot();
                    assert!(snap.served() >= last_served, "served ran backwards");
                    assert!(snap.batches >= last_batches, "batches ran backwards");
                    assert!(
                        snap.batch_size.count <= THREADS * PER_THREAD,
                        "histogram count overshot"
                    );
                    last_served = snap.served();
                    last_batches = snap.batches;
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        observer.join().unwrap();

        let snap = m.snapshot();
        assert_eq!(snap.served(), THREADS * PER_THREAD);
        assert_eq!(snap.batches, THREADS * PER_THREAD);
        assert_eq!(snap.batch_size.count, THREADS * PER_THREAD);
        let even = snap.tenants.iter().find(|(n, _)| n == "even").unwrap();
        assert_eq!(even.1.accepted, THREADS / 2 * PER_THREAD);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let m = Metrics::default();
        m.tenant("t\"1").accepted.fetch_add(1, Ordering::Relaxed);
        m.batch_size.record(8);
        m.latency_us.record(1500);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"t\\\"1\""), "{json}");
        assert!(json.contains("\"batch_size\""), "{json}");
        assert!(json.contains("\"faults\""), "{json}");
        assert!(json.contains("\"worker_panics\""), "{json}");
        assert!(json.contains("\"retry_after_us\""), "{json}");
        // Balanced braces and quotes outside escapes.
        let depth = json.chars().fold(0i32, |d, c| d + (c == '{') as i32 - (c == '}') as i32);
        assert_eq!(depth, 0);
    }
}
