//! The tape-free model: checkpoint weights as plain [`NdArray`]s plus a forward pass
//! that mirrors the training graph op-for-op.
//!
//! Every method here calls the same tensor kernels in the same order as the `Var`-based
//! forward in `rita-nn` / `rita-core`, which is what makes the outputs bit-identical to
//! a `no_grad` evaluation of the training model. When changing the training forward,
//! change the mirror here too — `tests/infer_parity.rs` pins the equivalence at 0 ulp.

use std::collections::HashMap;

use crate::reclaim;
use rita_core::attention::{AttentionKind, GroupAttentionConfig};
use rita_core::checkpoint::{Checkpoint, CheckpointError, TaskKind};
use rita_core::group::group_key_blocks;
use rita_core::model::embedding::sinusoidal_table;
use rita_core::model::RitaConfig;
use rita_core::scheduler::MemoryModel;
use rita_tensor::{fused_attention, NdArray};

/// `LayerNorm::new`'s epsilon (fixed at construction, not checkpointed) — read from the
/// training layer's constant so the two sides cannot drift.
const LAYER_NORM_EPS: f32 = rita_nn::layers::LayerNorm::DEFAULT_EPS;

/// Linear layer weights (`y = x · W + b`).
struct LinearW {
    weight: NdArray,
    bias: Option<NdArray>,
}

impl LinearW {
    fn forward(&self, x: &NdArray) -> NdArray {
        let y = x.matmul(&self.weight).expect("linear matmul");
        match &self.bias {
            Some(b) => {
                let out = y.add(b).expect("linear bias");
                reclaim(y);
                out
            }
            None => y,
        }
    }
}

/// Layer-norm weights.
struct LayerNormW {
    gamma: NdArray,
    beta: NdArray,
    eps: f32,
}

impl LayerNormW {
    /// Mirrors `LayerNorm::forward`: mean/variance as sum → scale, the same broadcast
    /// chain, no fusing — bit-identical to the training op sequence.
    fn forward(&self, x: &NdArray) -> NdArray {
        let last = x.ndim() - 1;
        let n = x.shape()[last].max(1) as f32;
        let sum = x.sum_axis(last, true).expect("ln sum");
        let mean = sum.scale(1.0 / n);
        reclaim(sum);
        let centered = x.sub(&mean).expect("ln center");
        reclaim(mean);
        let sq = centered.map(|v| v * v);
        let var_sum = sq.sum_axis(last, true).expect("ln var");
        reclaim(sq);
        let var = var_sum.scale(1.0 / n);
        reclaim(var_sum);
        let shifted = var.add_scalar(self.eps);
        reclaim(var);
        let denom = shifted.sqrt();
        reclaim(shifted);
        let normed = centered.div(&denom).expect("ln div");
        reclaim(centered);
        reclaim(denom);
        let scaled = normed.mul(&self.gamma).expect("ln gamma");
        reclaim(normed);
        let out = scaled.add(&self.beta).expect("ln beta");
        reclaim(scaled);
        out
    }
}

/// Feed-forward block weights (`fc2(gelu(fc1(x)))`; dropout is identity at inference).
struct FeedForwardW {
    fc1: LinearW,
    fc2: LinearW,
}

impl FeedForwardW {
    fn forward(&self, x: &NdArray) -> NdArray {
        let h = self.fc1.forward(x);
        // Same constants and expression as `Var::gelu`'s tanh approximation.
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let activated = h.map(|x| 0.5 * x * (1.0 + (C * (x + A * x * x * x)).tanh()));
        reclaim(h);
        let out = self.fc2.forward(&activated);
        reclaim(activated);
        out
    }
}

/// Frozen attention weights/state for one layer.
enum AttnW {
    Vanilla,
    Group {
        /// The scheduler's persistent group-count target at checkpoint time. Inference
        /// never runs the adaptive scheduler — the schedule is frozen.
        n_groups: f32,
        min_groups: usize,
        kmeans_iters: usize,
    },
    Performer {
        omega: NdArray,
        features: usize,
    },
    Linformer {
        e_proj: NdArray,
        f_proj: NdArray,
        max_windows: usize,
    },
}

impl AttnW {
    /// Mirrors the corresponding `Attention::forward` on head-split
    /// `(batch, heads, windows, head_dim)` tensors.
    fn forward(&self, q: &NdArray, k: &NdArray, v: &NdArray) -> NdArray {
        let dh = *q.shape().last().expect("head dim") as f32;
        match self {
            AttnW::Vanilla => {
                let scale = 1.0 / dh.sqrt();
                fused_attention(q, k, v, scale, None).expect("fused attention").out
            }
            AttnW::Group { n_groups, min_groups, kmeans_iters } => {
                let shape = q.shape();
                let (b, h, n) = (shape[0], shape[1], shape[2]);
                // `GroupAttention::effective_groups`: clamp the persistent target to
                // this batch's window count.
                let groups = (n_groups.round() as usize).clamp((*min_groups).min(n), n);
                let groupings = group_key_blocks(k, groups, *kmeans_iters);
                let mut counts_flat = Vec::with_capacity(b * h * groups);
                for g in &groupings {
                    counts_flat.extend(g.counts.iter().map(|&c| c as f32));
                }
                let inv_counts = NdArray::from_vec(
                    counts_flat.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                    &[b, h, groups, 1],
                )
                .expect("inverse counts");
                let mut segments = Vec::with_capacity(b * h * n);
                for g in &groupings {
                    segments.extend_from_slice(&g.assignments);
                }
                let rep_sum = k.segment_sum(&segments, groups).expect("representatives");
                let representatives = rep_sum.mul(&inv_counts).expect("representative mean");
                reclaim(rep_sum);
                let aggregated = v.segment_sum(&segments, groups).expect("aggregated values");
                let weights = NdArray::from_vec(counts_flat, &[b, h, groups]).expect("counts");
                let scale = 1.0 / dh.sqrt();
                let out = fused_attention(q, &representatives, &aggregated, scale, Some(&weights))
                    .expect("fused group attention")
                    .out;
                reclaim(representatives);
                reclaim(aggregated);
                out
            }
            AttnW::Performer { omega, features } => {
                // Mirrors `PerformerAttention::forward` + `feature_map`.
                let scale = dh.powf(-0.25);
                let feature_map = |x: &NdArray| -> NdArray {
                    let scaled = x.scale(scale);
                    let logits = scaled.matmul(omega).expect("performer logits");
                    let sq = scaled.map(|v| v * v);
                    reclaim(scaled);
                    let sq_sum = sq.sum_axis(3, true).expect("performer sq norm");
                    reclaim(sq);
                    let sq_norm = sq_sum.scale(0.5);
                    reclaim(sq_sum);
                    let raw = logits.sub(&sq_norm).expect("performer raw");
                    reclaim(logits);
                    reclaim(sq_norm);
                    let stab = raw.max_all();
                    let shifted = raw.add_scalar(-stab);
                    reclaim(raw);
                    let expd = shifted.exp();
                    reclaim(shifted);
                    let out = expd.scale(1.0 / (*features as f32).sqrt());
                    reclaim(expd);
                    out
                };
                let phi_q = feature_map(q);
                let phi_k = feature_map(k);
                let kv = phi_k.transpose_last2().expect("kv transpose").matmul(v).expect("kv");
                let numerator = phi_q.matmul(&kv).expect("performer numerator");
                reclaim(kv);
                let phi_k_sum = phi_k.sum_axis(2, true).expect("phi_k sum");
                reclaim(phi_k);
                let dot = phi_q.matmul_nt(&phi_k_sum).expect("performer denominator");
                reclaim(phi_q);
                reclaim(phi_k_sum);
                let denominator = dot.add_scalar(1e-6);
                reclaim(dot);
                let out = numerator.div(&denominator).expect("performer output");
                reclaim(numerator);
                reclaim(denominator);
                out
            }
            AttnW::Linformer { e_proj, f_proj, max_windows } => {
                let n = k.shape()[2];
                assert!(
                    n <= *max_windows,
                    "sequence of {n} windows exceeds the Linformer projection size {max_windows}"
                );
                let e = e_proj.slice_axis(1, 0, n).expect("e slice");
                let f = f_proj.slice_axis(1, 0, n).expect("f slice");
                let k_proj = e.matmul(k).expect("linformer k");
                let v_proj = f.matmul(v).expect("linformer v");
                let scores = q.matmul_nt_scaled(&k_proj, 1.0 / dh.sqrt()).expect("scores");
                reclaim(k_proj);
                let probs = scores.softmax_last().expect("softmax");
                reclaim(scores);
                let out = probs.matmul(&v_proj).expect("linformer out");
                reclaim(probs);
                reclaim(v_proj);
                out
            }
        }
    }
}

/// One encoder layer's weights.
struct LayerW {
    q_proj: LinearW,
    k_proj: LinearW,
    v_proj: LinearW,
    out_proj: LinearW,
    attn: AttnW,
    norm1: LayerNormW,
    norm2: LayerNormW,
    ff: FeedForwardW,
    heads: usize,
}

impl LayerW {
    fn forward(&self, x: &NdArray) -> NdArray {
        let split = |y: NdArray| -> NdArray {
            // `split_heads`: (b, n, d) → (b, h, n, d/h), a pure view chain.
            let shape = y.shape().to_vec();
            let (b, n, d) = (shape[0], shape[1], shape[2]);
            y.reshape(&[b, n, self.heads, d / self.heads])
                .expect("split reshape")
                .permute(&[0, 2, 1, 3])
                .expect("split permute")
        };
        let q = split(self.q_proj.forward(x));
        let k = split(self.k_proj.forward(x));
        let v = split(self.v_proj.forward(x));
        let attended = self.attn.forward(&q, &k, &v);
        reclaim(q);
        reclaim(k);
        reclaim(v);
        // `merge_heads`: (b, h, n, dh) → (b, n, h·dh).
        let shape = attended.shape().to_vec();
        let (b, h, n, dh) = (shape[0], shape[1], shape[2], shape[3]);
        let merged = attended
            .permute(&[0, 2, 1, 3])
            .expect("merge permute")
            .reshape(&[b, n, h * dh])
            .expect("merge reshape");
        reclaim(attended);
        let projected = self.out_proj.forward(&merged);
        reclaim(merged);
        let sum1 = x.add(&projected).expect("residual 1");
        reclaim(projected);
        let x1 = self.norm1.forward(&sum1);
        reclaim(sum1);
        let ff_out = self.ff.forward(&x1);
        let sum2 = x1.add(&ff_out).expect("residual 2");
        reclaim(x1);
        reclaim(ff_out);
        let out = self.norm2.forward(&sum2);
        reclaim(sum2);
        out
    }
}

/// Input-stage weights.
struct EmbedW {
    conv: LinearW,
    cls: NdArray,
    positional: NdArray,
    window: usize,
    stride: usize,
    channels: usize,
}

impl EmbedW {
    fn forward(&self, x: &NdArray) -> NdArray {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "expected (batch, channels, length), got {shape:?}");
        assert_eq!(shape[1], self.channels, "channel mismatch: {} vs {}", shape[1], self.channels);
        assert!(
            shape[2] >= self.window,
            "series length {} is shorter than the convolution window {}; \
             pad the series or configure a smaller window",
            shape[2],
            self.window
        );
        let batch = shape[0];
        let windows = x.unfold1d(self.window, self.stride).expect("unfold");
        let embedded = self.conv.forward(&windows);
        reclaim(windows);
        let n = embedded.shape()[1];
        let d = embedded.shape()[2];
        assert!(
            n < self.positional.shape()[0],
            "series produces {n} windows, more than the positional table supports"
        );
        let cls3 = self.cls.reshape(&[1, 1, d]).expect("cls reshape");
        let cls_batch = cls3.mul(&NdArray::ones(&[batch, 1, d])).expect("cls broadcast");
        let with_cls = NdArray::concat(&[&cls_batch, &embedded], 1).expect("cls concat");
        reclaim(cls_batch);
        reclaim(embedded);
        let pos = self.positional.slice_axis(0, 0, n + 1).expect("positional slice");
        let out = with_cls.add(&pos).expect("positional add");
        reclaim(with_cls);
        out
    }
}

/// Which head the model serves.
enum HeadW {
    None,
    Classifier { head: LinearW, num_classes: usize },
    Decoder(LinearW),
}

/// A checkpoint loaded into servable form: plain tensors, no autograd, frozen scheduler
/// state. `forward` methods take `&self`, so one model can serve from several threads
/// (each thread keeps its own buffer pool).
pub struct InferModel {
    config: RitaConfig,
    task: TaskKind,
    embed: EmbedW,
    layers: Vec<LayerW>,
    head: HeadW,
}

/// Tensor lookup that records which paths were consumed.
struct TensorMap<'a> {
    by_path: HashMap<&'a str, &'a NdArray>,
    used: std::cell::RefCell<std::collections::HashSet<String>>,
}

impl<'a> TensorMap<'a> {
    fn new(tensors: &'a [(String, NdArray)]) -> Self {
        Self {
            by_path: tensors.iter().map(|(p, t)| (p.as_str(), t)).collect(),
            used: Default::default(),
        }
    }

    fn take(&self, path: &str) -> Result<NdArray, CheckpointError> {
        match self.by_path.get(path) {
            Some(t) => {
                self.used.borrow_mut().insert(path.to_string());
                Ok((*t).clone())
            }
            None => Err(CheckpointError::MissingTensor(path.to_string())),
        }
    }

    fn linear(&self, prefix: &str) -> Result<LinearW, CheckpointError> {
        let weight = self.take(&format!("{prefix}.weight"))?;
        // Bias is optional in `Linear`; every layer the backbone builds has one, but
        // tolerate its absence so the loader matches the module tree, not a guess.
        let bias_path = format!("{prefix}.bias");
        let bias = if self.by_path.contains_key(bias_path.as_str()) {
            Some(self.take(&bias_path)?)
        } else {
            None
        };
        Ok(LinearW { weight, bias })
    }

    fn layer_norm(&self, prefix: &str) -> Result<LayerNormW, CheckpointError> {
        Ok(LayerNormW {
            gamma: self.take(&format!("{prefix}.gamma"))?,
            beta: self.take(&format!("{prefix}.beta"))?,
            eps: LAYER_NORM_EPS,
        })
    }

    fn leftover(&self, tensors: &[(String, NdArray)]) -> Result<(), CheckpointError> {
        let used = self.used.borrow();
        let extra: Vec<String> =
            tensors.iter().map(|(p, _)| p.clone()).filter(|p| !used.contains(p)).collect();
        if extra.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::UnexpectedTensors(extra))
        }
    }
}

impl InferModel {
    /// Loads a checkpoint into servable form. Validates that every tensor the
    /// architecture needs is present (and none are left over) and freezes the
    /// checkpointed scheduler state.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        let config = ckpt.config;
        config.validate();
        let map = TensorMap::new(&ckpt.tensors);
        // Task checkpoints nest the backbone under "model."; bare backbones do not.
        let backbone = match ckpt.task {
            TaskKind::Backbone => String::new(),
            _ => "model.".to_string(),
        };

        let embed = EmbedW {
            conv: map.linear(&format!("{backbone}embedding.conv"))?,
            cls: map.take(&format!("{backbone}embedding.cls"))?,
            positional: sinusoidal_table(config.max_windows() + 1, config.d_model),
            window: config.window,
            stride: config.stride,
            channels: config.channels,
        };

        let mut layers = Vec::with_capacity(config.n_layers);
        for i in 0..config.n_layers {
            let p = format!("{backbone}encoder.layers.{i}");
            let attn = match config.attention {
                AttentionKind::Vanilla => AttnW::Vanilla,
                AttentionKind::Group { initial_groups, .. } => {
                    let n_groups =
                        ckpt.scheduler.get(i).copied().flatten().unwrap_or(initial_groups as f32);
                    // `build_attention` fills these from the config default beyond the
                    // checkpointed AttentionKind fields; read the same source of truth
                    // so the clusterings cannot drift from the training path.
                    let defaults = GroupAttentionConfig::default();
                    AttnW::Group {
                        n_groups,
                        min_groups: defaults.min_groups,
                        kmeans_iters: defaults.kmeans_iters,
                    }
                }
                AttentionKind::Performer { features } => {
                    AttnW::Performer { omega: map.take(&format!("{p}.attention.omega"))?, features }
                }
                AttentionKind::Linformer { .. } => AttnW::Linformer {
                    e_proj: map.take(&format!("{p}.attention.e_proj"))?,
                    f_proj: map.take(&format!("{p}.attention.f_proj"))?,
                    max_windows: config.max_windows() + 1,
                },
            };
            layers.push(LayerW {
                q_proj: map.linear(&format!("{p}.q_proj"))?,
                k_proj: map.linear(&format!("{p}.k_proj"))?,
                v_proj: map.linear(&format!("{p}.v_proj"))?,
                out_proj: map.linear(&format!("{p}.out_proj"))?,
                attn,
                norm1: map.layer_norm(&format!("{p}.norm1"))?,
                norm2: map.layer_norm(&format!("{p}.norm2"))?,
                ff: FeedForwardW {
                    fc1: map.linear(&format!("{p}.ff.fc1"))?,
                    fc2: map.linear(&format!("{p}.ff.fc2"))?,
                },
                heads: config.n_heads,
            });
        }

        let head = match ckpt.task {
            TaskKind::Backbone => HeadW::None,
            TaskKind::Classifier { num_classes } => {
                HeadW::Classifier { head: map.linear("head")?, num_classes }
            }
            TaskKind::Imputer => HeadW::Decoder(map.linear("decoder")?),
        };

        map.leftover(&ckpt.tensors)?;
        Ok(Self { config, task: ckpt.task, embed, layers, head })
    }

    /// Architecture of the loaded model.
    pub fn config(&self) -> &RitaConfig {
        &self.config
    }

    /// Which task head the checkpoint carried.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The memory-relevant shape of the loaded model — what serve-time batch budgeting
    /// (`rita_core::scheduler::latency`) charges per batch.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel {
            d_model: self.config.d_model,
            layers: self.config.n_layers,
            heads: self.config.n_heads,
            ff_hidden: self.config.ff_hidden,
            channels: self.config.channels,
            window: self.config.window,
            stride: self.config.stride,
            bytes_per_element: 4,
        }
    }

    /// Mean frozen scheduler group target across the group-attention layers — the `N`
    /// that serve-time `B = f(L, N)` predictions plug in. `None` when the checkpoint
    /// uses a non-group attention mechanism (whose cost model saturates `N` at the
    /// window count instead).
    pub fn mean_groups(&self) -> Option<f32> {
        let targets: Vec<f32> = self
            .layers
            .iter()
            .filter_map(|l| match l.attn {
                AttnW::Group { n_groups, .. } => Some(n_groups),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            None
        } else {
            Some(targets.iter().sum::<f32>() / targets.len() as f32)
        }
    }

    /// Number of classes, when the model carries a classification head.
    pub fn num_classes(&self) -> Option<usize> {
        match self.head {
            HeadW::Classifier { num_classes, .. } => Some(num_classes),
            _ => None,
        }
    }

    /// Whether the model carries a reconstruction (imputer) head.
    pub fn has_decoder(&self) -> bool {
        matches!(self.head, HeadW::Decoder(_))
    }

    /// Encodes a raw batch `(batch, channels, length)` into contextual embeddings
    /// `(batch, windows + 1, d_model)`; position 0 is the `[CLS]` token.
    pub fn encode(&self, x: &NdArray) -> NdArray {
        let mut h = self.embed.forward(x);
        for layer in &self.layers {
            let next = layer.forward(&h);
            reclaim(std::mem::replace(&mut h, next));
        }
        h
    }

    /// Class logits `(batch, classes)` for a raw batch. Panics when the checkpoint
    /// carries no classification head.
    pub fn logits(&self, x: &NdArray) -> NdArray {
        let HeadW::Classifier { head, .. } = &self.head else {
            panic!("logits() on a checkpoint without a classification head");
        };
        let h = self.encode(x);
        let shape = h.shape().to_vec();
        let cls = h
            .slice_axis(1, 0, 1)
            .expect("cls slice")
            .reshape(&[shape[0], shape[2]])
            .expect("cls reshape");
        reclaim(h);
        let out = head.forward(&cls);
        reclaim(cls);
        out
    }

    /// Reconstructs a full series from (masked) observations, `(batch, channels,
    /// length)` → same shape. Panics when the checkpoint carries no decoder head.
    pub fn reconstruct(&self, observed: &NdArray) -> NdArray {
        let HeadW::Decoder(decoder) = &self.head else {
            panic!("reconstruct() on a checkpoint without a decoder head");
        };
        let length = observed.shape()[2];
        let h = self.encode(observed);
        let n_plus_1 = h.shape()[1];
        let windows = h.slice_axis(1, 1, n_plus_1).expect("windows slice");
        reclaim(h);
        let decoded = decoder.forward(&windows);
        reclaim(windows);
        let out = decoded
            .fold1d(self.config.channels, self.config.window, self.config.stride, length)
            .expect("fold");
        reclaim(decoded);
        out
    }
}
