//! The servable model: a checkpoint bound onto the static forward graph, plus a cache
//! of compiled execution plans per `(batch, length)` shape bucket.
//!
//! There is no hand-written forward here any more. `rita_core::graph::build_graph`
//! emits the same graph the training module tree defines (node IDs are the
//! checkpoint's own tensor paths), a peephole pass folds matmul+bias and
//! unfold+projection chains into fused nodes, and `crate::plan` interprets the
//! compiled plan with raw [`NdArray`] kernels. Bit-parity with a `no_grad` training
//! forward is a property of the shared graph and kernels — pinned by
//! `tests/infer_parity.rs` and the `Var` oracle interpreter — not of a mirror kept in
//! sync by hand.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rita_core::checkpoint::{Checkpoint, CheckpointError, TaskKind, TensorRecord};
use rita_core::graph::build_graph;
use rita_core::model::embedding::sinusoidal_table;
use rita_core::model::RitaConfig;
use rita_core::scheduler::MemoryModel;
use rita_nn::graph::{AttnOp, Binding, Graph, Op};
use rita_tensor::{NdArray, QuantMatrix, MAX_QUANT_K};

use crate::plan::{note_plan_cache, CachedPlan, InferError};

/// Numeric policy of a loaded model: which kernels the plan executor dispatches and
/// how checkpoint weight records are bound.
///
/// * Under an int8 policy, eligible weight matrices — rank-2 records consumed only as
///   the weight operand of `Matmul`/`Linear`/`WindowEmbed` nodes — are bound as
///   pre-packed [`QuantMatrix`] panels and multiplied by the quantized engine
///   (`NdArray::matmul_quant`): int8 checkpoint records bind **directly**, with no
///   load-time inflation to f32, and f32 `.weight` records are quantized once at
///   load. Ineligible records (norm gains, biases, projection tables consumed as a
///   matmul *lhs*) always stay f32.
/// * Under a bf16-activations policy, attention K/V tiles are packed to bf16
///   (`rita_tensor::fused_attention_bf16_kv`), halving the score/value streaming
///   traffic; softmax statistics and accumulators stay f32.
/// * Under [`Precision::F32`], int8 records are explicitly dequantized at load — the
///   back-compat escape hatch, and the only policy that inflates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Everything f32: quantized records are dequantized at load.
    #[default]
    F32,
    /// Int8 per-channel weights through the quantized GEMM engine; f32 activations.
    Int8,
    /// F32 weights, attention K/V operands stored bf16.
    Bf16Activations,
    /// Int8 weights *and* bf16 attention K/V — the full reduced-precision path.
    Int8Bf16,
}

impl Precision {
    /// Whether eligible weights bind as packed int8 panels.
    pub fn uses_int8(self) -> bool {
        matches!(self, Precision::Int8 | Precision::Int8Bf16)
    }

    /// Whether attention K/V operands are stored bf16 during fused attention.
    pub fn kv_bf16(self) -> bool {
        matches!(self, Precision::Bf16Activations | Precision::Int8Bf16)
    }

    /// Stable lowercase label, used by metrics snapshots and bench reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
            Precision::Bf16Activations => "bf16-act",
            Precision::Int8Bf16 => "int8+bf16",
        }
    }

    /// The policy a checkpoint asks for by its own record dtypes: any int8 record
    /// means the checkpoint was quantized offline and should serve through the int8
    /// engine (binding it under `F32` would silently inflate every weight).
    pub fn for_checkpoint(ckpt: &Checkpoint) -> Self {
        let quantized = ckpt.tensors.iter().any(|(_, t)| matches!(t, TensorRecord::Int8 { .. }));
        if quantized {
            Precision::Int8
        } else {
            Precision::F32
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A checkpoint loaded into servable form: the forward graph with every parameter
/// value bound to a plain tensor, frozen scheduler state, and a cache of compiled
/// plans keyed by `(batch, length)`. Forward methods take `&self`, so one model can
/// serve from several threads (each thread keeps its own buffer pool).
pub struct InferModel {
    config: RitaConfig,
    task: TaskKind,
    graph: Graph,
    precision: Precision,
    /// Checkpoint tensor (or positional table) per graph value, `None` for activations
    /// and for weights bound quantized.
    bound: Vec<Option<NdArray>>,
    /// Pre-packed int8 weight panels per graph value under an int8 policy — the
    /// executor multiplies through these directly; no f32 copy of the weight exists.
    quant: Vec<Option<Arc<QuantMatrix>>>,
    /// Shape per bound name, for plan compilation.
    shapes_by_name: HashMap<String, Vec<usize>>,
    num_classes: Option<usize>,
    mean_groups: Option<f32>,
    plans: Mutex<HashMap<(usize, usize), Arc<CachedPlan>>>,
}

impl InferModel {
    /// Loads a checkpoint into servable form: emits the forward graph for the
    /// checkpoint's config/task, drops optional parameters the checkpoint does not
    /// carry, runs the peephole fusion pass, and binds every remaining graph value to
    /// its tensor. Validates that every tensor the graph needs is present and none are
    /// left over; tensor *shapes* are checked when the first plan for a shape bucket
    /// compiles, and a mismatch fails that request with a typed error rather than
    /// panicking a worker.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        Self::from_checkpoint_with(ckpt, Precision::for_checkpoint(ckpt))
    }

    /// [`InferModel::from_checkpoint`] with an explicit numeric policy — serve a
    /// quantized checkpoint dequantized (`Precision::F32`), quantize an f32 checkpoint
    /// at load (`Precision::Int8`), or turn on bf16 K/V storage. The default entry
    /// point picks the policy the checkpoint's own record dtypes ask for.
    pub fn from_checkpoint_with(
        ckpt: &Checkpoint,
        precision: Precision,
    ) -> Result<Self, CheckpointError> {
        let config = ckpt.config;
        config.check().map_err(CheckpointError::Corrupted)?;
        let by_path: HashMap<&str, &TensorRecord> =
            ckpt.tensors.iter().map(|(p, t)| (p.as_str(), t)).collect();

        let mut graph = build_graph(&config, ckpt.task, &ckpt.scheduler);
        graph.prune_missing_optional(&|path| by_path.contains_key(path));
        graph.peephole();

        // A value may bind quantized only if *every* consumption is the weight
        // operand of a quantized-capable op — then no kernel ever needs the f32 form.
        let mut weight_only = vec![true; graph.values.len()];
        let mut consumed = vec![false; graph.values.len()];
        for node in &graph.nodes {
            for (pos, v) in node.inputs.iter().enumerate() {
                consumed[v.0] = true;
                let weight_pos = pos == 1
                    && matches!(node.op, Op::Matmul | Op::Linear { .. } | Op::WindowEmbed { .. });
                if !weight_pos {
                    weight_only[v.0] = false;
                }
            }
        }

        let mut bound: Vec<Option<NdArray>> = vec![None; graph.values.len()];
        let mut quant: Vec<Option<Arc<QuantMatrix>>> = vec![None; graph.values.len()];
        let mut shapes_by_name = HashMap::new();
        let mut used: std::collections::HashSet<&str> = Default::default();
        for (i, info) in graph.values.iter().enumerate() {
            match &info.binding {
                Some(Binding::Param { path, optional }) => match by_path.get(path.as_str()) {
                    Some(&rec) => {
                        used.insert(path.as_str());
                        shapes_by_name.insert(path.clone(), rec.shape().to_vec());
                        let eligible = precision.uses_int8()
                            && weight_only[i]
                            && consumed[i]
                            && rec.shape().len() == 2
                            && rec.shape()[0] <= MAX_QUANT_K;
                        match rec {
                            // Offline-quantized records bind their packed panels
                            // directly — the int8 payload never inflates to f32.
                            TensorRecord::Int8 { shape, data, scales } if eligible => {
                                quant[i] = Some(Arc::new(QuantMatrix::from_quantized(
                                    data,
                                    scales.clone(),
                                    shape[0],
                                    shape[1],
                                )));
                            }
                            // Load-time quantization of a trained f32 weight under an
                            // int8 policy — same routine the offline pass uses.
                            TensorRecord::F32(t) if eligible && path.ends_with(".weight") => {
                                quant[i] = Some(Arc::new(QuantMatrix::quantize(
                                    t.as_slice(),
                                    rec.shape()[0],
                                    rec.shape()[1],
                                )));
                            }
                            rec => bound[i] = Some(rec.to_f32()),
                        }
                    }
                    // Absent optionals were pruned out of the node set above; the
                    // orphaned value just stays unbound.
                    None if *optional => {}
                    None => return Err(CheckpointError::MissingTensor(path.clone())),
                },
                Some(Binding::Positional) => {
                    let table = sinusoidal_table(config.max_windows() + 1, config.d_model);
                    shapes_by_name.insert(info.name.clone(), table.shape().to_vec());
                    bound[i] = Some(table);
                }
                _ => {}
            }
        }
        let extra: Vec<String> = ckpt
            .tensors
            .iter()
            .map(|(p, _)| p.clone())
            .filter(|p| !used.contains(p.as_str()))
            .collect();
        if !extra.is_empty() {
            return Err(CheckpointError::UnexpectedTensors(extra));
        }

        let group_targets: Vec<f32> = graph
            .nodes
            .iter()
            .filter_map(|n| match n.op {
                Op::Attention(AttnOp::Group { n_groups, .. }) => Some(n_groups),
                _ => None,
            })
            .collect();
        let mean_groups = if group_targets.is_empty() {
            None
        } else {
            Some(group_targets.iter().sum::<f32>() / group_targets.len() as f32)
        };
        let num_classes = match ckpt.task {
            TaskKind::Classifier { num_classes } => Some(num_classes),
            _ => None,
        };

        Ok(Self {
            config,
            task: ckpt.task,
            graph,
            precision,
            bound,
            quant,
            shapes_by_name,
            num_classes,
            mean_groups,
            plans: Mutex::new(HashMap::new()),
        })
    }

    /// The numeric policy this model executes under.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of weight matrices bound as packed int8 panels (0 under f32 policies).
    pub fn quantized_params(&self) -> usize {
        self.quant.iter().filter(|q| q.is_some()).count()
    }

    /// Architecture of the loaded model.
    pub fn config(&self) -> &RitaConfig {
        &self.config
    }

    /// Which task head the checkpoint carried.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The bound forward graph (after pruning and fusion) — for diagnostics and tests.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The memory-relevant shape of the loaded model — what serve-time batch budgeting
    /// (`rita_core::scheduler::latency`) charges per batch.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel {
            d_model: self.config.d_model,
            layers: self.config.n_layers,
            heads: self.config.n_heads,
            ff_hidden: self.config.ff_hidden,
            channels: self.config.channels,
            window: self.config.window,
            stride: self.config.stride,
            bytes_per_element: 4,
        }
    }

    /// Mean frozen scheduler group target across the group-attention layers — the `N`
    /// that serve-time `B = f(L, N)` predictions plug in. `None` when the checkpoint
    /// uses a non-group attention mechanism (whose cost model saturates `N` at the
    /// window count instead).
    pub fn mean_groups(&self) -> Option<f32> {
        self.mean_groups
    }

    /// Number of classes, when the model carries a classification head.
    pub fn num_classes(&self) -> Option<usize> {
        self.num_classes
    }

    /// Whether the model carries a reconstruction (imputer) head.
    pub fn has_decoder(&self) -> bool {
        matches!(self.task, TaskKind::Imputer)
    }

    /// The compiled plan for one `(batch, length)` bucket, from the cache when this
    /// shape has run before. Compilation performs the full ahead-of-time shape check,
    /// so a checkpoint with malformed tensor shapes fails here — once, with the
    /// offending node named — instead of panicking mid-kernel. Every freshly compiled
    /// plan is then audited by the independent static analyzer before it is cached:
    /// a plan the verifier rejects never reaches the executor.
    fn plan_for(&self, batch: usize, length: usize) -> Result<Arc<CachedPlan>, InferError> {
        let mut plans = crate::lock_mx(&self.plans);
        if let Some(p) = plans.get(&(batch, length)) {
            note_plan_cache(true);
            return Ok(p.clone());
        }
        note_plan_cache(false);
        let input_shape = [batch, self.config.channels, length];
        let lookup = |name: &str| self.shapes_by_name.get(name).cloned();
        let plan = self.graph.compile(&input_shape, &lookup)?;
        let report = rita_verify::verify_plan(&self.graph, &plan, &lookup);
        if report.has_errors() {
            return Err(InferError::Rejected(report));
        }
        let cached = Arc::new(CachedPlan::new(plan, true));
        plans.insert((batch, length), cached.clone());
        Ok(cached)
    }

    /// Number of compiled plans currently cached (one per `(batch, length)` bucket).
    pub fn cached_plans(&self) -> usize {
        crate::lock_mx(&self.plans).len()
    }

    fn run(&self, x: &NdArray, target: rita_nn::graph::ValueId) -> Result<NdArray, InferError> {
        let shape = x.shape();
        if shape.len() != 3 {
            return Err(InferError::Plan(rita_nn::graph::PlanError::Shape {
                node: "input".into(),
                detail: format!("expected (batch, channels, length), got {shape:?}"),
            }));
        }
        let cached = self.plan_for(shape[0], shape[2])?;
        crate::plan::execute(
            &self.graph,
            &cached,
            &self.bound,
            &self.quant,
            self.precision.kv_bf16(),
            x,
            target,
        )
    }

    /// Encodes a raw batch `(batch, channels, length)` into contextual embeddings
    /// `(batch, windows + 1, d_model)` — position 0 is the `[CLS]` token — by running
    /// a prefix of the compiled plan up to the encoder output.
    pub fn try_encode(&self, x: &NdArray) -> Result<NdArray, InferError> {
        self.run(x, self.graph.encoder_output)
    }

    /// Class logits `(batch, classes)` for a raw batch.
    pub fn try_logits(&self, x: &NdArray) -> Result<NdArray, InferError> {
        if self.num_classes.is_none() {
            return Err(InferError::MissingHead { requested: "logits" });
        }
        self.run(x, self.graph.output)
    }

    /// Reconstructs a full series from (masked) observations, `(batch, channels,
    /// length)` → same shape.
    pub fn try_reconstruct(&self, observed: &NdArray) -> Result<NdArray, InferError> {
        if !self.has_decoder() {
            return Err(InferError::MissingHead { requested: "reconstruct" });
        }
        self.run(observed, self.graph.output)
    }

    /// Panicking convenience for [`InferModel::try_encode`] — benches and calibration
    /// probes that run known-good shapes.
    pub fn encode(&self, x: &NdArray) -> NdArray {
        self.try_encode(x).unwrap_or_else(|e| panic!("encode failed: {e}"))
    }

    /// Panicking convenience for [`InferModel::try_logits`]. Panics when the
    /// checkpoint carries no classification head.
    pub fn logits(&self, x: &NdArray) -> NdArray {
        self.try_logits(x).unwrap_or_else(|e| panic!("logits failed: {e}"))
    }

    /// Panicking convenience for [`InferModel::try_reconstruct`]. Panics when the
    /// checkpoint carries no decoder head.
    pub fn reconstruct(&self, observed: &NdArray) -> NdArray {
        self.try_reconstruct(observed).unwrap_or_else(|e| panic!("reconstruct failed: {e}"))
    }
}
