//! The tape-free plan interpreter: executes a compiled forward plan with raw
//! [`NdArray`] kernels.
//!
//! Each node executor calls exactly the tensor kernels, in exactly the order, that the
//! training modules (and the `no_grad` `Var` oracle in `rita_core::graph`) call — that,
//! plus re-zeroing pooled buffers on reuse, is what makes planned execution
//! bit-identical to the training forward. The plan's ahead-of-time lifetime pass tells
//! the executor when each activation is dead, so buffers return to the thread-local
//! pool at their last use, and [`rita_tensor::pool_reserve`] pre-sizes the pool from
//! the plan's arena the first time a thread runs it.
//!
//! Kernel failures surface as a typed [`InferError`] carrying the failing node's ID
//! instead of a panic, so a malformed checkpoint fails the request that touched it —
//! not the worker thread serving it.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use rita_core::group::group_key_blocks;
use rita_nn::graph::{AttnOp, Graph, Node, Op, Plan, PlanError, ValueId};
use rita_tensor::{fused_attention, fused_attention_bf16_kv, NdArray, QuantMatrix};

use crate::reclaim;

/// Why a planned forward pass could not produce an answer.
///
/// Unlike the panics it replaces, an `InferError` is request-scoped: the session or
/// server reports it to the caller whose input (or whose checkpoint) triggered it, and
/// the worker thread lives on to serve the next batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// Compiling the plan for this shape bucket failed — a malformed checkpoint tensor,
    /// an unsupported input shape, or an inconsistent graph.
    Plan(PlanError),
    /// A kernel failed while executing a plan node.
    Node {
        /// ID of the failing node (a parameter path, e.g. `model.encoder.layers.0.norm1`).
        node: String,
        /// The kernel's error.
        detail: String,
    },
    /// The loaded checkpoint has no head for the requested operation.
    MissingHead {
        /// The operation the caller asked for.
        requested: &'static str,
    },
    /// The independent static analyzer (`rita-verify`) found error-severity defects
    /// in the compiled plan; the full report rides along.
    Rejected(rita_verify::Report),
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Plan(e) => write!(f, "plan compilation failed: {e}"),
            InferError::Node { node, detail } => write!(f, "node '{node}' failed: {detail}"),
            InferError::MissingHead { requested } => {
                write!(f, "checkpoint has no head for '{requested}'")
            }
            InferError::Rejected(report) => {
                write!(f, "plan rejected by static verification: {report}")
            }
        }
    }
}

impl std::error::Error for InferError {}

impl From<PlanError> for InferError {
    fn from(e: PlanError) -> Self {
        InferError::Plan(e)
    }
}

/// Process-wide plan-cache counters, surfaced in the server metrics snapshot.
static PLAN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(0);

/// Plan-cache hit/miss counters (process-wide, across every loaded model version).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Forwards served from an already-compiled plan.
    pub hits: u64,
    /// Forwards that had to compile a plan for a new `(batch, length)` bucket first.
    pub misses: u64,
}

impl PlanCacheStats {
    /// Fraction of forwards served from an already-compiled plan (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current process-wide plan-cache counters.
pub fn plan_cache_stats() -> PlanCacheStats {
    PlanCacheStats {
        hits: PLAN_CACHE_HITS.load(Ordering::Relaxed),
        misses: PLAN_CACHE_MISSES.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_plan_cache(hit: bool) {
    if hit {
        PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        PLAN_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// A compiled plan plus a process-unique ID used to pre-size each thread's buffer pool
/// exactly once per (thread, plan), and the static-verification stamp the executor
/// `debug_assert!`s before running.
pub(crate) struct CachedPlan {
    pub(crate) plan: Plan,
    id: u64,
    /// `true` once `rita_verify::verify_plan` passed with no error diagnostics. Every
    /// plan the cache hands to the executor must carry this stamp.
    verified: bool,
}

impl CachedPlan {
    pub(crate) fn new(plan: Plan, verified: bool) -> Self {
        Self { plan, id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed), verified }
    }
}

thread_local! {
    /// Plans whose arena this thread has already reserved pool capacity for.
    static RESERVED: RefCell<HashSet<u64>> = RefCell::new(HashSet::new());
}

fn node_err(node: &Node, e: impl std::fmt::Display) -> InferError {
    InferError::Node { node: node.id.clone(), detail: e.to_string() }
}

/// Executes `plan` over `graph` up to (and including) the node producing `target`.
///
/// `bound` holds the checkpoint tensors (and positional table) per [`ValueId`] and
/// `quant` the int8 weight panels bound in their place under an int8 policy;
/// node-produced activations live in a scratch slot vector and are recycled into the
/// thread-local pool the moment the schedule is past their last use. `kv_bf16` routes
/// fused attention through bf16 K/V storage.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    graph: &Graph,
    cached: &CachedPlan,
    bound: &[Option<NdArray>],
    quant: &[Option<Arc<QuantMatrix>>],
    kv_bf16: bool,
    x: &NdArray,
    target: ValueId,
) -> Result<NdArray, InferError> {
    debug_assert!(cached.verified, "executor handed a plan without the static-verification stamp");
    let plan = &cached.plan;
    RESERVED.with(|r| {
        if r.borrow_mut().insert(cached.id) {
            rita_tensor::pool_reserve(&plan.arena);
        }
    });
    let mut slots: Vec<Option<NdArray>> = vec![None; graph.values.len()];
    slots[graph.input.0] = Some(x.clone());
    for (pos, &ni) in plan.order.iter().enumerate() {
        let node = &graph.nodes[ni];
        let mut ins = Vec::with_capacity(node.inputs.len());
        let mut qins = Vec::with_capacity(node.inputs.len());
        for v in &node.inputs {
            if let Some(wq) = &quant[v.0] {
                // Quantized weight: the packed panels ride in `qins`; the `ins` slot
                // gets an empty placeholder no kernel may touch (a consumer that does
                // not understand `qins` fails its shape check loudly).
                qins.push(Some(wq.clone()));
                ins.push(NdArray::zeros(&[0]));
                continue;
            }
            qins.push(None);
            let arr = bound[v.0].as_ref().or(slots[v.0].as_ref()).ok_or_else(|| {
                node_err(node, format!("unbound value '{}'", graph.values[v.0].name))
            })?;
            ins.push(arr.clone());
        }
        let out = exec_node(node, &ins, &qins, plan.input_shape[2], kv_bf16)?;
        drop(ins); // release our handles so last-use recycling can reclaim storage
        slots[node.output.0] = Some(out);
        let mut seen = HashSet::new();
        for v in &node.inputs {
            if !seen.insert(v.0) || graph.values[v.0].binding.is_some() || *v == target {
                continue;
            }
            if plan.last_use[v.0] == Some(pos) {
                if let Some(dead) = slots[v.0].take() {
                    reclaim(dead);
                }
            }
        }
        if node.output == target {
            break;
        }
    }
    slots[target.0]
        .take()
        .ok_or_else(|| InferError::Plan(PlanError::MissingParam("plan target".into())))
}

/// Runs one node's kernels — the same calls, in the same order, as the training
/// forward. Intermediates internal to a node are reclaimed here; slot lifetimes are
/// the executor loop's job.
fn exec_node(
    node: &Node,
    ins: &[NdArray],
    qins: &[Option<Arc<QuantMatrix>>],
    input_len: usize,
    kv_bf16: bool,
) -> Result<NdArray, InferError> {
    // The weight operand of the three GEMM-shaped ops may arrive quantized; the
    // dispatch below is the *only* place the executor branches on precision for
    // weights — every other op sees f32 exactly as before.
    let weight_mm = |x: &NdArray, w: &NdArray, wq: &Option<Arc<QuantMatrix>>| match wq {
        Some(wq) => x.matmul_quant(wq),
        None => x.matmul(w),
    };
    match &node.op {
        Op::Matmul => weight_mm(&ins[0], &ins[1], &qins[1]).map_err(|e| node_err(node, e)),
        Op::AddBias => ins[0].add(&ins[1]).map_err(|e| node_err(node, e)),
        Op::Linear { bias } => {
            let y = weight_mm(&ins[0], &ins[1], &qins[1]).map_err(|e| node_err(node, e))?;
            if *bias {
                let out = y.add(&ins[2]).map_err(|e| node_err(node, e))?;
                reclaim(y);
                Ok(out)
            } else {
                Ok(y)
            }
        }
        Op::Unfold1d { window, stride } => {
            ins[0].unfold1d(*window, *stride).map_err(|e| node_err(node, e))
        }
        Op::WindowEmbed { window, stride, bias } => {
            let windows = ins[0].unfold1d(*window, *stride).map_err(|e| node_err(node, e))?;
            let y = weight_mm(&windows, &ins[1], &qins[1]).map_err(|e| node_err(node, e))?;
            reclaim(windows);
            if *bias {
                let out = y.add(&ins[2]).map_err(|e| node_err(node, e))?;
                reclaim(y);
                Ok(out)
            } else {
                Ok(y)
            }
        }
        Op::ClsConcatPos => {
            // Mirrors the tail of `TimeConvEmbed::forward`.
            let embedded = &ins[0];
            let shape = embedded.shape();
            let (batch, n, d) = (shape[0], shape[1], shape[2]);
            let cls3 = ins[1].reshape(&[1, 1, d]).map_err(|e| node_err(node, e))?;
            let cls_batch =
                cls3.mul(&NdArray::ones(&[batch, 1, d])).map_err(|e| node_err(node, e))?;
            let with_cls =
                NdArray::concat(&[&cls_batch, embedded], 1).map_err(|e| node_err(node, e))?;
            reclaim(cls_batch);
            let pos = ins[2].slice_axis(0, 0, n + 1).map_err(|e| node_err(node, e))?;
            let out = with_cls.add(&pos).map_err(|e| node_err(node, e))?;
            reclaim(with_cls);
            Ok(out)
        }
        Op::LayerNorm { eps } => {
            // Mirrors `LayerNorm::forward`: mean/variance as sum → scale, the same
            // broadcast chain, no fusing.
            let x = &ins[0];
            let last = x.ndim() - 1;
            let n = x.shape()[last].max(1) as f32;
            let sum = x.sum_axis(last, true).map_err(|e| node_err(node, e))?;
            let mean = sum.scale(1.0 / n);
            reclaim(sum);
            let centered = x.sub(&mean).map_err(|e| node_err(node, e))?;
            reclaim(mean);
            let sq = centered.map(|v| v * v);
            let var_sum = sq.sum_axis(last, true).map_err(|e| node_err(node, e))?;
            reclaim(sq);
            let var = var_sum.scale(1.0 / n);
            reclaim(var_sum);
            let shifted = var.add_scalar(*eps);
            reclaim(var);
            let denom = shifted.sqrt();
            reclaim(shifted);
            let normed = centered.div(&denom).map_err(|e| node_err(node, e))?;
            reclaim(centered);
            reclaim(denom);
            let scaled = normed.mul(&ins[1]).map_err(|e| node_err(node, e))?;
            reclaim(normed);
            let out = scaled.add(&ins[2]).map_err(|e| node_err(node, e))?;
            reclaim(scaled);
            Ok(out)
        }
        Op::Gelu => {
            // Same constants and expression as `Var::gelu`'s tanh approximation.
            const C: f32 = 0.797_884_6; // sqrt(2/pi)
            const A: f32 = 0.044_715;
            Ok(ins[0].map(|x| 0.5 * x * (1.0 + (C * (x + A * x * x * x)).tanh())))
        }
        Op::Add => ins[0].add(&ins[1]).map_err(|e| node_err(node, e)),
        Op::SplitHeads { heads } => {
            // `split_heads`: (b, n, d) → (b, h, n, d/h), a pure view chain.
            let shape = ins[0].shape().to_vec();
            let (b, n, d) = (shape[0], shape[1], shape[2]);
            ins[0]
                .reshape(&[b, n, *heads, d / heads])
                .map_err(|e| node_err(node, e))?
                .permute(&[0, 2, 1, 3])
                .map_err(|e| node_err(node, e))
        }
        Op::MergeHeads => {
            // `merge_heads`: (b, h, n, dh) → (b, n, h·dh).
            let shape = ins[0].shape().to_vec();
            let (b, h, n, dh) = (shape[0], shape[1], shape[2], shape[3]);
            ins[0]
                .permute(&[0, 2, 1, 3])
                .map_err(|e| node_err(node, e))?
                .reshape(&[b, n, h * dh])
                .map_err(|e| node_err(node, e))
        }
        Op::Attention(attn) => exec_attention(node, attn, ins, kv_bf16),
        Op::ClsPool => {
            let shape = ins[0].shape().to_vec();
            ins[0]
                .slice_axis(1, 0, 1)
                .map_err(|e| node_err(node, e))?
                .reshape(&[shape[0], shape[2]])
                .map_err(|e| node_err(node, e))
        }
        Op::SliceWindows => {
            let n = ins[0].shape()[1];
            ins[0].slice_axis(1, 1, n).map_err(|e| node_err(node, e))
        }
        Op::Fold1d { channels, window, stride } => {
            ins[0].fold1d(*channels, *window, *stride, input_len).map_err(|e| node_err(node, e))
        }
    }
}

/// Mirrors the corresponding `Attention::forward` on head-split
/// `(batch, heads, windows, head_dim)` tensors.
fn exec_attention(
    node: &Node,
    attn: &AttnOp,
    ins: &[NdArray],
    kv_bf16: bool,
) -> Result<NdArray, InferError> {
    let (q, k, v) = (&ins[0], &ins[1], &ins[2]);
    // Rank 4 was checked ahead of time by `attention_shape` during plan compilation.
    let dh = *q.shape().last().ok_or_else(|| node_err(node, "rank-0 query"))? as f32;
    // Under a bf16-activations policy the fused kernel stores its packed K/V panels
    // as bf16 and widens in registers; Performer/Linformer decompose into plain
    // matmuls and stay f32.
    let fused = if kv_bf16 { fused_attention_bf16_kv } else { fused_attention };
    match attn {
        AttnOp::Vanilla => {
            let scale = 1.0 / dh.sqrt();
            Ok(fused(q, k, v, scale, None).map_err(|e| node_err(node, e))?.out)
        }
        AttnOp::Group { n_groups, min_groups, kmeans_iters } => {
            let shape = q.shape();
            let (b, h, n) = (shape[0], shape[1], shape[2]);
            // `GroupAttention::effective_groups`: clamp the persistent target to this
            // batch's window count.
            let groups = (n_groups.round() as usize).clamp((*min_groups).min(n), n);
            let groupings = group_key_blocks(k, groups, *kmeans_iters);
            let mut counts_flat = Vec::with_capacity(b * h * groups);
            for g in &groupings {
                counts_flat.extend(g.counts.iter().map(|&c| c as f32));
            }
            let inv_counts = NdArray::from_vec(
                counts_flat.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                &[b, h, groups, 1],
            )
            .map_err(|e| node_err(node, e))?;
            let mut segments = Vec::with_capacity(b * h * n);
            for g in &groupings {
                segments.extend_from_slice(&g.assignments);
            }
            let rep_sum = k.segment_sum(&segments, groups).map_err(|e| node_err(node, e))?;
            let representatives = rep_sum.mul(&inv_counts).map_err(|e| node_err(node, e))?;
            reclaim(rep_sum);
            let aggregated = v.segment_sum(&segments, groups).map_err(|e| node_err(node, e))?;
            let weights =
                NdArray::from_vec(counts_flat, &[b, h, groups]).map_err(|e| node_err(node, e))?;
            let scale = 1.0 / dh.sqrt();
            let out = fused(q, &representatives, &aggregated, scale, Some(&weights))
                .map_err(|e| node_err(node, e))?
                .out;
            reclaim(representatives);
            reclaim(aggregated);
            Ok(out)
        }
        AttnOp::Performer { features } => {
            // Mirrors `PerformerAttention::forward` + `feature_map`.
            let omega = &ins[3];
            let scale = dh.powf(-0.25);
            let feature_map = |x: &NdArray| -> Result<NdArray, InferError> {
                let scaled = x.scale(scale);
                let logits = scaled.matmul(omega).map_err(|e| node_err(node, e))?;
                let sq = scaled.map(|v| v * v);
                reclaim(scaled);
                let sq_sum = sq.sum_axis(3, true).map_err(|e| node_err(node, e))?;
                reclaim(sq);
                let sq_norm = sq_sum.scale(0.5);
                reclaim(sq_sum);
                let raw = logits.sub(&sq_norm).map_err(|e| node_err(node, e))?;
                reclaim(logits);
                reclaim(sq_norm);
                let stab = raw.max_all();
                let shifted = raw.add_scalar(-stab);
                reclaim(raw);
                let expd = shifted.exp();
                reclaim(shifted);
                let out = expd.scale(1.0 / (*features as f32).sqrt());
                reclaim(expd);
                Ok(out)
            };
            let phi_q = feature_map(q)?;
            let phi_k = feature_map(k)?;
            let kv = phi_k
                .transpose_last2()
                .map_err(|e| node_err(node, e))?
                .matmul(v)
                .map_err(|e| node_err(node, e))?;
            let numerator = phi_q.matmul(&kv).map_err(|e| node_err(node, e))?;
            reclaim(kv);
            let phi_k_sum = phi_k.sum_axis(2, true).map_err(|e| node_err(node, e))?;
            reclaim(phi_k);
            let dot = phi_q.matmul_nt(&phi_k_sum).map_err(|e| node_err(node, e))?;
            reclaim(phi_q);
            reclaim(phi_k_sum);
            let denominator = dot.add_scalar(1e-6);
            reclaim(dot);
            let out = numerator.div(&denominator).map_err(|e| node_err(node, e))?;
            reclaim(numerator);
            reclaim(denominator);
            Ok(out)
        }
        AttnOp::Linformer { .. } => {
            let n = k.shape()[2];
            let (e_proj, f_proj) = (&ins[3], &ins[4]);
            let e = e_proj.slice_axis(1, 0, n).map_err(|e| node_err(node, e))?;
            let f = f_proj.slice_axis(1, 0, n).map_err(|e| node_err(node, e))?;
            let k_proj = e.matmul(k).map_err(|e| node_err(node, e))?;
            let v_proj = f.matmul(v).map_err(|e| node_err(node, e))?;
            let scores =
                q.matmul_nt_scaled(&k_proj, 1.0 / dh.sqrt()).map_err(|e| node_err(node, e))?;
            reclaim(k_proj);
            let probs = scores.softmax_last().map_err(|e| node_err(node, e))?;
            reclaim(scores);
            let out = probs.matmul(&v_proj).map_err(|e| node_err(node, e))?;
            reclaim(probs);
            reclaim(v_proj);
            Ok(out)
        }
    }
}
