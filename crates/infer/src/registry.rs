//! The model registry: versioned, atomically hot-swappable checkpoints for the
//! serving tier.
//!
//! Publishing loads a checkpoint into an [`InferModel`] (which validates every tensor
//! against the architecture before anything is exposed) and installs it as the current
//! version under a monotonically increasing version id. Workers take a
//! [`ModelHandle`] — an `Arc` snapshot of `(version, model)` — per *batch*, so a swap
//! is atomic from a request's point of view: every batch runs start-to-finish on
//! exactly one version, in-flight batches finish on the weights they started with, and
//! the old model's memory is reclaimed by the last `Arc` drop once its final batch
//! completes. The PR-1 tensor sharing makes the handle itself free: cloning the `Arc`
//! shares every weight buffer zero-copy.
//!
//! Rollback is re-activation: every published version stays archived (weights are
//! `Arc`-shared with the checkpoint they came from, so archiving is cheap), and
//! [`ModelRegistry::rollback`] or [`ModelRegistry::activate`] repoints the current
//! version without reloading anything.

use std::sync::{Arc, RwLock};

use rita_core::checkpoint::{Checkpoint, CheckpointError};
use rita_verify::Report;

use crate::model::InferModel;

/// Why a checkpoint could not be published.
#[derive(Debug)]
pub enum PublishError {
    /// Loading the checkpoint failed: missing or leftover tensors, a corrupt config,
    /// an unknown format.
    Checkpoint(CheckpointError),
    /// The checkpoint loaded, but the independent static analyzer found
    /// error-severity defects (wrong-shape tensors, illegal fusion, orphan params…).
    /// The full diagnostic report rides along; the registry's current version is
    /// untouched.
    Rejected(Report),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Checkpoint(e) => write!(f, "checkpoint failed to load: {e}"),
            PublishError::Rejected(report) => {
                write!(f, "checkpoint rejected by static verification: {report}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

impl From<CheckpointError> for PublishError {
    fn from(e: CheckpointError) -> Self {
        PublishError::Checkpoint(e)
    }
}

/// A snapshot of the registry's current model: the version id and the `Arc`-shared
/// loaded weights. Holding a handle keeps that version's weights alive even across a
/// concurrent swap — the registry never mutates a published model.
#[derive(Clone)]
pub struct ModelHandle {
    /// Monotonic version id assigned at publish time.
    pub version: u64,
    /// The loaded, servable model.
    pub model: Arc<InferModel>,
}

struct Published {
    version: u64,
    model: Arc<InferModel>,
}

struct RegistryInner {
    /// Every published version, in publish order (version ids are its indices + 1).
    history: Vec<Published>,
    /// Index into `history` of the active version, `None` before the first publish.
    current: Option<usize>,
}

/// A versioned store of servable models with atomic swap and rollback.
pub struct ModelRegistry {
    inner: RwLock<RegistryInner>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { inner: RwLock::new(RegistryInner { history: Vec::new(), current: None }) }
    }

    /// Loads `ckpt` into servable form, runs the full independent static analysis
    /// (`rita_verify`) over the checkpoint × graph pair, and only then atomically
    /// installs it as the current version, returning its version id. Any
    /// error-severity diagnostic refuses activation with the report attached
    /// ([`PublishError::Rejected`]), so a wrong-shape tensor or an illegal fusion is
    /// caught before a single request sees the new version; requests admitted before
    /// the swap finish on the version they started with.
    pub fn publish(&self, ckpt: &Checkpoint) -> Result<u64, PublishError> {
        // Load and verify outside the lock: they are the slow part, and readers
        // should keep serving the old version meanwhile.
        let model = Arc::new(InferModel::from_checkpoint(ckpt)?);
        let report = rita_verify::verify_with_graph(ckpt, model.graph());
        if report.has_errors() {
            return Err(PublishError::Rejected(report));
        }
        let mut inner = self.inner.write().expect("registry lock");
        let version = inner.history.len() as u64 + 1;
        inner.history.push(Published { version, model });
        inner.current = Some(inner.history.len() - 1);
        Ok(version)
    }

    /// The current model, if any version has been published.
    pub fn current(&self) -> Option<ModelHandle> {
        let inner = self.inner.read().expect("registry lock");
        inner.current.map(|i| ModelHandle {
            version: inner.history[i].version,
            model: Arc::clone(&inner.history[i].model),
        })
    }

    /// The active version id, if any.
    pub fn current_version(&self) -> Option<u64> {
        self.inner.read().expect("registry lock").current.map(|i| i as u64 + 1)
    }

    /// Every published version id, in publish order.
    pub fn versions(&self) -> Vec<u64> {
        self.inner.read().expect("registry lock").history.iter().map(|p| p.version).collect()
    }

    /// Re-activates an archived `version` (from a previous [`ModelRegistry::publish`]).
    /// Returns `false` when no such version exists. The swap is atomic exactly like a
    /// publish — in-flight batches finish on the version they snapshotted.
    pub fn activate(&self, version: u64) -> bool {
        let mut inner = self.inner.write().expect("registry lock");
        if version == 0 || version as usize > inner.history.len() {
            return false;
        }
        inner.current = Some(version as usize - 1);
        true
    }

    /// Steps the current version back by one (publish-order, not activation-order).
    /// Returns the version now active, or `None` when there is no earlier version to
    /// roll back to (the current version stays unchanged).
    pub fn rollback(&self) -> Option<u64> {
        let mut inner = self.inner.write().expect("registry lock");
        match inner.current {
            Some(i) if i > 0 => {
                inner.current = Some(i - 1);
                Some(i as u64)
            }
            _ => None,
        }
    }

    /// A specific archived version's handle, current or not.
    pub fn get(&self, version: u64) -> Option<ModelHandle> {
        let inner = self.inner.read().expect("registry lock");
        if version == 0 || version as usize > inner.history.len() {
            return None;
        }
        let p = &inner.history[version as usize - 1];
        Some(ModelHandle { version: p.version, model: Arc::clone(&p.model) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_core::attention::AttentionKind;
    use rita_core::model::RitaConfig;
    use rita_core::tasks::Classifier;
    use rita_tensor::SeedableRng64;

    fn checkpoint(seed: u64) -> Checkpoint {
        let mut rng = SeedableRng64::seed_from_u64(seed);
        let config = RitaConfig {
            channels: 2,
            max_len: 40,
            d_model: 16,
            n_layers: 1,
            ff_hidden: 32,
            dropout: 0.0,
            attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: false },
            ..Default::default()
        };
        Checkpoint::of_classifier(&Classifier::new(config, 3, &mut rng), None)
    }

    #[test]
    fn publish_assigns_monotonic_versions_and_swaps_current() {
        let reg = ModelRegistry::new();
        assert!(reg.current().is_none());
        assert_eq!(reg.current_version(), None);
        let v1 = reg.publish(&checkpoint(1)).unwrap();
        let v2 = reg.publish(&checkpoint(2)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.current_version(), Some(2));
        assert_eq!(reg.versions(), vec![1, 2]);
        assert_eq!(reg.current().unwrap().version, 2);
    }

    #[test]
    fn handles_outlive_swaps() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let held = reg.current().unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        // The held handle still points at version 1's weights.
        assert_eq!(held.version, 1);
        assert_eq!(held.model.num_classes(), Some(3));
        assert_eq!(reg.current().unwrap().version, 2);
    }

    #[test]
    fn rollback_and_activate_repoint_without_reloading() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        reg.publish(&checkpoint(3)).unwrap();
        assert_eq!(reg.rollback(), Some(2));
        assert_eq!(reg.current_version(), Some(2));
        assert_eq!(reg.rollback(), Some(1));
        assert_eq!(reg.rollback(), None, "nothing before version 1");
        assert_eq!(reg.current_version(), Some(1));
        assert!(reg.activate(3));
        assert_eq!(reg.current_version(), Some(3));
        assert!(!reg.activate(4));
        assert!(!reg.activate(0));
        // The re-activated handle is the *same* loaded model, not a reload.
        let v3_via_get = reg.get(3).unwrap();
        assert!(Arc::ptr_eq(&v3_via_get.model, &reg.current().unwrap().model));
    }

    /// The atomics-audit stress test for the registry's pointer moves (see DESIGN.md
    /// "Atomics audit"): the current-version swap is an index store under the
    /// `RwLock` write guard, and a handle clones `(version, Arc)` under one read
    /// guard — so every handle a reader ever observes must be *internally*
    /// consistent (its version id and its model pointer name the same published
    /// entry), no matter how many writers are flipping the active version.
    #[test]
    fn concurrent_swaps_yield_internally_consistent_handles() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        let pinned: Vec<ModelHandle> = (1..=2).map(|v| reg.get(v).unwrap()).collect();

        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        assert!(reg.activate(1 + (i + t) % 2));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let pinned = pinned.clone();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let h = reg.current().expect("published");
                        let expected = &pinned[h.version as usize - 1];
                        assert!(
                            Arc::ptr_eq(&h.model, &expected.model),
                            "handle version {} paired with another version's model",
                            h.version
                        );
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
    }

    #[test]
    fn bad_checkpoints_never_become_current() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let before = reg.current().unwrap();
        let mut broken = checkpoint(2);
        // Drop a required tensor (a bias would be tolerated): the load must fail.
        broken.tensors.retain(|(p, _)| p != "head.weight");
        assert!(matches!(reg.publish(&broken), Err(PublishError::Checkpoint(_))));
        let after = reg.current().unwrap();
        assert_eq!(after.version, before.version);
        assert!(Arc::ptr_eq(&after.model, &before.model));
        assert_eq!(reg.versions(), vec![1]);
    }

    #[test]
    fn statically_rejected_checkpoints_never_become_current() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let before = reg.current().unwrap();
        let mut bad = checkpoint(2);
        // The tensor is *present* (so loading succeeds) but its shape is wrong —
        // only the static analyzer can refuse this before a request trips on it.
        for (p, t) in bad.tensors.iter_mut() {
            if p == "head.weight" {
                *t = rita_tensor::NdArray::zeros(&[3, 3]);
            }
        }
        match reg.publish(&bad) {
            Err(PublishError::Rejected(report)) => {
                assert!(report.has_errors(), "rejection must carry error diagnostics")
            }
            other => panic!("expected static rejection, got {other:?}"),
        }
        let after = reg.current().unwrap();
        assert_eq!(after.version, before.version);
        assert!(Arc::ptr_eq(&after.model, &before.model));
    }
}
