//! The model registry: versioned, atomically hot-swappable checkpoints for the
//! serving tier.
//!
//! Publishing loads a checkpoint into an [`InferModel`] (which validates every tensor
//! against the architecture before anything is exposed) and installs it as the current
//! version under a monotonically increasing version id. Workers take a
//! [`ModelHandle`] — an `Arc` snapshot of `(version, model)` — per *batch*, so a swap
//! is atomic from a request's point of view: every batch runs start-to-finish on
//! exactly one version, in-flight batches finish on the weights they started with, and
//! the old model's memory is reclaimed by the last `Arc` drop once its final batch
//! completes. The PR-1 tensor sharing makes the handle itself free: cloning the `Arc`
//! shares every weight buffer zero-copy.
//!
//! Rollback is re-activation: every published version stays archived (weights are
//! `Arc`-shared with the checkpoint they came from, so archiving is cheap), and
//! [`ModelRegistry::rollback`] or [`ModelRegistry::activate`] repoints the current
//! version without reloading anything.
//!
//! ## Last-good pinning and quarantine
//!
//! The registry additionally tracks the **last-good** version: the most recent
//! version that either survived a successful publish or was explicitly blessed via
//! [`ModelRegistry::activate`]. When the serving tier detects a fault in a live model
//! (non-finite logits, an executor error), it calls
//! [`ModelRegistry::quarantine`] — the damaged version is barred from automatic
//! re-selection and, if it was current, traffic atomically repoints to last-good.
//! A failed publish (load, static verification, or — with the version-2 checkpoint
//! format — a checksum mismatch) never touches the current pointer at all, so the
//! "rollback" for publish-time corruption is simply that traffic keeps flowing from
//! the pinned last-good version.

use std::collections::HashSet;
use std::path::Path;
use std::sync::{Arc, RwLock};

use rita_core::checkpoint::{Checkpoint, CheckpointError};
use rita_verify::Report;

use crate::model::InferModel;

/// Why a checkpoint could not be published.
#[derive(Debug)]
pub enum PublishError {
    /// Loading the checkpoint failed: missing or leftover tensors, a corrupt config,
    /// an unknown format.
    Checkpoint(CheckpointError),
    /// The checkpoint loaded, but the independent static analyzer found
    /// error-severity defects (wrong-shape tensors, illegal fusion, orphan params…).
    /// The full diagnostic report rides along; the registry's current version is
    /// untouched.
    Rejected(Report),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Checkpoint(e) => write!(f, "checkpoint failed to load: {e}"),
            PublishError::Rejected(report) => {
                write!(f, "checkpoint rejected by static verification: {report}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

impl From<CheckpointError> for PublishError {
    fn from(e: CheckpointError) -> Self {
        PublishError::Checkpoint(e)
    }
}

/// A snapshot of the registry's current model: the version id and the `Arc`-shared
/// loaded weights. Holding a handle keeps that version's weights alive even across a
/// concurrent swap — the registry never mutates a published model.
#[derive(Clone)]
pub struct ModelHandle {
    /// Monotonic version id assigned at publish time.
    pub version: u64,
    /// The loaded, servable model.
    pub model: Arc<InferModel>,
}

struct Published {
    version: u64,
    model: Arc<InferModel>,
}

struct RegistryInner {
    /// Every published version, in publish order (version ids are its indices + 1).
    history: Vec<Published>,
    /// Index into `history` of the active version, `None` before the first publish.
    current: Option<usize>,
    /// Index of the last version known good (successfully published or explicitly
    /// activated, and not since quarantined).
    last_good: Option<usize>,
    /// History indices barred from automatic re-selection after a serve-time fault.
    quarantined: HashSet<usize>,
}

/// A versioned store of servable models with atomic swap and rollback.
pub struct ModelRegistry {
    inner: RwLock<RegistryInner>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(RegistryInner {
                history: Vec::new(),
                current: None,
                last_good: None,
                quarantined: HashSet::new(),
            }),
        }
    }

    /// Loads `ckpt` into servable form, runs the full independent static analysis
    /// (`rita_verify`) over the checkpoint × graph pair, and only then atomically
    /// installs it as the current version, returning its version id. Any
    /// error-severity diagnostic refuses activation with the report attached
    /// ([`PublishError::Rejected`]), so a wrong-shape tensor or an illegal fusion is
    /// caught before a single request sees the new version; requests admitted before
    /// the swap finish on the version they started with.
    pub fn publish(&self, ckpt: &Checkpoint) -> Result<u64, PublishError> {
        // Load and verify outside the lock: they are the slow part, and readers
        // should keep serving the old version meanwhile.
        self.install(ckpt, InferModel::from_checkpoint(ckpt)?)
    }

    /// [`publish`](Self::publish) with an explicit numeric precision instead of the
    /// checkpoint's own default: `Precision::Int8` quantizes eligible f32 weights at
    /// load (the canary step of a mixed-precision rollout), `Precision::F32` inflates
    /// a quantized checkpoint back to f32 (the escape hatch). The same static
    /// verification gates activation either way.
    pub fn publish_with(
        &self,
        ckpt: &Checkpoint,
        precision: crate::Precision,
    ) -> Result<u64, PublishError> {
        self.install(ckpt, InferModel::from_checkpoint_with(ckpt, precision)?)
    }

    fn install(&self, ckpt: &Checkpoint, model: InferModel) -> Result<u64, PublishError> {
        let model = Arc::new(model);
        let report = rita_verify::verify_with_graph(ckpt, model.graph());
        if report.has_errors() {
            return Err(PublishError::Rejected(report));
        }
        let mut inner = crate::write_rw(&self.inner);
        let version = inner.history.len() as u64 + 1;
        inner.history.push(Published { version, model });
        let idx = inner.history.len() - 1;
        inner.current = Some(idx);
        inner.last_good = Some(idx);
        Ok(version)
    }

    /// Reads, decodes, verifies, and publishes the checkpoint file at `path`.
    ///
    /// This is the full publish pipeline a deployment would run: bytes → format +
    /// checksum check (`Checkpoint::from_bytes`, which with version-2 files rejects
    /// any single flipped byte via the CRC trailer) → architecture load → static
    /// analysis → atomic swap. Any failure leaves the registry untouched — traffic
    /// keeps flowing from the pinned last-good version. The chaos point
    /// `corrupt_publish` taps the byte buffer here, so `tests/fault_tolerance.rs` can
    /// deterministically exercise the corrupt-artifact path end to end.
    pub fn publish_path(&self, path: &Path) -> Result<u64, PublishError> {
        let mut bytes =
            std::fs::read(path).map_err(|e| PublishError::Checkpoint(CheckpointError::Io(e)))?;
        crate::chaos::corrupt_publish(&mut bytes);
        let ckpt = Checkpoint::from_bytes(&bytes)?;
        self.publish(&ckpt)
    }

    /// The current model, if any version has been published.
    pub fn current(&self) -> Option<ModelHandle> {
        let inner = crate::read_rw(&self.inner);
        inner.current.map(|i| ModelHandle {
            version: inner.history[i].version,
            model: Arc::clone(&inner.history[i].model),
        })
    }

    /// The active version id, if any.
    pub fn current_version(&self) -> Option<u64> {
        crate::read_rw(&self.inner).current.map(|i| i as u64 + 1)
    }

    /// Every published version id, in publish order.
    pub fn versions(&self) -> Vec<u64> {
        crate::read_rw(&self.inner).history.iter().map(|p| p.version).collect()
    }

    /// Re-activates an archived `version` (from a previous [`ModelRegistry::publish`]).
    /// Returns `false` when no such version exists. The swap is atomic exactly like a
    /// publish — in-flight batches finish on the version they snapshotted.
    ///
    /// Activation is an operator blessing: it clears any quarantine on `version` and
    /// pins it as the new last-good.
    pub fn activate(&self, version: u64) -> bool {
        let mut inner = crate::write_rw(&self.inner);
        if version == 0 || version as usize > inner.history.len() {
            return false;
        }
        let idx = version as usize - 1;
        inner.quarantined.remove(&idx);
        inner.current = Some(idx);
        inner.last_good = Some(idx);
        true
    }

    /// Steps the current version back by one (publish-order, not activation-order).
    /// Returns the version now active, or `None` when there is no earlier version to
    /// roll back to (the current version stays unchanged).
    pub fn rollback(&self) -> Option<u64> {
        let mut inner = crate::write_rw(&self.inner);
        match inner.current {
            Some(i) if i > 0 => {
                inner.current = Some(i - 1);
                Some(i as u64)
            }
            _ => None,
        }
    }

    /// The last-good version id: the most recent version that survived a publish or
    /// was explicitly [`activate`](Self::activate)d, and has not since been
    /// quarantined.
    pub fn last_good(&self) -> Option<u64> {
        let inner = crate::read_rw(&self.inner);
        inner.last_good.map(|i| inner.history[i].version)
    }

    /// Whether `version` has been quarantined by a serve-time fault.
    pub fn is_quarantined(&self, version: u64) -> bool {
        version != 0 && crate::read_rw(&self.inner).quarantined.contains(&(version as usize - 1))
    }

    /// Marks `version` as faulty (non-finite logits, executor error observed at serve
    /// time) and, when it was the current version, atomically repoints traffic to the
    /// last-good version — or, failing that, the newest non-quarantined version.
    ///
    /// Returns `Some(now_active)` when the current pointer moved, `None` when it did
    /// not (the version was not current, was already quarantined, or nothing healthy
    /// remains to roll back to — in the last case the damaged version keeps serving
    /// best-effort rather than going dark).
    pub fn quarantine(&self, version: u64) -> Option<u64> {
        let mut inner = crate::write_rw(&self.inner);
        if version == 0 || version as usize > inner.history.len() {
            return None;
        }
        let idx = version as usize - 1;
        if !inner.quarantined.insert(idx) {
            return None;
        }
        if inner.last_good == Some(idx) {
            inner.last_good = None;
        }
        if inner.current != Some(idx) {
            return None;
        }
        let fallback = inner
            .last_good
            .filter(|i| !inner.quarantined.contains(i))
            .or_else(|| (0..inner.history.len()).rev().find(|i| !inner.quarantined.contains(i)));
        match fallback {
            Some(i) => {
                inner.current = Some(i);
                inner.last_good = Some(i);
                Some(inner.history[i].version)
            }
            None => None,
        }
    }

    /// A specific archived version's handle, current or not.
    pub fn get(&self, version: u64) -> Option<ModelHandle> {
        let inner = crate::read_rw(&self.inner);
        if version == 0 || version as usize > inner.history.len() {
            return None;
        }
        let p = &inner.history[version as usize - 1];
        Some(ModelHandle { version: p.version, model: Arc::clone(&p.model) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rita_core::attention::AttentionKind;
    use rita_core::model::RitaConfig;
    use rita_core::tasks::Classifier;
    use rita_tensor::SeedableRng64;

    fn checkpoint(seed: u64) -> Checkpoint {
        let mut rng = SeedableRng64::seed_from_u64(seed);
        let config = RitaConfig {
            channels: 2,
            max_len: 40,
            d_model: 16,
            n_layers: 1,
            ff_hidden: 32,
            dropout: 0.0,
            attention: AttentionKind::Group { epsilon: 2.0, initial_groups: 4, adaptive: false },
            ..Default::default()
        };
        Checkpoint::of_classifier(&Classifier::new(config, 3, &mut rng), None)
    }

    #[test]
    fn publish_assigns_monotonic_versions_and_swaps_current() {
        let reg = ModelRegistry::new();
        assert!(reg.current().is_none());
        assert_eq!(reg.current_version(), None);
        let v1 = reg.publish(&checkpoint(1)).unwrap();
        let v2 = reg.publish(&checkpoint(2)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.current_version(), Some(2));
        assert_eq!(reg.versions(), vec![1, 2]);
        assert_eq!(reg.current().unwrap().version, 2);
    }

    #[test]
    fn handles_outlive_swaps() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let held = reg.current().unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        // The held handle still points at version 1's weights.
        assert_eq!(held.version, 1);
        assert_eq!(held.model.num_classes(), Some(3));
        assert_eq!(reg.current().unwrap().version, 2);
    }

    #[test]
    fn rollback_and_activate_repoint_without_reloading() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        reg.publish(&checkpoint(3)).unwrap();
        assert_eq!(reg.rollback(), Some(2));
        assert_eq!(reg.current_version(), Some(2));
        assert_eq!(reg.rollback(), Some(1));
        assert_eq!(reg.rollback(), None, "nothing before version 1");
        assert_eq!(reg.current_version(), Some(1));
        assert!(reg.activate(3));
        assert_eq!(reg.current_version(), Some(3));
        assert!(!reg.activate(4));
        assert!(!reg.activate(0));
        // The re-activated handle is the *same* loaded model, not a reload.
        let v3_via_get = reg.get(3).unwrap();
        assert!(Arc::ptr_eq(&v3_via_get.model, &reg.current().unwrap().model));
    }

    /// The atomics-audit stress test for the registry's pointer moves (see DESIGN.md
    /// "Atomics audit"): the current-version swap is an index store under the
    /// `RwLock` write guard, and a handle clones `(version, Arc)` under one read
    /// guard — so every handle a reader ever observes must be *internally*
    /// consistent (its version id and its model pointer name the same published
    /// entry), no matter how many writers are flipping the active version.
    #[test]
    fn concurrent_swaps_yield_internally_consistent_handles() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        let pinned: Vec<ModelHandle> = (1..=2).map(|v| reg.get(v).unwrap()).collect();

        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        assert!(reg.activate(1 + (i + t) % 2));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let pinned = pinned.clone();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let h = reg.current().expect("published");
                        let expected = &pinned[h.version as usize - 1];
                        assert!(
                            Arc::ptr_eq(&h.model, &expected.model),
                            "handle version {} paired with another version's model",
                            h.version
                        );
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
    }

    #[test]
    fn quarantine_rolls_current_back_to_last_good() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        assert_eq!(reg.last_good(), Some(2));
        // v2 faults at serve time: traffic must land on the newest healthy version.
        assert_eq!(reg.quarantine(2), Some(1));
        assert_eq!(reg.current_version(), Some(1));
        assert_eq!(reg.last_good(), Some(1));
        assert!(reg.is_quarantined(2));
        assert!(!reg.is_quarantined(1));
        // Quarantining a non-current version bars it without moving traffic...
        reg.publish(&checkpoint(3)).unwrap();
        assert_eq!(reg.quarantine(1), None);
        assert_eq!(reg.current_version(), Some(3));
        // ...and double-quarantine is a no-op.
        assert_eq!(reg.quarantine(1), None);
        // Operator blessing clears the mark and re-pins last-good.
        assert!(reg.activate(2));
        assert!(!reg.is_quarantined(2));
        assert_eq!(reg.last_good(), Some(2));
    }

    #[test]
    fn quarantining_the_only_version_keeps_serving_best_effort() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        assert_eq!(reg.quarantine(1), None, "nothing healthy to fall back to");
        // Going dark would be worse than serving a suspect model: current stays.
        assert_eq!(reg.current_version(), Some(1));
        assert_eq!(reg.last_good(), None);
    }

    #[test]
    fn bad_checkpoints_never_become_current() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let before = reg.current().unwrap();
        let mut broken = checkpoint(2);
        // Drop a required tensor (a bias would be tolerated): the load must fail.
        broken.tensors.retain(|(p, _)| p != "head.weight");
        assert!(matches!(reg.publish(&broken), Err(PublishError::Checkpoint(_))));
        let after = reg.current().unwrap();
        assert_eq!(after.version, before.version);
        assert!(Arc::ptr_eq(&after.model, &before.model));
        assert_eq!(reg.versions(), vec![1]);
    }

    /// PR 9's extension of the PR 8 stress pattern: publish / activate / rollback /
    /// quarantine race freely across threads. Two invariants must hold at every
    /// observation point: (a) any handle is internally consistent (its version id and
    /// model pointer name the same published entry — the PR 8 property), and (b)
    /// `last_good`, whenever set, names a published version that is not currently
    /// quarantined (readers use it as the rollback target, so a stale or quarantined
    /// last-good would re-route traffic onto a faulty model).
    #[test]
    fn concurrent_publish_activate_rollback_quarantine_stay_consistent() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(&checkpoint(1)).unwrap();
        reg.publish(&checkpoint(2)).unwrap();
        reg.publish(&checkpoint(3)).unwrap();
        let pinned: Vec<ModelHandle> = (1..=3).map(|v| reg.get(v).unwrap()).collect();

        let mut workers = Vec::new();
        // Publisher: keeps appending fresh versions.
        workers.push({
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for s in 4..24u64 {
                    reg.publish(&checkpoint(s)).unwrap();
                }
            })
        });
        // Flipper: activates among the first three versions.
        workers.push({
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..1_500u64 {
                    assert!(reg.activate(1 + i % 3));
                }
            })
        });
        // Roller: steps back whenever possible.
        workers.push({
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..1_500 {
                    let _ = reg.rollback();
                }
            })
        });
        // Fault reporter: quarantines whatever is current, as the serve path would.
        workers.push({
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..400 {
                    if let Some(v) = reg.current_version() {
                        let _ = reg.quarantine(v);
                    }
                    std::thread::yield_now();
                }
            })
        });
        // Readers: check both invariants continuously.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let pinned = pinned.clone();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let h = reg.current().expect("published");
                        if h.version <= 3 {
                            let expected = &pinned[h.version as usize - 1];
                            assert!(
                                Arc::ptr_eq(&h.model, &expected.model),
                                "handle version {} paired with another version's model",
                                h.version
                            );
                        }
                        // One read guard = one atomic observation of the invariant
                        // (two separate calls could straddle a concurrent quarantine).
                        let inner = crate::read_rw(&reg.inner);
                        if let Some(lg) = inner.last_good {
                            assert!(lg < inner.history.len(), "last_good names unpublished");
                            assert!(
                                !inner.quarantined.contains(&lg),
                                "last_good {lg} is quarantined"
                            );
                        }
                        drop(inner);
                    }
                })
            })
            .collect();
        for t in workers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        // Terminal state: still serving something, and it is a real version.
        let h = reg.current().expect("still serving");
        assert!(reg.get(h.version).is_some());
    }

    /// The mixed-precision rollout contract: publish the int8 quantization of the
    /// live f32 version, observe per-version precision on the handles, and when the
    /// canary "regresses", quarantine rolls traffic back onto the f32 weights.
    #[test]
    fn mixed_precision_rollout_rolls_back_through_quarantine() {
        let reg = ModelRegistry::new();
        let f32_ckpt = checkpoint(1);
        let v1 = reg.publish(&f32_ckpt).unwrap();
        assert_eq!(reg.get(v1).unwrap().model.precision(), crate::Precision::F32);

        // Canary: the quantized twin publishes as int8 automatically (its records
        // carry the dtype), with weights bound as packed panels, not inflated f32.
        let v2 = reg.publish(&f32_ckpt.quantize()).unwrap();
        let canary = reg.get(v2).unwrap();
        assert_eq!(canary.model.precision(), crate::Precision::Int8);
        assert!(canary.model.quantized_params() > 0, "int8 records must bind as panels");
        assert_eq!(reg.current_version(), Some(v2));

        // publish_with is the other rollout direction: force-quantize the f32
        // checkpoint at load, and force-inflate the quantized one back to f32.
        let v3 = reg.publish_with(&f32_ckpt, crate::Precision::Int8).unwrap();
        assert_eq!(reg.get(v3).unwrap().model.precision(), crate::Precision::Int8);
        let v4 = reg.publish_with(&f32_ckpt.quantize(), crate::Precision::F32).unwrap();
        let inflated = reg.get(v4).unwrap();
        assert_eq!(inflated.model.precision(), crate::Precision::F32);
        assert_eq!(inflated.model.quantized_params(), 0);

        // Accuracy regression detected on the canary: quarantine repoints traffic.
        assert!(reg.activate(v2));
        assert_eq!(reg.quarantine(v2), Some(v4));
        assert_eq!(reg.current_version(), Some(v4));
        assert_eq!(reg.current().unwrap().model.precision(), crate::Precision::F32);
        assert!(reg.is_quarantined(v2));
    }

    #[test]
    fn statically_rejected_checkpoints_never_become_current() {
        let reg = ModelRegistry::new();
        reg.publish(&checkpoint(1)).unwrap();
        let before = reg.current().unwrap();
        let mut bad = checkpoint(2);
        // The tensor is *present* (so loading succeeds) but its shape is wrong —
        // only the static analyzer can refuse this before a request trips on it.
        for (p, t) in bad.tensors.iter_mut() {
            if p == "head.weight" {
                *t = rita_core::checkpoint::TensorRecord::F32(rita_tensor::NdArray::zeros(&[3, 3]));
            }
        }
        match reg.publish(&bad) {
            Err(PublishError::Rejected(report)) => {
                assert!(report.has_errors(), "rejection must carry error diagnostics")
            }
            other => panic!("expected static rejection, got {other:?}"),
        }
        let after = reg.current().unwrap();
        assert_eq!(after.version, before.version);
        assert!(Arc::ptr_eq(&after.model, &before.model));
    }
}
