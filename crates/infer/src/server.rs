//! The continuous-batching multi-tenant serving core.
//!
//! [`Server`] turns `rita-infer` from a blocking library call into a service: requests
//! from many tenants land in one MPSC queue, N worker threads drain it continuously,
//! and every drained batch runs on an `Arc` snapshot of the [`ModelRegistry`]'s
//! current checkpoint — hot-swap and rollback are atomic per batch, zero-copy per
//! worker (PR-1 tensor sharing makes the snapshot free).
//!
//! ## Continuous batching under a latency SLO
//!
//! The batcher reuses the training engine's length-bucketed batcher
//! (`batch_indices_by_length`) over the live queue: the oldest queued request anchors
//! the next batch, and the batch's target size is the §5.2 predictor `B = f(L, N)` —
//! the same model that spends a *memory* budget during training, here trained against
//! the *latency* budget `slo × compute_fraction` through a calibrated byte throughput
//! (see `rita_core::scheduler::latency`). A batch closes when it reaches its target,
//! when the batching window (`linger`) expires, or **early** when the oldest request
//! approaches its SLO deadline — a request never waits for batch-mates it cannot
//! afford.
//!
//! ## Admission control
//!
//! Per-tenant token buckets (rate + burst) and queue-depth bounds shed load *at
//! admission* with a typed [`ServeError::Overloaded`] instead of letting queues grow
//! unbounded; a rate-limit shed carries a `retry_after` hint derived from the bucket's
//! refill rate. Requests with NaN/infinite values are rejected there too
//! (`RequestError::NonFinite`), before they can poison a mixed-tenant batch.
//!
//! ## Fault tolerance
//!
//! Workers are **panic-isolated and supervised**: each drains batches inside
//! `catch_unwind`, so a panicking batch converts to per-request
//! [`ServeError::Internal`] answers (a drop guard on every queued request guarantees
//! no ticket is ever lost *or* answered twice) while a supervisor thread respawns the
//! crashed worker with capped exponential backoff. Recurring crashes trip a
//! **circuit breaker** ([`BreakerPolicy`]): submissions fail fast with
//! [`ServeError::Unavailable`] and a `retry_after` hint until a cooldown passes, then
//! a few half-open probes decide between closing the breaker and doubling the
//! cooldown. Serve-time model faults (executor errors, non-finite logits) quarantine
//! the faulty version in the registry, which atomically rolls traffic back to the
//! pinned last-good checkpoint. Requests may carry a **hard deadline** past which
//! they are cancelled with [`ServeError::DeadlineExceeded`] — never silently served
//! stale — and sustained queue pressure triggers **brownout** ([`BrownoutPolicy`]):
//! the latency budget handed to the §5.2 predictor shrinks level by level, trading
//! batch quality for queue drain before load is shed outright. Every shared lock
//! acquisition recovers from poisoning (see the crate-root helpers), so one crashed
//! worker can never wedge the others.
//!
//! ## Worker-pool budget sharing
//!
//! Each worker caps its inner kernel parallelism at `worker_budget() / workers` via
//! `with_worker_threads` (the PR-2 budget-sharing pattern), so N serving workers × M
//! kernel threads never multiply past the machine budget.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rita_core::scheduler::{BatchSizePredictor, LatencyBudget, MemoryModel};
use rita_data::batch::{batch_indices_by_length, stack_samples};
use rita_tensor::{with_worker_threads, worker_budget, NdArray, SeedableRng64};

use crate::metrics::{Metrics, TenantMetrics};
use crate::model::{InferModel, Precision};
use crate::registry::{ModelHandle, ModelRegistry, PublishError};
use crate::session::{validate_request, RequestError};

/// Admission policy for one tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantPolicy {
    /// Sustained admission rate in requests/second (`None` = unlimited). Enforced by a
    /// token bucket refilled continuously.
    pub rate_per_sec: Option<f64>,
    /// Bucket capacity: how many requests may burst above the sustained rate.
    pub burst: f64,
    /// Most requests this tenant may have queued at once; beyond it, submissions shed
    /// with [`ShedReason::TenantQueueFull`].
    pub max_queue_depth: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self { rate_per_sec: None, burst: 16.0, max_queue_depth: 256 }
    }
}

/// Circuit-breaker policy: when recurring worker crashes should flip the server to
/// reject-fast, and how it probes its way back.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Crashes within [`window`](Self::window) that trip the breaker open
    /// (`0` disables the breaker entirely).
    pub threshold: usize,
    /// Sliding window over which crashes are counted.
    pub window: Duration,
    /// How long the breaker stays open after tripping; doubles (up to
    /// [`max_cooldown`](Self::max_cooldown)) every time a half-open probe crashes
    /// again.
    pub cooldown: Duration,
    /// Ceiling on the doubling cooldown.
    pub max_cooldown: Duration,
    /// Requests admitted in the half-open state to test the waters; one surviving
    /// batch closes the breaker.
    pub probes: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            threshold: 5,
            window: Duration::from_secs(2),
            cooldown: Duration::from_millis(250),
            max_cooldown: Duration::from_secs(5),
            probes: 2,
        }
    }
}

/// Brownout policy: degrade the latency budget under sustained queue pressure before
/// shedding load outright.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutPolicy {
    /// Queue depth (as a fraction of `max_queue_depth`) above which pressure counts
    /// toward raising the brownout level.
    pub high_fraction: f64,
    /// Queue depth fraction below which the level decays back toward zero.
    pub low_fraction: f64,
    /// How long the queue must hold above/below a watermark before the level moves —
    /// the hysteresis that keeps one spiky second from flapping the budget.
    pub hold: Duration,
    /// Deepest brownout level (`0` disables brownout).
    pub max_level: u8,
    /// Per-level multiplier on the predictor's `compute_fraction`: level `k` trains
    /// its predictor against `compute_fraction × budget_factor^k`.
    pub budget_factor: f32,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        Self {
            high_fraction: 0.75,
            low_fraction: 0.25,
            hold: Duration::from_millis(100),
            max_level: 3,
            budget_factor: 0.5,
        }
    }
}

/// Tunables of the serving core.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the queue. Each holds an `Arc` view of the current
    /// model per batch and caps its kernel parallelism at its share of
    /// `worker_budget()`.
    pub workers: usize,
    /// Hard cap on any batch, over and above the predictor's target.
    pub max_batch: usize,
    /// Per-request latency SLO: the deadline a request receives at admission.
    pub slo: Duration,
    /// Fraction of the SLO one batch's compute may spend; the batcher closes a batch
    /// early once the oldest request's remaining slack shrinks to this slice.
    pub compute_fraction: f32,
    /// Longest a batch waits for same-length batch-mates before closing under target.
    pub linger: Duration,
    /// Global queue bound; beyond it submissions shed with [`ShedReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Policy applied to tenants without an explicit [`Server::set_tenant_policy`].
    pub default_policy: TenantPolicy,
    /// Calibrated serving throughput in cost-model bytes/second. `None` measures it at
    /// startup by timing a probe forward of the current model.
    pub bytes_per_sec: Option<f64>,
    /// Hard per-request deadline applied at admission (`None` = requests wait as long
    /// as it takes; the SLO still shapes batching). A request past its hard deadline
    /// is cancelled with [`ServeError::DeadlineExceeded`] instead of served stale.
    /// Per-request overrides: [`Server::submit_with_deadline`].
    pub deadline: Option<Duration>,
    /// Circuit-breaker policy for recurring worker crashes.
    pub breaker: BreakerPolicy,
    /// Brownout policy for sustained queue pressure.
    pub brownout: BrownoutPolicy,
    /// Supervisor backoff before respawning a worker that crashed twice in quick
    /// succession (doubles per consecutive crash, capped at
    /// [`respawn_backoff_max`](Self::respawn_backoff_max)).
    pub respawn_backoff: Duration,
    /// Ceiling on the respawn backoff.
    pub respawn_backoff_max: Duration,
    /// Numeric precision applied to checkpoints published through
    /// [`Server::publish`]. `None` honours each checkpoint's own dtypes (f32 records
    /// serve as f32, int8 records serve quantized); `Some(p)` forces policy `p`, e.g.
    /// `Some(Precision::Int8)` quantizes eligible f32 weights at load for a
    /// mixed-precision rollout. Publishing directly on the registry bypasses this.
    pub precision: Option<Precision>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            slo: Duration::from_millis(250),
            compute_fraction: LatencyBudget::DEFAULT_COMPUTE_FRACTION,
            linger: Duration::from_millis(2),
            max_queue_depth: 1024,
            default_policy: TenantPolicy::default(),
            bytes_per_sec: None,
            deadline: None,
            breaker: BreakerPolicy::default(),
            brownout: BrownoutPolicy::default(),
            respawn_backoff: Duration::from_millis(10),
            respawn_backoff_max: Duration::from_secs(1),
            precision: None,
        }
    }
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty (sustained rate exceeded).
    RateLimited,
    /// The tenant's queue slice is full.
    TenantQueueFull,
    /// The server's global queue is full.
    QueueFull,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Shed by admission control — the typed rejection a client backs off on.
    Overloaded {
        /// The tenant whose request was shed.
        tenant: String,
        /// Which admission bound tripped.
        reason: ShedReason,
        /// For rate-limit sheds: how long until the token bucket refills one token.
        /// `None` for queue-bound sheds (drain time is not predictable from policy).
        retry_after: Option<Duration>,
    },
    /// Rejected by request validation (shape, length, non-finite values, wrong head).
    Invalid(RequestError),
    /// The forward pass failed — e.g. a malformed checkpoint tensor caught by plan
    /// compilation. Every request in the affected batch receives this error; the
    /// worker thread survives and keeps serving.
    Infer(crate::InferError),
    /// No checkpoint has been published to the registry yet.
    NoModel,
    /// The static analyzer rejected the plan this request would have run on; the full
    /// diagnostic report rides along. With publish-time verification in front, this
    /// only fires if a corrupt plan slips past it for an unprobed shape bucket.
    Rejected(rita_verify::Report),
    /// The worker serving this request's batch crashed, or the model produced
    /// non-finite logits. The request was *answered*, not lost — resubmit freely; the
    /// supervisor has already respawned the worker (and rolled the model back when
    /// the fault was the model's).
    Internal {
        /// Human-readable cause.
        detail: String,
    },
    /// The request's hard deadline passed before a batch could serve it; it was
    /// cancelled rather than silently served stale.
    DeadlineExceeded {
        /// How far past the deadline the cancellation happened.
        late_by: Duration,
    },
    /// The circuit breaker is open after recurring worker crashes: the server is
    /// rejecting fast instead of queueing into a crash loop.
    Unavailable {
        /// When the breaker will next admit probes.
        retry_after: Duration,
    },
    /// The server is shutting down and no longer admits requests.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { tenant, reason, retry_after } => {
                let r = match reason {
                    ShedReason::RateLimited => "rate limited",
                    ShedReason::TenantQueueFull => "tenant queue full",
                    ShedReason::QueueFull => "server queue full",
                };
                write!(f, "overloaded ({r}) for tenant '{tenant}'")?;
                if let Some(d) = retry_after {
                    write!(f, ", retry after {:.1}ms", d.as_secs_f64() * 1e3)?;
                }
                Ok(())
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Infer(e) => write!(f, "forward pass failed: {e}"),
            ServeError::NoModel => write!(f, "no model published"),
            ServeError::Rejected(report) => {
                write!(f, "rejected by static verification: {report}")
            }
            ServeError::Internal { detail } => write!(f, "internal server error: {detail}"),
            ServeError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded by {:.1}ms", late_by.as_secs_f64() * 1e3)
            }
            ServeError::Unavailable { retry_after } => {
                write!(
                    f,
                    "unavailable (circuit breaker open), retry after {:.1}ms",
                    retry_after.as_secs_f64() * 1e3
                )
            }
            ServeError::ShutDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One served classification answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResponse {
    /// Predicted class (argmax of the logits).
    pub class: usize,
    /// The full logits row, bit-identical to the single-call `InferSession` path.
    pub logits: Vec<f32>,
    /// Registry version of the checkpoint that served this request — every request is
    /// answered by exactly one version, even across a concurrent hot-swap.
    pub model_version: u64,
}

/// A pending answer: `wait` blocks until the worker fills it.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request is served (or failed) and returns the outcome.
    pub fn wait(self) -> Result<ServedResponse, ServeError> {
        let mut done = crate::lock_mx(&self.slot.done);
        loop {
            match done.take() {
                Some(result) => return result,
                None => done = crate::wait_cv(&self.slot.cv, done),
            }
        }
    }

    /// Non-blocking poll: the outcome if the request has been served, else `None`
    /// (the ticket stays valid for a later [`Ticket::wait`]).
    pub fn try_wait(&self) -> Option<Result<ServedResponse, ServeError>> {
        crate::lock_mx(&self.slot.done).take()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = crate::lock_mx(&self.slot.done).is_some();
        f.debug_struct("Ticket").field("ready", &ready).finish()
    }
}

struct Slot {
    /// Fill-once latch: the first `fill` wins, every later attempt is a no-op. This
    /// is what makes "no request answered twice" structural — the happy path, the
    /// error paths, and the drop guard all funnel through the same swap.
    answered: AtomicBool,
    done: Mutex<Option<Result<ServedResponse, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    /// Delivers `result` to the ticket if nothing was delivered before. Returns
    /// whether this call was the one that answered.
    fn fill(&self, result: Result<ServedResponse, ServeError>) -> bool {
        if self.answered.swap(true, Ordering::AcqRel) {
            return false;
        }
        *crate::lock_mx(&self.done) = Some(result);
        self.cv.notify_all();
        true
    }
}

/// One queued request.
///
/// `Pending` is a **drop guard**: once a request is admitted, the only ways out are
/// an explicit [`answer`](Self::answer) or — if a panic unwinds the worker that held
/// it — the `Drop` impl, which answers [`ServeError::Internal`]. A client ticket can
/// therefore never hang on a crashed batch, and (via the slot's fill-once latch)
/// never observe two answers.
struct Pending {
    tenant: Arc<str>,
    tenant_metrics: Arc<TenantMetrics>,
    metrics: Arc<Metrics>,
    input: NdArray,
    enqueued: Instant,
    /// Soft deadline: shapes batch closing (SLO pressure), never cancels.
    slo_deadline: Instant,
    /// Hard deadline: past it the request is cancelled, never served stale.
    hard_deadline: Option<Instant>,
    slot: Arc<Slot>,
}

impl Pending {
    /// Answers the ticket (first answer wins). Returns whether this was the first.
    fn answer(&self, result: Result<ServedResponse, ServeError>) -> bool {
        self.slot.fill(result)
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if self.slot.answered.load(Ordering::Acquire) {
            return;
        }
        // Reached only when a panic unwound the worker mid-batch: convert the crash
        // into a typed per-request error instead of a hung client.
        if self.slot.fill(Err(ServeError::Internal {
            detail: "worker crashed while serving this batch".into(),
        })) {
            self.metrics.faults.internal_errors.fetch_add(1, Ordering::Relaxed);
            self.tenant_metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct TenantState {
    policy: TenantPolicy,
    tokens: f64,
    refilled: Instant,
    queued: usize,
    metrics: Arc<TenantMetrics>,
}

impl TenantState {
    /// Refills the token bucket for elapsed time and tries to take one token.
    fn admit_token(&mut self, now: Instant) -> bool {
        let Some(rate) = self.policy.rate_per_sec else { return true };
        let elapsed = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + elapsed * rate).min(self.policy.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long until the bucket refills one whole token at the sustained rate — the
    /// `retry_after` hint attached to a rate-limit shed. `None` when the policy has
    /// no (or a zero) rate: no refill time is derivable.
    fn retry_after(&self) -> Option<Duration> {
        let rate = self.policy.rate_per_sec?;
        if rate <= 0.0 {
            return None;
        }
        let deficit = (1.0 - self.tokens).max(0.0);
        Some(Duration::from_secs_f64(deficit / rate))
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    tenants: HashMap<Arc<str>, TenantState>,
}

/// Per-model-version serve planner: the latency-budget predictor plus the cost model
/// it consults, built once per version and shared by every worker.
struct Planner {
    predictor: BatchSizePredictor,
    budget: LatencyBudget,
    memory: MemoryModel,
    /// Frozen mean scheduler group target (`None` for non-group checkpoints).
    groups: Option<usize>,
    max_len: usize,
    /// Per-level multiplier on the compute budget (from [`BrownoutPolicy`]).
    budget_factor: f32,
    /// Lazily trained brownout predictors, one per non-zero level; each is trained
    /// against the level's shrunken compute budget the first time the level is hit.
    browned: Mutex<HashMap<u8, Arc<BatchSizePredictor>>>,
}

impl Planner {
    fn build(model: &InferModel, config: &ServerConfig, bytes_per_sec: f64) -> Self {
        let memory = model.memory_model();
        let budget = LatencyBudget {
            slo: config.slo,
            compute_fraction: config.compute_fraction,
            bytes_per_sec,
        };
        let max_len = model.config().max_len.max(2);
        let predictor = budget.train_predictor(&memory, max_len, config.max_batch, 5, 3);
        let groups = model.mean_groups().map(|g| g.round().max(1.0) as usize);
        Self {
            predictor,
            budget,
            memory,
            groups,
            max_len,
            budget_factor: config.brownout.budget_factor,
            browned: Mutex::new(HashMap::new()),
        }
    }

    /// The `N` plugged into `B = f(L, N)`: the checkpoint's frozen mean scheduler
    /// target, or (for non-group attention) the window count — the cost model's
    /// saturation point.
    fn groups_for(&self, len: usize) -> usize {
        self.groups.unwrap_or_else(|| self.memory.windows(len)).max(1)
    }

    /// Target batch size for a length bucket at a brownout level, under the latency
    /// budget and the hard cap. Level 0 is the eagerly trained full-budget predictor;
    /// deeper levels train (once) against a geometrically shrunken compute budget.
    fn target(&self, len: usize, max_batch: usize, level: u8) -> usize {
        let n = self.groups_for(len);
        let b = if level == 0 {
            self.predictor.predict(len, n)
        } else {
            self.level_predictor(level, max_batch).predict(len, n)
        };
        b.clamp(1, max_batch.max(1))
    }

    fn level_predictor(&self, level: u8, max_batch: usize) -> Arc<BatchSizePredictor> {
        let mut map = crate::lock_mx(&self.browned);
        Arc::clone(map.entry(level).or_insert_with(|| {
            let budget = LatencyBudget {
                slo: self.budget.slo,
                compute_fraction: self.budget.compute_fraction
                    * self.budget_factor.powi(level as i32),
                bytes_per_sec: self.budget.bytes_per_sec,
            };
            Arc::new(budget.train_predictor(&self.memory, self.max_len, max_batch, 5, 3))
        }))
    }
}

/// Circuit-breaker state machine (guarded by `Shared::breaker`).
enum BreakerState {
    /// Normal operation; `recent` tracks crashes inside the sliding window.
    Closed,
    /// Rejecting fast until `until`; `cooldown` is the open duration that produced
    /// it (doubles on a failed probe).
    Open { until: Instant, cooldown: Duration },
    /// Admitting up to `probes_left` more probe requests; one served batch closes
    /// the breaker, one more crash re-opens it with `cooldown × 2`.
    HalfOpen { probes_left: u32, cooldown: Duration },
}

struct Breaker {
    state: BreakerState,
    recent: VecDeque<Instant>,
}

/// A worker thread's exit report, consumed by the supervisor.
struct WorkerReport {
    index: usize,
    /// `Some(panic message)` when the worker died to a panic, `None` on clean exit.
    crashed: Option<String>,
}

struct SupervisorState {
    reports: VecDeque<WorkerReport>,
}

struct Brownout {
    level: u8,
    above_since: Option<Instant>,
    below_since: Option<Instant>,
}

struct Shared {
    state: Mutex<QueueState>,
    work_cv: Condvar,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    config: ServerConfig,
    planners: Mutex<HashMap<u64, Arc<Planner>>>,
    calibrated: Mutex<Option<f64>>,
    shutdown: AtomicBool,
    /// Kernel-thread share of each worker (`worker_budget() / workers`, at least 1).
    kernel_cap: usize,
    supervisor: Mutex<SupervisorState>,
    supervisor_cv: Condvar,
    breaker: Mutex<Breaker>,
    /// Fast-path flag: `true` while the breaker is open or half-open, so the happy
    /// path pays one relaxed load instead of a lock.
    breaker_engaged: AtomicBool,
    brownout: Mutex<Brownout>,
}

impl Shared {
    /// The planner for a model version, building (and calibrating, once per server)
    /// on first sight of the version.
    fn planner_for(&self, handle: &ModelHandle) -> Arc<Planner> {
        if let Some(p) = crate::lock_mx(&self.planners).get(&handle.version) {
            return Arc::clone(p);
        }
        let bytes_per_sec = self.bytes_per_sec(&handle.model);
        let planner = Arc::new(Planner::build(&handle.model, &self.config, bytes_per_sec));
        let mut planners = crate::lock_mx(&self.planners);
        Arc::clone(planners.entry(handle.version).or_insert(planner))
    }

    /// The configured byte throughput, or a one-time calibration: time a probe forward
    /// and divide the cost model's byte estimate by the measured wall time.
    fn bytes_per_sec(&self, model: &InferModel) -> f64 {
        if let Some(b) = self.config.bytes_per_sec {
            return b;
        }
        let mut calibrated = crate::lock_mx(&self.calibrated);
        if let Some(b) = *calibrated {
            return b;
        }
        let config = model.config();
        let len = config.max_len.max(config.window);
        let data: Vec<f32> = (0..config.channels * len).map(|i| (i as f32 * 0.37).sin()).collect();
        let probe =
            NdArray::from_vec(data, &[1, config.channels, len]).expect("probe shape matches data");
        // Warm the arena/dispatch once, then time the faster of two runs (cold-start
        // noise makes the budget too pessimistic otherwise).
        let _ = model.logits(&probe);
        let secs = (0..2)
            .map(|_| {
                let start = Instant::now();
                let out = model.logits(&probe);
                let elapsed = start.elapsed().as_secs_f64();
                crate::reclaim(out);
                elapsed
            })
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        // A model that reports no groups (non-group attention) must fall back to the
        // cost model's saturation point, not a sentinel: `usize::MAX` groups would
        // inflate the byte estimate and mis-train every predictor downstream.
        let n = model
            .mean_groups()
            .map(|g| g.round().max(1.0) as usize)
            .unwrap_or(usize::MAX)
            .min(model.memory_model().windows(len))
            .max(1);
        let bytes = model.memory_model().serve_bytes_for(1, len, n) as f64;
        let b = bytes / secs;
        *calibrated = Some(b);
        b
    }

    /// Admission-side breaker gate (only consulted while `breaker_engaged`): `Ok` to
    /// admit (possibly as a half-open probe), `Err(retry_after)` to reject fast.
    fn breaker_admit(&self, now: Instant) -> Result<(), Duration> {
        let mut b = crate::lock_mx(&self.breaker);
        match b.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open { until, cooldown } => {
                if now >= until {
                    b.state = BreakerState::HalfOpen {
                        probes_left: self.config.breaker.probes.saturating_sub(1),
                        cooldown,
                    };
                    Ok(())
                } else {
                    Err(until.saturating_duration_since(now))
                }
            }
            BreakerState::HalfOpen { probes_left, cooldown } => {
                if probes_left > 0 {
                    b.state = BreakerState::HalfOpen { probes_left: probes_left - 1, cooldown };
                    Ok(())
                } else {
                    // Probes are in flight; tell the client to check back after
                    // roughly the time a verdict needs.
                    Err(cooldown)
                }
            }
        }
    }

    /// Supervisor-side: records one worker crash and trips/extends the breaker.
    fn breaker_on_crash(&self, now: Instant) {
        let policy = self.config.breaker;
        if policy.threshold == 0 {
            return;
        }
        let mut b = crate::lock_mx(&self.breaker);
        match b.state {
            BreakerState::Closed => {
                b.recent.push_back(now);
                while b
                    .recent
                    .front()
                    .is_some_and(|t| now.saturating_duration_since(*t) > policy.window)
                {
                    b.recent.pop_front();
                }
                if b.recent.len() >= policy.threshold {
                    b.recent.clear();
                    b.state = BreakerState::Open {
                        until: now + policy.cooldown,
                        cooldown: policy.cooldown,
                    };
                    self.metrics.faults.breaker_opens.fetch_add(1, Ordering::Relaxed);
                    self.breaker_engaged.store(true, Ordering::Release);
                }
            }
            BreakerState::HalfOpen { cooldown, .. } => {
                // The probe crashed: back to open, twice as patient.
                let cd = cooldown.saturating_mul(2).min(policy.max_cooldown);
                b.state = BreakerState::Open { until: now + cd, cooldown: cd };
                self.metrics.faults.breaker_opens.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open { until, cooldown } => {
                b.state = BreakerState::Open { until: until.max(now + cooldown), cooldown };
            }
        }
    }

    /// Worker-side: a batch served to completion; a half-open breaker closes.
    fn breaker_on_success(&self) {
        if !self.breaker_engaged.load(Ordering::Acquire) {
            return;
        }
        let mut b = crate::lock_mx(&self.breaker);
        if matches!(b.state, BreakerState::HalfOpen { .. }) {
            b.state = BreakerState::Closed;
            b.recent.clear();
            self.breaker_engaged.store(false, Ordering::Release);
        }
    }

    /// Brownout watermark tracking: called with the queue depth after every
    /// enqueue/dequeue. Raises the level after `hold` above the high watermark,
    /// decays it after `hold` below the low watermark.
    fn note_queue_depth(&self, depth: usize, now: Instant) {
        let policy = self.config.brownout;
        if policy.max_level == 0 {
            return;
        }
        let cap = self.config.max_queue_depth as f64;
        let high = (cap * policy.high_fraction).ceil() as usize;
        let low = (cap * policy.low_fraction).floor() as usize;
        let mut b = crate::lock_mx(&self.brownout);
        if depth >= high.max(1) {
            b.below_since = None;
            let since = *b.above_since.get_or_insert(now);
            if now.saturating_duration_since(since) >= policy.hold && b.level < policy.max_level {
                b.level += 1;
                b.above_since = Some(now); // restart the hold for the next raise
                self.metrics.faults.brownout_level.store(b.level as u64, Ordering::Relaxed);
                self.metrics.faults.brownout_raises.fetch_add(1, Ordering::Relaxed);
            }
        } else if depth <= low {
            b.above_since = None;
            let since = *b.below_since.get_or_insert(now);
            if now.saturating_duration_since(since) >= policy.hold && b.level > 0 {
                b.level -= 1;
                b.below_since = Some(now);
                self.metrics.faults.brownout_level.store(b.level as u64, Ordering::Relaxed);
            }
        } else {
            b.above_since = None;
            b.below_since = None;
        }
    }
}

/// A serve-time model fault (executor error, non-finite logits): count it and
/// quarantine the version — the registry atomically repoints traffic to last-good.
fn note_model_fault(shared: &Shared, version: u64) {
    shared.metrics.faults.model_faults.fetch_add(1, Ordering::Relaxed);
    if shared.registry.quarantine(version).is_some() {
        shared.metrics.faults.rollbacks.fetch_add(1, Ordering::Relaxed);
    }
}

/// The serving core: an admission-controlled request queue over continuous-batching
/// worker threads, supervised for fault tolerance. See the module docs for the
/// batching, SLO, and failure semantics.
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts `config.workers` worker threads over `registry`, plus the supervisor
    /// that respawns them on crashes. The registry may still be empty; submissions
    /// are rejected with [`ServeError::NoModel`] until the first
    /// [`ModelRegistry::publish`].
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> Server {
        assert!(config.workers > 0, "a server needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        // Budget sharing (read on the spawning thread, before any worker caps apply):
        // each worker may use its share of the kernel-thread budget, so the serving
        // fan-out and the kernel fan-outs never multiply.
        let kernel_cap = (worker_budget() / config.workers).max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { pending: Default::default(), tenants: HashMap::new() }),
            work_cv: Condvar::new(),
            registry,
            metrics: Arc::new(Metrics::default()),
            config,
            planners: Mutex::new(HashMap::new()),
            calibrated: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            kernel_cap,
            supervisor: Mutex::new(SupervisorState { reports: VecDeque::new() }),
            supervisor_cv: Condvar::new(),
            breaker: Mutex::new(Breaker { state: BreakerState::Closed, recent: VecDeque::new() }),
            breaker_engaged: AtomicBool::new(false),
            brownout: Mutex::new(Brownout { level: 0, above_since: None, below_since: None }),
        });
        let handles: Vec<Option<std::thread::JoinHandle<()>>> =
            (0..config.workers).map(|i| Some(spawn_worker(&shared, i, 0))).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rita-serve-sup".into())
                .spawn(move || supervisor_loop(&shared, handles))
                .expect("spawn serving supervisor")
        };
        Server { shared, supervisor: Some(supervisor) }
    }

    /// The server's model registry (publish/rollback while serving).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Publishes `ckpt` through the registry at the server's configured
    /// [`precision`](ServerConfig::precision) (each checkpoint's own dtypes when
    /// `None`). The swap is atomic exactly as with a direct registry publish;
    /// in-flight batches finish on the version they snapshotted.
    pub fn publish(&self, ckpt: &rita_core::checkpoint::Checkpoint) -> Result<u64, PublishError> {
        match self.shared.config.precision {
            Some(p) => self.shared.registry.publish_with(ckpt, p),
            None => self.shared.registry.publish(ckpt),
        }
    }

    /// The server's metrics (snapshot any time).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Sets (or replaces) the admission policy of one tenant. Existing queued requests
    /// are unaffected; the token bucket restarts full to `burst`.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        let mut st = crate::lock_mx(&self.shared.state);
        let metrics = self.shared.metrics.tenant(tenant);
        let entry = st.tenants.entry(Arc::from(tenant)).or_insert_with(|| TenantState {
            policy,
            tokens: policy.burst.max(1.0),
            refilled: Instant::now(),
            queued: 0,
            metrics,
        });
        entry.policy = policy;
        entry.tokens = entry.tokens.min(policy.burst.max(1.0));
    }

    /// Submits one `(channels, length)` classification request for `tenant`. Returns a
    /// [`Ticket`] immediately; the answer is produced by a worker batch. Rejections
    /// (validation, rate limit, queue bounds, open breaker) are synchronous and typed.
    /// The hard deadline, if any, comes from [`ServerConfig::deadline`].
    pub fn submit(&self, tenant: &str, input: NdArray) -> Result<Ticket, ServeError> {
        self.submit_inner(tenant, input, self.shared.config.deadline)
    }

    /// [`submit`](Self::submit) with an explicit per-request hard deadline measured
    /// from now, overriding [`ServerConfig::deadline`]. Past it the request is
    /// cancelled with [`ServeError::DeadlineExceeded`] instead of served stale.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        input: NdArray,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(tenant, input, Some(deadline))
    }

    fn submit_inner(
        &self,
        tenant: &str,
        input: NdArray,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        let now = Instant::now();
        // Breaker fast path: one relaxed load while healthy.
        if self.shared.breaker_engaged.load(Ordering::Acquire) {
            if let Err(retry_after) = self.shared.breaker_admit(now) {
                self.shared.metrics.faults.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .metrics
                    .faults
                    .last_retry_after_us
                    .store(retry_after.as_micros() as u64, Ordering::Relaxed);
                return Err(ServeError::Unavailable { retry_after });
            }
        }
        let Some(handle) = self.shared.registry.current() else {
            return Err(ServeError::NoModel);
        };
        if handle.model.num_classes().is_none() {
            return Err(ServeError::Invalid(RequestError::WrongHead { requested: "classify" }));
        }
        let tenant_metrics = self.shared.metrics.tenant(tenant);
        if let Err(e) = validate_request(handle.model.config(), 0, &input) {
            tenant_metrics.invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        let mut st = crate::lock_mx(&self.shared.state);
        // Re-check under the lock: a request enqueued here is guaranteed to be drained
        // by a worker (shutdown drains under this same lock), so a ticket can never be
        // orphaned by a concurrent shutdown.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        if st.pending.len() >= self.shared.config.max_queue_depth {
            self.shared.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::QueueFull,
                retry_after: None,
            });
        }
        let default_policy = self.shared.config.default_policy;
        let key: Arc<str> = Arc::from(tenant);
        let state = st.tenants.entry(Arc::clone(&key)).or_insert_with(|| TenantState {
            policy: default_policy,
            tokens: default_policy.burst.max(1.0),
            refilled: now,
            queued: 0,
            metrics: Arc::clone(&tenant_metrics),
        });
        if state.queued >= state.policy.max_queue_depth {
            state.metrics.shed_depth.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::TenantQueueFull,
                retry_after: None,
            });
        }
        if !state.admit_token(now) {
            let retry_after = state.retry_after();
            if let Some(d) = retry_after {
                state.metrics.retry_after_us.store(d.as_micros() as u64, Ordering::Relaxed);
            }
            state.metrics.shed_rate.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::RateLimited,
                retry_after,
            });
        }
        state.queued += 1;
        state.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            answered: AtomicBool::new(false),
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        st.pending.push_back(Pending {
            tenant: key,
            tenant_metrics,
            metrics: Arc::clone(&self.shared.metrics),
            input,
            enqueued: now,
            slo_deadline: now + self.shared.config.slo,
            hard_deadline: deadline.map(|d| now + d),
            slot: Arc::clone(&slot),
        });
        let depth = st.pending.len();
        self.shared.metrics.queue_depth.store(depth as u64, Ordering::Relaxed);
        drop(st);
        self.shared.note_queue_depth(depth, now);
        self.shared.work_cv.notify_one();
        Ok(Ticket { slot })
    }

    /// Submit-and-wait convenience: the closed-loop client call.
    pub fn classify(&self, tenant: &str, input: NdArray) -> Result<ServedResponse, ServeError> {
        self.submit(tenant, input)?.wait()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        crate::lock_mx(&self.shared.state).pending.len()
    }

    /// Current brownout level (0 = full latency budget).
    pub fn brownout_level(&self) -> u8 {
        self.shared.metrics.faults.brownout_level.load(Ordering::Relaxed) as u8
    }

    /// Stops admitting requests, drains the queue (every already-admitted request is
    /// still served), and joins the workers via the supervisor.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        self.shared.supervisor_cv.notify_all();
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Spawns one panic-isolated worker thread. The wrapper catches any unwind from the
/// serve loop and reports the exit (clean or crashed) to the supervisor; unanswered
/// requests of a crashed batch are answered by their drop guards during the unwind,
/// *before* the report is filed.
fn spawn_worker(
    shared: &Arc<Shared>,
    index: usize,
    generation: u64,
) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    let name = if generation == 0 {
        format!("rita-serve-{index}")
    } else {
        format!("rita-serve-{index}-r{generation}")
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let crashed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(&shared)))
                    .err()
                    .map(|payload| panic_message(payload.as_ref()));
            let mut sup = crate::lock_mx(&shared.supervisor);
            sup.reports.push_back(WorkerReport { index, crashed });
            drop(sup);
            shared.supervisor_cv.notify_all();
        })
        .expect("spawn serving worker")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The supervision loop: reaps worker exit reports, counts crashes into the circuit
/// breaker, and respawns crashed workers with capped exponential backoff (per-worker
/// crash streaks reset after a quiet [`BreakerPolicy::window`]). Runs until shutdown
/// has drained every worker.
fn supervisor_loop(shared: &Arc<Shared>, mut handles: Vec<Option<std::thread::JoinHandle<()>>>) {
    let mut live = handles.len();
    let mut streaks: Vec<(u32, Option<Instant>)> = vec![(0, None); handles.len()];
    let mut generations: Vec<u64> = vec![0; handles.len()];
    loop {
        let report = {
            let mut sup = crate::lock_mx(&shared.supervisor);
            loop {
                if let Some(r) = sup.reports.pop_front() {
                    break Some(r);
                }
                if live == 0 {
                    break None;
                }
                // Timed wait: shutdown may be flagged without a report in flight.
                sup = crate::wait_cv_timeout(&shared.supervisor_cv, sup, Duration::from_millis(50));
            }
        };
        let Some(report) = report else { return };
        if let Some(h) = handles[report.index].take() {
            let _ = h.join();
        }
        let Some(message) = report.crashed else {
            live -= 1;
            continue;
        };
        let now = Instant::now();
        let _ = message; // the panic payload is already surfaced via ticket errors
        shared.metrics.faults.worker_panics.fetch_add(1, Ordering::Relaxed);
        shared.breaker_on_crash(now);
        let (streak, last) = &mut streaks[report.index];
        if last.is_some_and(|l| now.saturating_duration_since(l) > shared.config.breaker.window) {
            *streak = 0;
        }
        *streak += 1;
        *last = Some(now);
        // During shutdown with nothing left queued there is nothing to respawn for.
        if shared.shutdown.load(Ordering::Acquire)
            && crate::lock_mx(&shared.state).pending.is_empty()
        {
            live -= 1;
            continue;
        }
        if *streak > 1 && !shared.shutdown.load(Ordering::Acquire) {
            let backoff = shared
                .config
                .respawn_backoff
                .saturating_mul(1u32 << (*streak - 2).min(16))
                .min(shared.config.respawn_backoff_max);
            std::thread::sleep(backoff);
        }
        generations[report.index] += 1;
        handles[report.index] = Some(spawn_worker(shared, report.index, generations[report.index]));
        shared.metrics.faults.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }
}

/// What a worker decided to run: one rectangular batch plus its model snapshot.
struct ClosedBatch {
    handle: ModelHandle,
    requests: Vec<Pending>,
    early_close: bool,
}

/// Drains the queue until shutdown: waits for work, closes batches under the SLO
/// policy, and serves them on the current model snapshot.
fn worker_loop(shared: &Shared) {
    let mut last_version: Option<u64> = None;
    while let Some(batch) = next_batch(shared) {
        if last_version.is_some_and(|v| v != batch.handle.version) {
            shared.metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
        }
        if last_version != Some(batch.handle.version) {
            shared
                .metrics
                .record_version(batch.handle.version, batch.handle.model.precision().as_str());
        }
        last_version = Some(batch.handle.version);
        serve_batch(shared, batch);
    }
}

/// Cancels every queued request whose hard deadline has passed (answering
/// [`ServeError::DeadlineExceeded`]) before any batch is closed over the queue.
fn sweep_expired(shared: &Shared, st: &mut QueueState, now: Instant) {
    let mut i = 0;
    while i < st.pending.len() {
        let expired = st.pending[i].hard_deadline.is_some_and(|d| now >= d);
        if !expired {
            i += 1;
            continue;
        }
        let p = st.pending.remove(i).expect("index in bounds");
        note_dequeued(st, &shared.metrics, &[&p]);
        let late_by =
            now.saturating_duration_since(p.hard_deadline.expect("expired implies deadline"));
        shared.metrics.faults.deadline_expired.fetch_add(1, Ordering::Relaxed);
        p.tenant_metrics.failed.fetch_add(1, Ordering::Relaxed);
        p.answer(Err(ServeError::DeadlineExceeded { late_by }));
    }
}

/// Blocks until a batch can be closed (returning `None` on drained shutdown).
///
/// The close policy, evaluated under the queue lock against the *oldest* request:
/// its length anchors the bucket, the §5.2 planner sets the bucket's target `B` (at
/// the current brownout level), and the batch closes as soon as (a) `B` same-length
/// requests are queued, (b) the `linger` window since the oldest enqueue expires, or
/// (c) the oldest request's remaining SLO slack shrinks to the compute slice one
/// batch needs — the early close that keeps tail latencies inside the SLO instead of
/// waiting for batch-mates.
fn next_batch(shared: &Shared) -> Option<ClosedBatch> {
    let mut st: MutexGuard<'_, QueueState> = crate::lock_mx(&shared.state);
    loop {
        sweep_expired(shared, &mut st, Instant::now());
        if st.pending.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                return None;
            }
            st = crate::wait_cv(&shared.work_cv, st);
            continue;
        }
        let Some(handle) = shared.registry.current() else {
            // Unreachable in practice (submissions require a model and the registry
            // never unpublishes), but fail the request rather than wedging the queue.
            let p = st.pending.pop_front().expect("non-empty queue");
            note_dequeued(&mut st, &shared.metrics, &[&p]);
            drop(st);
            p.answer(Err(ServeError::NoModel));
            drop(p);
            st = crate::lock_mx(&shared.state);
            continue;
        };
        // planner_for never blocks on queue work (separate lock), but it can be slow
        // once per version (calibration + predictor training); drop the queue lock so
        // admissions keep flowing during it.
        drop(st);
        let planner = shared.planner_for(&handle);
        st = crate::lock_mx(&shared.state);
        sweep_expired(shared, &mut st, Instant::now());
        if st.pending.is_empty() {
            continue; // another worker drained the queue while we planned
        }

        let level = shared.metrics.faults.brownout_level.load(Ordering::Relaxed).min(255) as u8;
        let now = Instant::now();
        let oldest = &st.pending[0];
        let anchor_len = oldest.input.shape()[1];
        let target = planner.target(anchor_len, shared.config.max_batch, level);
        let matching = st.pending.iter().filter(|p| p.input.shape()[1] == anchor_len).count();
        let fill_by = oldest.enqueued + shared.config.linger;
        // Close early once the oldest request's slack can only just cover one batch's
        // compute: estimated at the target size — the worst batch we might run.
        let compute = planner.budget.estimated_compute(
            &planner.memory,
            target,
            anchor_len,
            planner.groups_for(anchor_len),
        );
        let close_by = oldest.slo_deadline.checked_sub(compute).unwrap_or(oldest.enqueued);
        let slo_pressed = now >= close_by;
        let ready = matching >= target
            || now >= fill_by
            || slo_pressed
            || shared.shutdown.load(Ordering::Acquire);
        if !ready {
            let mut wake_at = fill_by.min(close_by);
            if let Some(hd) = st.pending.iter().filter_map(|p| p.hard_deadline).min() {
                wake_at = wake_at.min(hd); // wake in time to cancel, not just to batch
            }
            let timeout = wake_at.saturating_duration_since(now);
            st = crate::wait_cv_timeout(&shared.work_cv, st, timeout);
            continue;
        }

        // Close the batch through the training engine's length-bucketed batcher over
        // the live queue (shuffle off: FIFO order within each length bucket is
        // preserved, so same-length requests of one tenant are served in submission
        // order). The chosen batch is the one holding the oldest request — index 0.
        let lengths: Vec<usize> = st.pending.iter().map(|p| p.input.shape()[1]).collect();
        let mut rng = SeedableRng64::seed_from_u64(0); // shuffle off: never consulted
        let batches = batch_indices_by_length(
            &lengths,
            |len| planner.target(len, shared.config.max_batch, level),
            false,
            &mut rng,
        );
        let chosen =
            batches.into_iter().find(|b| b.contains(&0)).expect("oldest request is in a batch");
        let early_close = slo_pressed && chosen.len() < target;
        // Extract in descending index order so earlier removals don't shift later ones.
        let mut requests: Vec<Pending> = Vec::with_capacity(chosen.len());
        for &i in chosen.iter().rev() {
            requests.push(st.pending.remove(i).expect("chosen index in bounds"));
        }
        requests.reverse();
        let refs: Vec<&Pending> = requests.iter().collect();
        note_dequeued(&mut st, &shared.metrics, &refs);
        let depth = st.pending.len();
        if depth > 0 {
            // Leftover work: hand it to a sibling worker while we compute.
            shared.work_cv.notify_one();
        }
        drop(st);
        shared.note_queue_depth(depth, now);
        return Some(ClosedBatch { handle, requests, early_close });
    }
}

/// Bookkeeping for requests leaving the queue: tenant queue slices and the depth gauge.
fn note_dequeued(st: &mut QueueState, metrics: &Metrics, leaving: &[&Pending]) {
    for p in leaving {
        if let Some(t) = st.tenants.get_mut(&*p.tenant) {
            t.queued = t.queued.saturating_sub(1);
        }
    }
    metrics.queue_depth.store(st.pending.len() as u64, Ordering::Relaxed);
}

/// Runs one closed batch on its model snapshot and fills every ticket. Kernel
/// parallelism is capped at this worker's share of the machine budget.
///
/// Failure semantics: a forward error or non-finite logits fail every ticket in the
/// batch with a typed error *and* quarantine the model version (rolling traffic back
/// to last-good); a panic anywhere in here unwinds through the drop guards, which
/// answer [`ServeError::Internal`] on every unanswered ticket before the supervisor
/// learns of the crash. Requests whose hard deadline passed during compute are
/// cancelled, never served stale.
fn serve_batch(shared: &Shared, batch: ClosedBatch) {
    let ClosedBatch { handle, requests, early_close } = batch;
    // Chaos injection point: may sleep (slow batch) and may panic (worker crash) —
    // compiled in, armed only inside `chaos::inject` scopes.
    crate::chaos::before_batch();
    let closed_at = Instant::now();
    let samples: Vec<NdArray> = requests.iter().map(|p| p.input.clone()).collect();
    let stacked = stack_samples(&samples);
    drop(samples);
    // The pool is thread-local and with_worker_threads runs the closure inline, so the
    // before/after delta is exactly this batch's arena traffic.
    let pool_before = rita_tensor::pool_stats();
    let logits = with_worker_threads(shared.kernel_cap, || handle.model.try_logits(&stacked));
    crate::reclaim(stacked);
    shared.metrics.record_pool(&pool_before, &rita_tensor::pool_stats());
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared.metrics.batch_size.record(requests.len() as u64);
    if early_close {
        shared.metrics.early_closes.fetch_add(1, Ordering::Relaxed);
    }
    let logits = match logits {
        Ok(logits) => logits,
        Err(e) => {
            note_model_fault(shared, handle.version);
            for p in &requests {
                let err = match &e {
                    crate::InferError::Rejected(report) => ServeError::Rejected(report.clone()),
                    other => ServeError::Infer(other.clone()),
                };
                p.tenant_metrics.failed.fetch_add(1, Ordering::Relaxed);
                p.answer(Err(err));
            }
            return;
        }
    };
    // Chaos injection point: replaces the batch output with NaN when armed.
    let logits = crate::chaos::poison_logits(logits);
    // Non-finite logits mean the model (or a kernel) is damaged: failing the batch is
    // not enough — quarantine the version so traffic rolls back to last-good.
    let flat = logits.materialize();
    if !flat.as_slice().iter().all(|v| v.is_finite()) {
        note_model_fault(shared, handle.version);
        let detail = format!("model v{} produced non-finite logits", handle.version);
        for p in &requests {
            p.tenant_metrics.failed.fetch_add(1, Ordering::Relaxed);
            p.answer(Err(ServeError::Internal { detail: detail.clone() }));
        }
        crate::reclaim(flat);
        crate::reclaim(logits);
        return;
    }
    crate::reclaim(flat);
    let classes = logits.argmax_last();
    let done = Instant::now();
    // A fully computed batch is the breaker's recovery signal. Record it *before*
    // delivering answers: a client that just received a success must not race a
    // stale half-open state on its next submit.
    shared.breaker_on_success();
    for (i, p) in requests.iter().enumerate() {
        // Hard deadline re-check after compute: a slow batch must cancel, not serve
        // stale ("never silently served stale").
        if let Some(hd) = p.hard_deadline {
            if done >= hd {
                shared.metrics.faults.deadline_expired.fetch_add(1, Ordering::Relaxed);
                p.tenant_metrics.failed.fetch_add(1, Ordering::Relaxed);
                p.answer(Err(ServeError::DeadlineExceeded {
                    late_by: done.saturating_duration_since(hd),
                }));
                continue;
            }
        }
        let row = logits.index_axis(0, i).expect("logits row").materialize();
        shared.metrics.record_served(
            &p.tenant_metrics,
            done.saturating_duration_since(p.enqueued),
            closed_at.saturating_duration_since(p.enqueued),
        );
        p.answer(Ok(ServedResponse {
            class: classes[i],
            logits: row.as_slice().to_vec(),
            model_version: handle.version,
        }));
    }
    crate::reclaim(logits);
}
