//! The continuous-batching multi-tenant serving core.
//!
//! [`Server`] turns `rita-infer` from a blocking library call into a service: requests
//! from many tenants land in one MPSC queue, N worker threads drain it continuously,
//! and every drained batch runs on an `Arc` snapshot of the [`ModelRegistry`]'s
//! current checkpoint — hot-swap and rollback are atomic per batch, zero-copy per
//! worker (PR-1 tensor sharing makes the snapshot free).
//!
//! ## Continuous batching under a latency SLO
//!
//! The batcher reuses the training engine's length-bucketed batcher
//! (`batch_indices_by_length`) over the live queue: the oldest queued request anchors
//! the next batch, and the batch's target size is the §5.2 predictor `B = f(L, N)` —
//! the same model that spends a *memory* budget during training, here trained against
//! the *latency* budget `slo × compute_fraction` through a calibrated byte throughput
//! (see `rita_core::scheduler::latency`). A batch closes when it reaches its target,
//! when the batching window (`linger`) expires, or **early** when the oldest request
//! approaches its SLO deadline — a request never waits for batch-mates it cannot
//! afford.
//!
//! ## Admission control
//!
//! Per-tenant token buckets (rate + burst) and queue-depth bounds shed load *at
//! admission* with a typed [`ServeError::Overloaded`] instead of letting queues grow
//! unbounded; requests with NaN/infinite values are rejected there too
//! (`RequestError::NonFinite`), before they can poison a mixed-tenant batch.
//!
//! ## Worker-pool budget sharing
//!
//! Each worker caps its inner kernel parallelism at `worker_budget() / workers` via
//! `with_worker_threads` (the PR-2 budget-sharing pattern), so N serving workers × M
//! kernel threads never multiply past the machine budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rita_core::scheduler::{BatchSizePredictor, LatencyBudget, MemoryModel};
use rita_data::batch::{batch_indices_by_length, stack_samples};
use rita_tensor::{with_worker_threads, worker_budget, NdArray, SeedableRng64};

use crate::metrics::{Metrics, TenantMetrics};
use crate::model::InferModel;
use crate::registry::{ModelHandle, ModelRegistry};
use crate::session::{validate_request, RequestError};

/// Admission policy for one tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantPolicy {
    /// Sustained admission rate in requests/second (`None` = unlimited). Enforced by a
    /// token bucket refilled continuously.
    pub rate_per_sec: Option<f64>,
    /// Bucket capacity: how many requests may burst above the sustained rate.
    pub burst: f64,
    /// Most requests this tenant may have queued at once; beyond it, submissions shed
    /// with [`ShedReason::TenantQueueFull`].
    pub max_queue_depth: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self { rate_per_sec: None, burst: 16.0, max_queue_depth: 256 }
    }
}

/// Tunables of the serving core.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the queue. Each holds an `Arc` view of the current
    /// model per batch and caps its kernel parallelism at its share of
    /// `worker_budget()`.
    pub workers: usize,
    /// Hard cap on any batch, over and above the predictor's target.
    pub max_batch: usize,
    /// Per-request latency SLO: the deadline a request receives at admission.
    pub slo: Duration,
    /// Fraction of the SLO one batch's compute may spend; the batcher closes a batch
    /// early once the oldest request's remaining slack shrinks to this slice.
    pub compute_fraction: f32,
    /// Longest a batch waits for same-length batch-mates before closing under target.
    pub linger: Duration,
    /// Global queue bound; beyond it submissions shed with [`ShedReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Policy applied to tenants without an explicit [`Server::set_tenant_policy`].
    pub default_policy: TenantPolicy,
    /// Calibrated serving throughput in cost-model bytes/second. `None` measures it at
    /// startup by timing a probe forward of the current model.
    pub bytes_per_sec: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            slo: Duration::from_millis(250),
            compute_fraction: LatencyBudget::DEFAULT_COMPUTE_FRACTION,
            linger: Duration::from_millis(2),
            max_queue_depth: 1024,
            default_policy: TenantPolicy::default(),
            bytes_per_sec: None,
        }
    }
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty (sustained rate exceeded).
    RateLimited,
    /// The tenant's queue slice is full.
    TenantQueueFull,
    /// The server's global queue is full.
    QueueFull,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Shed by admission control — the typed rejection a client backs off on.
    Overloaded {
        /// The tenant whose request was shed.
        tenant: String,
        /// Which admission bound tripped.
        reason: ShedReason,
    },
    /// Rejected by request validation (shape, length, non-finite values, wrong head).
    Invalid(RequestError),
    /// The forward pass failed — e.g. a malformed checkpoint tensor caught by plan
    /// compilation. Every request in the affected batch receives this error; the
    /// worker thread survives and keeps serving.
    Infer(crate::InferError),
    /// No checkpoint has been published to the registry yet.
    NoModel,
    /// The static analyzer rejected the plan this request would have run on; the full
    /// diagnostic report rides along. With publish-time verification in front, this
    /// only fires if a corrupt plan slips past it for an unprobed shape bucket.
    Rejected(rita_verify::Report),
    /// The server is shutting down and no longer admits requests.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { tenant, reason } => {
                let r = match reason {
                    ShedReason::RateLimited => "rate limited",
                    ShedReason::TenantQueueFull => "tenant queue full",
                    ShedReason::QueueFull => "server queue full",
                };
                write!(f, "overloaded ({r}) for tenant '{tenant}'")
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Infer(e) => write!(f, "forward pass failed: {e}"),
            ServeError::NoModel => write!(f, "no model published"),
            ServeError::Rejected(report) => {
                write!(f, "rejected by static verification: {report}")
            }
            ServeError::ShutDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One served classification answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResponse {
    /// Predicted class (argmax of the logits).
    pub class: usize,
    /// The full logits row, bit-identical to the single-call `InferSession` path.
    pub logits: Vec<f32>,
    /// Registry version of the checkpoint that served this request — every request is
    /// answered by exactly one version, even across a concurrent hot-swap.
    pub model_version: u64,
}

/// A pending answer: `wait` blocks until the worker fills it.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request is served (or failed) and returns the outcome.
    pub fn wait(self) -> Result<ServedResponse, ServeError> {
        let mut done = self.slot.done.lock().expect("ticket lock");
        loop {
            match done.take() {
                Some(result) => return result,
                None => done = self.slot.cv.wait(done).expect("ticket lock"),
            }
        }
    }

    /// Non-blocking poll: the outcome if the request has been served, else `None`
    /// (the ticket stays valid for a later [`Ticket::wait`]).
    pub fn try_wait(&self) -> Option<Result<ServedResponse, ServeError>> {
        self.slot.done.lock().expect("ticket lock").take()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self.slot.done.lock().map(|d| d.is_some()).unwrap_or(false);
        f.debug_struct("Ticket").field("ready", &ready).finish()
    }
}

struct Slot {
    done: Mutex<Option<Result<ServedResponse, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, result: Result<ServedResponse, ServeError>) {
        *self.done.lock().expect("slot lock") = Some(result);
        self.cv.notify_all();
    }
}

/// One queued request.
struct Pending {
    tenant: Arc<str>,
    tenant_metrics: Arc<TenantMetrics>,
    input: NdArray,
    enqueued: Instant,
    deadline: Instant,
    slot: Arc<Slot>,
}

struct TenantState {
    policy: TenantPolicy,
    tokens: f64,
    refilled: Instant,
    queued: usize,
    metrics: Arc<TenantMetrics>,
}

impl TenantState {
    /// Refills the token bucket for elapsed time and tries to take one token.
    fn admit_token(&mut self, now: Instant) -> bool {
        let Some(rate) = self.policy.rate_per_sec else { return true };
        let elapsed = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + elapsed * rate).min(self.policy.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

struct QueueState {
    pending: std::collections::VecDeque<Pending>,
    tenants: HashMap<Arc<str>, TenantState>,
}

/// Per-model-version serve planner: the latency-budget predictor plus the cost model
/// it consults, built once per version and shared by every worker.
struct Planner {
    predictor: BatchSizePredictor,
    budget: LatencyBudget,
    memory: MemoryModel,
    /// Frozen mean scheduler group target (`None` for non-group checkpoints).
    groups: Option<usize>,
}

impl Planner {
    fn build(model: &InferModel, config: &ServerConfig, bytes_per_sec: f64) -> Self {
        let memory = model.memory_model();
        let budget = LatencyBudget {
            slo: config.slo,
            compute_fraction: config.compute_fraction,
            bytes_per_sec,
        };
        let predictor =
            budget.train_predictor(&memory, model.config().max_len.max(2), config.max_batch, 5, 3);
        let groups = model.mean_groups().map(|g| g.round().max(1.0) as usize);
        Self { predictor, budget, memory, groups }
    }

    /// The `N` plugged into `B = f(L, N)`: the checkpoint's frozen mean scheduler
    /// target, or (for non-group attention) the window count — the cost model's
    /// saturation point.
    fn groups_for(&self, len: usize) -> usize {
        self.groups.unwrap_or_else(|| self.memory.windows(len)).max(1)
    }

    /// Target batch size for a length bucket, under the latency budget and the hard cap.
    fn target(&self, len: usize, max_batch: usize) -> usize {
        self.predictor.predict(len, self.groups_for(len)).clamp(1, max_batch.max(1))
    }
}

struct Shared {
    state: Mutex<QueueState>,
    work_cv: Condvar,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    config: ServerConfig,
    planners: Mutex<HashMap<u64, Arc<Planner>>>,
    calibrated: Mutex<Option<f64>>,
    shutdown: AtomicBool,
    /// Kernel-thread share of each worker (`worker_budget() / workers`, at least 1).
    kernel_cap: usize,
}

impl Shared {
    /// The planner for a model version, building (and calibrating, once per server)
    /// on first sight of the version.
    fn planner_for(&self, handle: &ModelHandle) -> Arc<Planner> {
        if let Some(p) = self.planners.lock().expect("planner lock").get(&handle.version) {
            return Arc::clone(p);
        }
        let bytes_per_sec = self.bytes_per_sec(&handle.model);
        let planner = Arc::new(Planner::build(&handle.model, &self.config, bytes_per_sec));
        let mut planners = self.planners.lock().expect("planner lock");
        Arc::clone(planners.entry(handle.version).or_insert(planner))
    }

    /// The configured byte throughput, or a one-time calibration: time a probe forward
    /// and divide the cost model's byte estimate by the measured wall time.
    fn bytes_per_sec(&self, model: &InferModel) -> f64 {
        if let Some(b) = self.config.bytes_per_sec {
            return b;
        }
        let mut calibrated = self.calibrated.lock().expect("calibration lock");
        if let Some(b) = *calibrated {
            return b;
        }
        let config = model.config();
        let len = config.max_len.max(config.window);
        let data: Vec<f32> = (0..config.channels * len).map(|i| (i as f32 * 0.37).sin()).collect();
        let probe =
            NdArray::from_vec(data, &[1, config.channels, len]).expect("probe shape matches data");
        // Warm the arena/dispatch once, then time the faster of two runs (cold-start
        // noise makes the budget too pessimistic otherwise).
        let _ = model.logits(&probe);
        let secs = (0..2)
            .map(|_| {
                let start = Instant::now();
                let out = model.logits(&probe);
                let elapsed = start.elapsed().as_secs_f64();
                crate::reclaim(out);
                elapsed
            })
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        let n = model.mean_groups().map(|g| g.round().max(1.0) as usize).unwrap_or(usize::MAX);
        let bytes = model.memory_model().serve_bytes_for(1, len, n) as f64;
        let b = bytes / secs;
        *calibrated = Some(b);
        b
    }
}

/// The serving core: an admission-controlled request queue over continuous-batching
/// worker threads. See the module docs for the batching and SLO semantics.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts `config.workers` worker threads over `registry`. The registry may still
    /// be empty; submissions are rejected with [`ServeError::NoModel`] until the first
    /// [`ModelRegistry::publish`].
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> Server {
        assert!(config.workers > 0, "a server needs at least one worker");
        assert!(config.max_batch > 0, "max_batch must be positive");
        // Budget sharing (read on the spawning thread, before any worker caps apply):
        // each worker may use its share of the kernel-thread budget, so the serving
        // fan-out and the kernel fan-outs never multiply.
        let kernel_cap = (worker_budget() / config.workers).max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { pending: Default::default(), tenants: HashMap::new() }),
            work_cv: Condvar::new(),
            registry,
            metrics: Arc::new(Metrics::default()),
            config,
            planners: Mutex::new(HashMap::new()),
            calibrated: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            kernel_cap,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rita-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The server's model registry (publish/rollback while serving).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The server's metrics (snapshot any time).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Sets (or replaces) the admission policy of one tenant. Existing queued requests
    /// are unaffected; the token bucket restarts full to `burst`.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        let mut st = self.shared.state.lock().expect("server queue lock");
        let metrics = self.shared.metrics.tenant(tenant);
        let entry = st.tenants.entry(Arc::from(tenant)).or_insert_with(|| TenantState {
            policy,
            tokens: policy.burst.max(1.0),
            refilled: Instant::now(),
            queued: 0,
            metrics,
        });
        entry.policy = policy;
        entry.tokens = entry.tokens.min(policy.burst.max(1.0));
    }

    /// Submits one `(channels, length)` classification request for `tenant`. Returns a
    /// [`Ticket`] immediately; the answer is produced by a worker batch. Rejections
    /// (validation, rate limit, queue bounds) are synchronous and typed.
    pub fn submit(&self, tenant: &str, input: NdArray) -> Result<Ticket, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        let Some(handle) = self.shared.registry.current() else {
            return Err(ServeError::NoModel);
        };
        if handle.model.num_classes().is_none() {
            return Err(ServeError::Invalid(RequestError::WrongHead { requested: "classify" }));
        }
        let tenant_metrics = self.shared.metrics.tenant(tenant);
        if let Err(e) = validate_request(handle.model.config(), 0, &input) {
            tenant_metrics.invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        let now = Instant::now();
        let mut st = self.shared.state.lock().expect("server queue lock");
        // Re-check under the lock: a request enqueued here is guaranteed to be drained
        // by a worker (shutdown drains under this same lock), so a ticket can never be
        // orphaned by a concurrent shutdown.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        if st.pending.len() >= self.shared.config.max_queue_depth {
            self.shared.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::QueueFull,
            });
        }
        let default_policy = self.shared.config.default_policy;
        let key: Arc<str> = Arc::from(tenant);
        let state = st.tenants.entry(Arc::clone(&key)).or_insert_with(|| TenantState {
            policy: default_policy,
            tokens: default_policy.burst.max(1.0),
            refilled: now,
            queued: 0,
            metrics: Arc::clone(&tenant_metrics),
        });
        if state.queued >= state.policy.max_queue_depth {
            state.metrics.shed_depth.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::TenantQueueFull,
            });
        }
        if !state.admit_token(now) {
            state.metrics.shed_rate.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: ShedReason::RateLimited,
            });
        }
        state.queued += 1;
        state.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot { done: Mutex::new(None), cv: Condvar::new() });
        st.pending.push_back(Pending {
            tenant: key,
            tenant_metrics,
            input,
            enqueued: now,
            deadline: now + self.shared.config.slo,
            slot: Arc::clone(&slot),
        });
        self.shared.metrics.queue_depth.store(st.pending.len() as u64, Ordering::Relaxed);
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(Ticket { slot })
    }

    /// Submit-and-wait convenience: the closed-loop client call.
    pub fn classify(&self, tenant: &str, input: NdArray) -> Result<ServedResponse, ServeError> {
        self.submit(tenant, input)?.wait()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("server queue lock").pending.len()
    }

    /// Stops admitting requests, drains the queue (every already-admitted request is
    /// still served), and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// What a worker decided to run: one rectangular batch plus its model snapshot.
struct ClosedBatch {
    handle: ModelHandle,
    requests: Vec<Pending>,
    early_close: bool,
}

/// Drains the queue until shutdown: waits for work, closes batches under the SLO
/// policy, and serves them on the current model snapshot.
fn worker_loop(shared: &Shared) {
    let mut last_version: Option<u64> = None;
    while let Some(batch) = next_batch(shared) {
        if last_version.is_some_and(|v| v != batch.handle.version) {
            shared.metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
        }
        last_version = Some(batch.handle.version);
        serve_batch(shared, batch);
    }
}

/// Blocks until a batch can be closed (returning `None` on drained shutdown).
///
/// The close policy, evaluated under the queue lock against the *oldest* request:
/// its length anchors the bucket, the §5.2 planner sets the bucket's target `B`, and
/// the batch closes as soon as (a) `B` same-length requests are queued, (b) the
/// `linger` window since the oldest enqueue expires, or (c) the oldest request's
/// remaining SLO slack shrinks to the compute slice one batch needs — the early close
/// that keeps tail latencies inside the SLO instead of waiting for batch-mates.
fn next_batch(shared: &Shared) -> Option<ClosedBatch> {
    let mut st: MutexGuard<'_, QueueState> = shared.state.lock().expect("server queue lock");
    loop {
        if st.pending.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                return None;
            }
            st = shared.work_cv.wait(st).expect("server queue lock");
            continue;
        }
        let Some(handle) = shared.registry.current() else {
            // Unreachable in practice (submissions require a model and the registry
            // never unpublishes), but fail the request rather than wedging the queue.
            let p = st.pending.pop_front().expect("non-empty queue");
            note_dequeued(&mut st, &shared.metrics, &[&p]);
            drop(st);
            p.slot.fill(Err(ServeError::NoModel));
            st = shared.state.lock().expect("server queue lock");
            continue;
        };
        // planner_for never blocks on queue work (separate lock), but it can be slow
        // once per version (calibration + predictor training); drop the queue lock so
        // admissions keep flowing during it.
        drop(st);
        let planner = shared.planner_for(&handle);
        st = shared.state.lock().expect("server queue lock");
        if st.pending.is_empty() {
            continue; // another worker drained the queue while we planned
        }

        let now = Instant::now();
        let oldest = &st.pending[0];
        let anchor_len = oldest.input.shape()[1];
        let target = planner.target(anchor_len, shared.config.max_batch);
        let matching = st.pending.iter().filter(|p| p.input.shape()[1] == anchor_len).count();
        let fill_by = oldest.enqueued + shared.config.linger;
        // Close early once the oldest request's slack can only just cover one batch's
        // compute: estimated at the target size — the worst batch we might run.
        let compute = planner.budget.estimated_compute(
            &planner.memory,
            target,
            anchor_len,
            planner.groups_for(anchor_len),
        );
        let close_by = oldest.deadline.checked_sub(compute).unwrap_or(oldest.enqueued);
        let slo_pressed = now >= close_by;
        let ready = matching >= target
            || now >= fill_by
            || slo_pressed
            || shared.shutdown.load(Ordering::Acquire);
        if !ready {
            let wake_at = fill_by.min(close_by);
            let timeout = wake_at.saturating_duration_since(now);
            let (guard, _) = shared.work_cv.wait_timeout(st, timeout).expect("server queue lock");
            st = guard;
            continue;
        }

        // Close the batch through the training engine's length-bucketed batcher over
        // the live queue (shuffle off: FIFO order within each length bucket is
        // preserved, so same-length requests of one tenant are served in submission
        // order). The chosen batch is the one holding the oldest request — index 0.
        let lengths: Vec<usize> = st.pending.iter().map(|p| p.input.shape()[1]).collect();
        let mut rng = SeedableRng64::seed_from_u64(0); // shuffle off: never consulted
        let batches = batch_indices_by_length(
            &lengths,
            |len| planner.target(len, shared.config.max_batch),
            false,
            &mut rng,
        );
        let chosen =
            batches.into_iter().find(|b| b.contains(&0)).expect("oldest request is in a batch");
        let early_close = slo_pressed && chosen.len() < target;
        // Extract in descending index order so earlier removals don't shift later ones.
        let mut requests: Vec<Pending> = Vec::with_capacity(chosen.len());
        for &i in chosen.iter().rev() {
            requests.push(st.pending.remove(i).expect("chosen index in bounds"));
        }
        requests.reverse();
        let refs: Vec<&Pending> = requests.iter().collect();
        note_dequeued(&mut st, &shared.metrics, &refs);
        if !st.pending.is_empty() {
            // Leftover work: hand it to a sibling worker while we compute.
            shared.work_cv.notify_one();
        }
        return Some(ClosedBatch { handle, requests, early_close });
    }
}

/// Bookkeeping for requests leaving the queue: tenant queue slices and the depth gauge.
fn note_dequeued(st: &mut QueueState, metrics: &Metrics, leaving: &[&Pending]) {
    for p in leaving {
        if let Some(t) = st.tenants.get_mut(&*p.tenant) {
            t.queued = t.queued.saturating_sub(1);
        }
    }
    metrics.queue_depth.store(st.pending.len() as u64, Ordering::Relaxed);
}

/// Runs one closed batch on its model snapshot and fills every ticket. Kernel
/// parallelism is capped at this worker's share of the machine budget. A forward
/// failure (malformed checkpoint tensor caught at plan compile, kernel error) fails
/// every ticket in the batch with a typed [`ServeError::Infer`] — the worker survives.
fn serve_batch(shared: &Shared, batch: ClosedBatch) {
    let ClosedBatch { handle, requests, early_close } = batch;
    let closed_at = Instant::now();
    let samples: Vec<NdArray> = requests.iter().map(|p| p.input.clone()).collect();
    let stacked = stack_samples(&samples);
    drop(samples);
    // The pool is thread-local and with_worker_threads runs the closure inline, so the
    // before/after delta is exactly this batch's arena traffic.
    let pool_before = rita_tensor::pool_stats();
    let logits = with_worker_threads(shared.kernel_cap, || handle.model.try_logits(&stacked));
    crate::reclaim(stacked);
    shared.metrics.record_pool(&pool_before, &rita_tensor::pool_stats());
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    shared.metrics.batch_size.record(requests.len() as u64);
    if early_close {
        shared.metrics.early_closes.fetch_add(1, Ordering::Relaxed);
    }
    let logits = match logits {
        Ok(logits) => logits,
        Err(e) => {
            for p in requests {
                let err = match &e {
                    crate::InferError::Rejected(report) => ServeError::Rejected(report.clone()),
                    other => ServeError::Infer(other.clone()),
                };
                p.slot.fill(Err(err));
            }
            return;
        }
    };
    let classes = logits.argmax_last();
    let done = Instant::now();
    for (i, p) in requests.into_iter().enumerate() {
        let row = logits.index_axis(0, i).expect("logits row").materialize();
        shared.metrics.record_served(
            &p.tenant_metrics,
            done.saturating_duration_since(p.enqueued),
            closed_at.saturating_duration_since(p.enqueued),
        );
        p.slot.fill(Ok(ServedResponse {
            class: classes[i],
            logits: row.as_slice().to_vec(),
            model_version: handle.version,
        }));
    }
    crate::reclaim(logits);
}
