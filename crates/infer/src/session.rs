//! The serving session: request batching over a loaded [`InferModel`].
//!
//! Concurrent requests arrive as individual `(channels, length)` series of possibly
//! mixed lengths. The session groups them with the same length-bucketed batcher the
//! training engine uses (`rita_data::batch::batch_indices_by_length`), stacks each
//! bucket into one rectangular batch, runs the planned forward, and scatters the
//! answers back into request order. Activation buffers are recycled through the
//! thread-local arena between batches, so differently-shaped buckets share one working
//! set.

use rand::SeedableRng;
use rita_core::checkpoint::{Checkpoint, CheckpointError};
use rita_data::batch::{batch_indices_by_length, stack_samples};
use rita_tensor::{NdArray, SeedableRng64};

use crate::model::InferModel;

/// Tunables of a serving session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Largest number of same-length requests answered in one stacked batch.
    pub max_batch: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { max_batch: 64 }
    }
}

/// One class prediction for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted class index (argmax of the logits).
    pub class: usize,
}

/// Why a request set was rejected before any compute ran.
///
/// Validation happens up front for the *whole* set: a malformed request never aborts a
/// half-served batch, and the caller learns exactly which request to drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The request is not a rank-2 `(channels, length)` array.
    BadRank {
        /// Index of the offending request.
        index: usize,
        /// Its actual shape.
        shape: Vec<usize>,
    },
    /// The request's channel count does not match the model's.
    WrongChannels {
        /// Index of the offending request.
        index: usize,
        /// Channels the request carries.
        found: usize,
        /// Channels the model expects.
        expected: usize,
    },
    /// The series is shorter than one convolution window or longer than the model's
    /// positional table supports.
    BadLength {
        /// Index of the offending request.
        index: usize,
        /// The request's length in timestamps.
        length: usize,
        /// Accepted length range (inclusive).
        accepted: (usize, usize),
    },
    /// The series carries a NaN or infinite value. Rejected at admission: a single NaN
    /// propagates through every reduction in a stacked forward, poisoning the answers
    /// of the *other* requests sharing the batch mid-flight.
    NonFinite {
        /// Index of the offending request.
        index: usize,
    },
    /// The loaded checkpoint has no head for the requested operation.
    WrongHead {
        /// The operation the caller asked for.
        requested: &'static str,
    },
    /// The planned forward pass itself failed — e.g. a malformed checkpoint tensor
    /// caught by plan compilation. The request set is rejected; nothing panics.
    Infer(crate::InferError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadRank { index, shape } => {
                write!(f, "request {index} is not (channels, length): shape {shape:?}")
            }
            RequestError::WrongChannels { index, found, expected } => {
                write!(f, "request {index} has {found} channels, model expects {expected}")
            }
            RequestError::BadLength { index, length, accepted } => write!(
                f,
                "request {index} has length {length}, model accepts {}..={}",
                accepted.0, accepted.1
            ),
            RequestError::NonFinite { index } => {
                write!(f, "request {index} carries a NaN or infinite value")
            }
            RequestError::WrongHead { requested } => {
                write!(f, "checkpoint has no head for '{requested}'")
            }
            RequestError::Infer(e) => write!(f, "forward pass failed: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Validates one `(channels, length)` request against a model's architecture: rank 2,
/// matching channel count, length within `[window, max_len]`, every value finite. The
/// single checkpoint both the session's set validation and the server's per-request
/// admission control go through — `index` only labels the error.
pub(crate) fn validate_request(
    config: &rita_core::model::RitaConfig,
    index: usize,
    r: &NdArray,
) -> Result<(), RequestError> {
    let shape = r.shape();
    if shape.len() != 2 {
        return Err(RequestError::BadRank { index, shape: shape.to_vec() });
    }
    if shape[0] != config.channels {
        return Err(RequestError::WrongChannels {
            index,
            found: shape[0],
            expected: config.channels,
        });
    }
    let accepted = (config.window, config.max_len);
    if shape[1] < accepted.0 || shape[1] > accepted.1 {
        return Err(RequestError::BadLength { index, length: shape[1], accepted });
    }
    // One linear scan at admission beats one NaN silently spreading through the
    // shared reductions (softmax, layer-norm means) of a stacked mixed-tenant batch.
    let finite = if r.is_contiguous() {
        r.as_slice().iter().all(|v| v.is_finite())
    } else {
        r.materialize().as_slice().iter().all(|v| v.is_finite())
    };
    if !finite {
        return Err(RequestError::NonFinite { index });
    }
    Ok(())
}

/// A loaded model plus batching state — the object a server holds per worker thread.
pub struct InferSession {
    model: InferModel,
    config: SessionConfig,
}

impl InferSession {
    /// Wraps an already-loaded model.
    pub fn new(model: InferModel) -> Self {
        Self { model, config: SessionConfig::default() }
    }

    /// Loads a checkpoint and wraps it in a session.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        Ok(Self::new(InferModel::from_checkpoint(ckpt)?))
    }

    /// Replaces the session tunables.
    pub fn with_config(mut self, config: SessionConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        self.config = config;
        self
    }

    /// The loaded model.
    pub fn model(&self) -> &InferModel {
        &self.model
    }

    /// Validates every request up front: rank 2, matching channel count, length within
    /// `[window, max_len]`, all values finite. Nothing is computed when any request is
    /// malformed, so a bad request can never abort (or poison) a half-served batch.
    fn validate(&self, requests: &[NdArray]) -> Result<(), RequestError> {
        for (index, r) in requests.iter().enumerate() {
            validate_request(self.model.config(), index, r)?;
        }
        Ok(())
    }

    /// Answers a set of concurrent classification requests (each `(channels, length)`,
    /// lengths may differ) in request order. Requests are grouped into rectangular
    /// length-bucketed batches of at most `max_batch` before the forward pass. The
    /// whole set is validated first — a malformed request rejects the call without
    /// running any compute.
    pub fn classify(&self, requests: &[NdArray]) -> Result<Vec<Prediction>, RequestError> {
        if self.model.num_classes().is_none() {
            return Err(RequestError::WrongHead { requested: "classify" });
        }
        self.validate(requests)?;
        let mut out = vec![Prediction { class: 0 }; requests.len()];
        for (indices, logits) in self.bucketed(requests, |batch| self.model.try_logits(batch)) {
            let logits = logits.map_err(RequestError::Infer)?;
            for (row, &req) in logits.argmax_last().iter().zip(&indices) {
                out[req] = Prediction { class: *row };
            }
            crate::reclaim(logits);
        }
        Ok(out)
    }

    /// Class logits for a set of concurrent requests, in request order (one `(classes,)`
    /// row per request).
    pub fn classify_logits(&self, requests: &[NdArray]) -> Result<Vec<NdArray>, RequestError> {
        if self.model.num_classes().is_none() {
            return Err(RequestError::WrongHead { requested: "classify" });
        }
        self.validate(requests)?;
        let mut out: Vec<Option<NdArray>> = vec![None; requests.len()];
        for (indices, logits) in self.bucketed(requests, |batch| self.model.try_logits(batch)) {
            let logits = logits.map_err(RequestError::Infer)?;
            for (i, &req) in indices.iter().enumerate() {
                out[req] = Some(logits.index_axis(0, i).expect("logits row").materialize());
            }
            crate::reclaim(logits);
        }
        Ok(out.into_iter().map(|o| o.expect("every request answered")).collect())
    }

    /// Reconstructs a set of (masked) series in request order.
    pub fn reconstruct(&self, requests: &[NdArray]) -> Result<Vec<NdArray>, RequestError> {
        if !self.model.has_decoder() {
            return Err(RequestError::WrongHead { requested: "reconstruct" });
        }
        self.validate(requests)?;
        let mut out: Vec<Option<NdArray>> = vec![None; requests.len()];
        for (indices, recon) in self.bucketed(requests, |batch| self.model.try_reconstruct(batch)) {
            let recon = recon.map_err(RequestError::Infer)?;
            for (i, &req) in indices.iter().enumerate() {
                out[req] = Some(recon.index_axis(0, i).expect("recon row").materialize());
            }
            crate::reclaim(recon);
        }
        Ok(out.into_iter().map(|o| o.expect("every request answered")).collect())
    }

    /// Runs `f` over length-bucketed stacked batches of `requests`, yielding each
    /// bucket's request indices alongside the batch result.
    fn bucketed<'a>(
        &'a self,
        requests: &'a [NdArray],
        f: impl Fn(&NdArray) -> Result<NdArray, crate::InferError> + 'a,
    ) -> impl Iterator<Item = (Vec<usize>, Result<NdArray, crate::InferError>)> + 'a {
        let lengths: Vec<usize> = requests.iter().map(|r| r.shape()[1]).collect();
        // Deterministic bucketing (shuffle off): the rng is never consulted.
        let mut rng = SeedableRng64::seed_from_u64(0);
        let batches = batch_indices_by_length(&lengths, |_| self.config.max_batch, false, &mut rng);
        batches.into_iter().map(move |indices| {
            let samples: Vec<NdArray> = indices.iter().map(|&i| requests[i].clone()).collect();
            let batch = stack_samples(&samples);
            let result = f(&batch);
            crate::reclaim(batch);
            (indices, result)
        })
    }
}
