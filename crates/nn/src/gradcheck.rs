//! Finite-difference gradient checking, used by tests throughout the workspace to verify
//! that custom backward implementations (group softmax composition, attention blocks,
//! convolution embeddings) are correct.

use crate::var::Var;
use rita_tensor::NdArray;

/// Result of a gradient check: the largest absolute and relative deviation observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (normalised by the numeric magnitude + 1e-6).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// `true` when both deviations are below the given tolerances.
    pub fn passes(&self, atol: f32, rtol: f32) -> bool {
        self.max_abs_err <= atol || self.max_rel_err <= rtol
    }
}

/// Checks the analytic gradient of `f` at `x0` against central finite differences.
///
/// `f` must map a single input [`Var`] to a scalar [`Var`]. Because the whole stack runs
/// in `f32`, tolerances of `atol ≈ 1e-2` with `eps ≈ 1e-2` are typical for composite
/// functions; tighter checks are possible for simple ops.
pub fn gradcheck(f: impl Fn(&Var) -> Var, x0: &NdArray, eps: f32) -> GradCheckReport {
    let x = Var::parameter(x0.clone());
    let y = f(&x);
    assert_eq!(y.len(), 1, "gradcheck requires a scalar-valued function");
    y.backward();
    let analytic = x.grad().unwrap_or_else(|| NdArray::zeros(x0.shape()));

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x0.clone();
        minus.as_mut_slice()[i] -= eps;
        let fp = f(&Var::constant(plus)).item();
        let fm = f(&Var::constant(minus)).item();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / (numeric.abs() + 1e-6);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradcheck_passes_for_correct_gradient() {
        let x0 = NdArray::from_slice(&[0.3, -0.8, 1.2, 0.05]);
        let report = gradcheck(|x| x.tanh().square().sum_all(), &x0, 1e-3);
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn gradcheck_detects_wrong_gradient() {
        // Deliberately wrong "gradient": define y = sum(x) but scale the backward by
        // detaching and re-attaching incorrectly — simplest way is to compare against a
        // different function: use f(x) = sum(2x) analytically but numeric of sum(x).
        let x0 = NdArray::from_slice(&[1.0, 2.0]);
        // Build a function whose analytic grad is 2 but we check numerically against the
        // same function, so it passes; then a mismatched pair must fail:
        let x = Var::parameter(x0.clone());
        x.scale(2.0).sum_all().backward();
        let analytic = x.grad().unwrap();
        // numeric gradient of sum(x) is 1.0 everywhere — deviation must be caught
        let numeric = NdArray::ones(&[2]);
        let max_abs = analytic
            .as_slice()
            .iter()
            .zip(numeric.as_slice())
            .map(|(a, n)| (a - n).abs())
            .fold(0.0f32, f32::max);
        assert!(max_abs > 0.5);
    }

    #[test]
    fn gradcheck_composite_matmul_softmax() {
        let x0 = NdArray::from_vec(vec![0.1, -0.4, 0.7, 0.3, -0.2, 0.5], &[2, 3]).unwrap();
        let w = NdArray::from_vec(vec![0.5, -1.0, 0.2, 0.9, 1.1, -0.3], &[3, 2]).unwrap();
        let report = gradcheck(
            |x| x.matmul(&Var::constant(w.clone())).softmax_last().square().sum_all(),
            &x0,
            1e-2,
        );
        assert!(report.passes(2e-2, 5e-2), "{report:?}");
    }
}
