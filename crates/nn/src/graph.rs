//! A small static graph IR for the RITA forward pass: one graph, two interpreters.
//!
//! The training module tree *emits* this graph once (node IDs are the dot-separated
//! parameter paths the [`crate::module`] visitors already produce), a topological
//! scheduler orders it, and [`Graph::compile`] runs an ahead-of-time shape and lifetime
//! pass per `(batch, length)` bucket so the executor knows, before the first kernel
//! runs, every activation's shape, its last use, and the exact arena of buffer
//! capacities the whole pass needs.
//!
//! The IR is deliberately tiny: single-output nodes, a fixed op vocabulary covering the
//! RITA forward (window embedding, encoder layers with four attention variants, task
//! heads), and values that are either the run input, a named parameter, a deterministic
//! table, or a node output. Interpreters live downstream: `rita-core` walks a plan with
//! `no_grad` [`crate::Var`] ops (the exactness oracle), `rita-infer` walks the same
//! plan with raw `NdArray` kernels (the serving path). Because both execute the same
//! schedule over the same kernels, their outputs are bit-identical by construction.

use std::collections::HashSet;

/// Index of a value slot in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueId(pub usize);

/// Where a graph value comes from when no node produces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// The run's input batch, shaped `(batch, channels, length)`.
    Input,
    /// A named parameter or buffer from the checkpoint / module tree.
    Param {
        /// Dot-separated path in the module-visitor grammar, e.g.
        /// `model.encoder.layers.0.q_proj.weight`.
        path: String,
        /// Whether the plan tolerates the tensor being absent (e.g. an optional bias).
        optional: bool,
    },
    /// A deterministic table rebuilt from the config rather than checkpointed (the
    /// sinusoidal positional table), looked up by the value's name.
    Positional,
}

/// One value slot: the input, a parameter, a table, or a node output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInfo {
    /// Human-readable name: the producing node's ID, or the binding's path.
    pub name: String,
    /// External binding; `None` when a node produces this value.
    pub binding: Option<Binding>,
}

/// The attention mechanism a [`Op::Attention`] node runs, with the per-layer
/// constants frozen at graph-emission time (the checkpoint's scheduler state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttnOp {
    /// Exact softmax attention.
    Vanilla,
    /// RITA group attention with a frozen scheduler target.
    Group {
        /// The persisted scheduler target (fractional; rounded then clamped per batch).
        n_groups: f32,
        /// Lower clamp on the effective group count.
        min_groups: usize,
        /// K-means refinement iterations per forward.
        kmeans_iters: usize,
    },
    /// FAVOR+ random-feature attention; expects an `omega` parameter input.
    Performer {
        /// Number of random features (second dim of `omega`).
        features: usize,
    },
    /// Low-rank projected attention; expects `e_proj`/`f_proj` parameter inputs.
    Linformer {
        /// Columns of the projection matrices — the largest window count supported.
        max_windows: usize,
    },
}

/// The op vocabulary. Fused ops ([`Op::Linear`], [`Op::WindowEmbed`]) are produced by
/// [`Graph::peephole`] and run the same kernel sequence as the chains they replace, so
/// fusion never changes bits — only node and slot count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `inputs: [x, w]` — (batched, broadcasting) matrix product.
    Matmul,
    /// `inputs: [y, b]` — add a rank-1 bias over the last axis.
    AddBias,
    /// `inputs: [x, w]` or `[x, w, b]` — fused matmul + optional bias.
    Linear {
        /// Whether the node carries a bias input.
        bias: bool,
    },
    /// `inputs: [x]` — slide windows over `(batch, channels, length)`.
    Unfold1d {
        /// Window width in timestamps.
        window: usize,
        /// Window stride in timestamps.
        stride: usize,
    },
    /// `inputs: [x, w]` or `[x, w, b]` — fused unfold + window projection (the
    /// time-aware convolution as one node).
    WindowEmbed {
        /// Window width in timestamps.
        window: usize,
        /// Window stride in timestamps.
        stride: usize,
        /// Whether the node carries a bias input.
        bias: bool,
    },
    /// `inputs: [embedded, cls, pos]` — prepend the broadcast `[CLS]` token and add
    /// positional encodings.
    ClsConcatPos,
    /// `inputs: [x, gamma, beta]` — layer normalisation over the last axis.
    LayerNorm {
        /// Numerical-stability epsilon added to the variance.
        eps: f32,
    },
    /// `inputs: [x]` — tanh-approximation GELU.
    Gelu,
    /// `inputs: [a, b]` — broadcasting elementwise add (residual connections).
    Add,
    /// `inputs: [x]` — `(b, n, d) → (b, heads, n, d/heads)`; a pure view.
    SplitHeads {
        /// Number of attention heads.
        heads: usize,
    },
    /// `inputs: [x]` — `(b, h, n, dh) → (b, n, h·dh)`; materialises.
    MergeHeads,
    /// `inputs: [q, k, v, ...mechanism params]` — one attention mechanism.
    Attention(AttnOp),
    /// `inputs: [h]` — extract the `[CLS]` row: `(b, n, d) → (b, d)`.
    ClsPool,
    /// `inputs: [h]` — drop the `[CLS]` row: `(b, n, d) → (b, n-1, d)`; a pure view.
    SliceWindows,
    /// `inputs: [w]` — overlap-add windows back to `(b, channels, length)`; the output
    /// length is the plan's input length.
    Fold1d {
        /// Number of series channels.
        channels: usize,
        /// Window width in timestamps.
        window: usize,
        /// Window stride in timestamps.
        stride: usize,
    },
}

impl Op {
    /// Which input (if any) the output aliases without allocating — pure view ops.
    /// The lifetime pass keeps an aliased base's arena slot live until every view of
    /// it is past its own last use.
    pub fn aliases_input(&self) -> Option<usize> {
        match self {
            Op::SplitHeads { .. } | Op::SliceWindows => Some(0),
            _ => None,
        }
    }

    /// Infers the output shape from input shapes, or explains why they are
    /// inconsistent. `input_shape` is the plan's graph input (needed by
    /// [`Op::Fold1d`], whose output length is not derivable from its input alone).
    pub fn infer_shape(
        &self,
        inputs: &[&[usize]],
        input_shape: &[usize],
    ) -> Result<Vec<usize>, String> {
        match self {
            Op::Matmul => {
                let [x, w] = expect_inputs::<2>(inputs)?;
                matmul_shape(x, w)
            }
            Op::AddBias => {
                let [y, b] = expect_inputs::<2>(inputs)?;
                check_bias(y, b)?;
                Ok(y.to_vec())
            }
            Op::Linear { bias } => {
                let (x, w) = if *bias {
                    let [x, w, b] = expect_inputs::<3>(inputs)?;
                    let out = matmul_shape(x, w)?;
                    check_bias(&out, b)?;
                    (x, w)
                } else {
                    let [x, w] = expect_inputs::<2>(inputs)?;
                    (x, w)
                };
                matmul_shape(x, w)
            }
            Op::Unfold1d { window, stride } => {
                let [x] = expect_inputs::<1>(inputs)?;
                unfold_shape(x, *window, *stride)
            }
            Op::WindowEmbed { window, stride, bias } => {
                let (x, w, b) = if *bias {
                    let [x, w, b] = expect_inputs::<3>(inputs)?;
                    (x, w, Some(b))
                } else {
                    let [x, w] = expect_inputs::<2>(inputs)?;
                    (x, w, None)
                };
                let unfolded = unfold_shape(x, *window, *stride)?;
                let out = matmul_shape(&unfolded, w)?;
                if let Some(b) = b {
                    check_bias(&out, b)?;
                }
                Ok(out)
            }
            Op::ClsConcatPos => {
                let [e, cls, pos] = expect_inputs::<3>(inputs)?;
                if e.len() != 3 {
                    return Err(format!("embedded input must be rank 3, got {e:?}"));
                }
                let (b, n, d) = (e[0], e[1], e[2]);
                if cls != [d] {
                    return Err(format!("cls shape {cls:?} does not match d_model {d}"));
                }
                if pos.len() != 2 || pos[1] != d {
                    return Err(format!("positional table {pos:?} does not match d_model {d}"));
                }
                if n + 1 > pos[0] {
                    return Err(format!(
                        "{n} windows need {} positional rows, table has {}",
                        n + 1,
                        pos[0]
                    ));
                }
                Ok(vec![b, n + 1, d])
            }
            Op::LayerNorm { .. } => {
                let [x, gamma, beta] = expect_inputs::<3>(inputs)?;
                let last = *x.last().ok_or("layer-norm input must have at least one axis")?;
                if gamma != [last] || beta != [last] {
                    return Err(format!(
                        "gamma {gamma:?} / beta {beta:?} do not match last axis {last}"
                    ));
                }
                Ok(x.to_vec())
            }
            Op::Gelu => {
                let [x] = expect_inputs::<1>(inputs)?;
                Ok(x.to_vec())
            }
            Op::Add => {
                let [a, b] = expect_inputs::<2>(inputs)?;
                broadcast_shapes(a, b).ok_or_else(|| format!("cannot broadcast {a:?} with {b:?}"))
            }
            Op::SplitHeads { heads } => {
                let [x] = expect_inputs::<1>(inputs)?;
                if x.len() != 3 {
                    return Err(format!("split-heads input must be rank 3, got {x:?}"));
                }
                if *heads == 0 || x[2] % heads != 0 {
                    return Err(format!("d_model {} not divisible by {heads} heads", x[2]));
                }
                Ok(vec![x[0], *heads, x[1], x[2] / heads])
            }
            Op::MergeHeads => {
                let [x] = expect_inputs::<1>(inputs)?;
                if x.len() != 4 {
                    return Err(format!("merge-heads input must be rank 4, got {x:?}"));
                }
                Ok(vec![x[0], x[2], x[1] * x[3]])
            }
            Op::Attention(attn) => attention_shape(attn, inputs),
            Op::ClsPool => {
                let [h] = expect_inputs::<1>(inputs)?;
                if h.len() != 3 {
                    return Err(format!("cls-pool input must be rank 3, got {h:?}"));
                }
                Ok(vec![h[0], h[2]])
            }
            Op::SliceWindows => {
                let [h] = expect_inputs::<1>(inputs)?;
                if h.len() != 3 || h[1] < 2 {
                    return Err(format!(
                        "slice-windows input must be rank 3 with n ≥ 2, got {h:?}"
                    ));
                }
                Ok(vec![h[0], h[1] - 1, h[2]])
            }
            Op::Fold1d { channels, window, stride } => {
                let [w] = expect_inputs::<1>(inputs)?;
                if input_shape.len() != 3 {
                    return Err(format!("fold input shape must be rank 3, got {input_shape:?}"));
                }
                let length = input_shape[2];
                if w.len() != 3 || w[2] != channels * window {
                    return Err(format!(
                        "fold windows {w:?} do not match channels·window = {}",
                        channels * window
                    ));
                }
                let expected = windows_count(length, *window, *stride)?;
                if w[1] != expected {
                    return Err(format!(
                        "fold got {} windows, length {length} yields {expected}",
                        w[1]
                    ));
                }
                Ok(vec![w[0], *channels, length])
            }
        }
    }
}

fn expect_inputs<'a, const N: usize>(inputs: &[&'a [usize]]) -> Result<[&'a [usize]; N], String> {
    <[&[usize]; N]>::try_from(inputs)
        .map_err(|_| format!("expected {N} inputs, got {}", inputs.len()))
}

fn check_bias(out: &[usize], b: &[usize]) -> Result<(), String> {
    let last = *out.last().ok_or("bias target must have at least one axis")?;
    if b != [last] {
        return Err(format!("bias shape {b:?} does not match output axis {last}"));
    }
    Ok(())
}

fn windows_count(length: usize, window: usize, stride: usize) -> Result<usize, String> {
    if length < window {
        return Err(format!("length {length} shorter than window {window}"));
    }
    Ok((length - window) / stride.max(1) + 1)
}

fn unfold_shape(x: &[usize], window: usize, stride: usize) -> Result<Vec<usize>, String> {
    if x.len() != 3 {
        return Err(format!("unfold input must be (batch, channels, length), got {x:?}"));
    }
    let n = windows_count(x[2], window, stride)?;
    Ok(vec![x[0], n, x[1] * window])
}

/// NumPy-style right-aligned broadcast of two shapes.
fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let n = a.len().max(b.len());
    let mut out = vec![0usize; n];
    for i in 0..n {
        let x = if i < n - a.len() { 1 } else { a[i - (n - a.len())] };
        let y = if i < n - b.len() { 1 } else { b[i - (n - b.len())] };
        out[i] = if x == y || y == 1 {
            x
        } else if x == 1 {
            y
        } else {
            return None;
        };
    }
    Some(out)
}

/// Batched matmul shape: broadcast leading dims, contract the inner pair.
fn matmul_shape(a: &[usize], b: &[usize]) -> Result<Vec<usize>, String> {
    if a.len() < 2 || b.len() < 2 {
        return Err(format!("matmul operands must be at least rank 2: {a:?} × {b:?}"));
    }
    let (am, ak) = (a[a.len() - 2], a[a.len() - 1]);
    let (bk, bn) = (b[b.len() - 2], b[b.len() - 1]);
    if ak != bk {
        return Err(format!("matmul inner dims differ: {a:?} × {b:?}"));
    }
    let mut out = broadcast_shapes(&a[..a.len() - 2], &b[..b.len() - 2])
        .ok_or_else(|| format!("matmul batch dims do not broadcast: {a:?} × {b:?}"))?;
    out.push(am);
    out.push(bn);
    Ok(out)
}

fn attention_shape(attn: &AttnOp, inputs: &[&[usize]]) -> Result<Vec<usize>, String> {
    if inputs.len() < 3 {
        return Err(format!("attention expects q, k, v; got {} inputs", inputs.len()));
    }
    let (q, k, v) = (inputs[0], inputs[1], inputs[2]);
    if q.len() != 4 {
        return Err(format!("attention inputs must be rank 4, got q {q:?}"));
    }
    if k != q || v != q {
        return Err(format!("q {q:?}, k {k:?}, v {v:?} must agree"));
    }
    let (n, dh) = (q[2], q[3]);
    match attn {
        AttnOp::Vanilla | AttnOp::Group { .. } => {
            if inputs.len() != 3 {
                return Err(format!("mechanism takes no parameters, got {}", inputs.len() - 3));
            }
        }
        AttnOp::Performer { features } => {
            let [omega] = expect_inputs::<1>(&inputs[3..])?;
            if omega != [dh, *features] {
                return Err(format!(
                    "omega shape {omega:?} does not match (head_dim {dh}, features {features})"
                ));
            }
        }
        AttnOp::Linformer { max_windows } => {
            let [e, f] = expect_inputs::<2>(&inputs[3..])?;
            if e.len() != 2 || e[1] != *max_windows || f != e {
                return Err(format!(
                    "projections e {e:?} / f {f:?} do not match max_windows {max_windows}"
                ));
            }
            if n > *max_windows {
                return Err(format!("{n} windows exceed the projection's {max_windows}"));
            }
        }
    }
    Ok(q.to_vec())
}

/// One computation step: an op reading value slots and writing exactly one.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Stable ID in the parameter-path grammar (e.g. `model.encoder.layers.0.norm1`).
    pub id: String,
    /// The operation.
    pub op: Op,
    /// Value slots read, in op-defined order.
    pub inputs: Vec<ValueId>,
    /// The single value slot written.
    pub output: ValueId,
}

/// The static forward graph: values, nodes, and the distinguished input/outputs.
#[derive(Debug, Clone)]
pub struct Graph {
    /// All value slots; [`ValueId`]s index into this.
    pub values: Vec<ValueInfo>,
    /// All nodes, in emission order (already topological for an emitted graph).
    pub nodes: Vec<Node>,
    /// The run input value.
    pub input: ValueId,
    /// The task output value (logits / reconstruction / encoder states).
    pub output: ValueId,
    /// The encoder-stack output — lets `encode()` run a prefix of the same plan.
    pub encoder_output: ValueId,
}

/// Why a graph failed to compile into a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The graph has a cycle (names one node on it).
    Cycle(String),
    /// A parameter the graph binds was not provided.
    MissingParam(String),
    /// A node's input shapes are inconsistent — e.g. a malformed checkpoint tensor.
    Shape {
        /// ID of the failing node.
        node: String,
        /// What went wrong.
        detail: String,
    },
    /// A node reads a value that nothing binds or produces.
    UnknownInput {
        /// ID of the reading node.
        node: String,
        /// Name of the unbound value.
        value: String,
    },
    /// Two nodes share the same ID (names the repeated ID).
    DuplicateNode(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Cycle(node) => write!(f, "graph has a cycle through node '{node}'"),
            PlanError::MissingParam(path) => write!(f, "missing parameter '{path}'"),
            PlanError::Shape { node, detail } => write!(f, "node '{node}': {detail}"),
            PlanError::UnknownInput { node, value } => {
                write!(f, "node '{node}' reads unbound value '{value}'")
            }
            PlanError::DuplicateNode(id) => write!(f, "duplicate node id '{id}'"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled execution plan for one `(batch, length)` shape bucket: schedule, every
/// value's shape, last uses, and the exact arena of buffer capacities the pass needs.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Node indices in execution order.
    pub order: Vec<usize>,
    /// Shape per value (empty for values the plan never touches).
    pub shapes: Vec<Vec<usize>>,
    /// For each value, the schedule position of its final read, if any. A
    /// node-produced value may be recycled the moment its last read completes.
    pub last_use: Vec<Option<usize>>,
    /// Slot capacities **in bytes** of the planned activation arena — feed to
    /// `rita_tensor::pool_reserve` so every major activation is a pool hit from the
    /// first request. Byte-denominated so mixed-precision executors (f32 activations
    /// today, narrower dtypes behind the `Precision` knob) share one sizing currency
    /// with the pool. Kernel-internal scratch still falls back to best-fit.
    pub arena: Vec<usize>,
    /// The graph input shape this plan was compiled for.
    pub input_shape: Vec<usize>,
}

impl Graph {
    /// An empty graph (no input value yet); use the builder methods to populate it.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            nodes: Vec::new(),
            input: ValueId(0),
            output: ValueId(0),
            encoder_output: ValueId(0),
        }
    }

    /// Adds the run-input value and marks it as [`Graph::input`].
    pub fn add_input(&mut self, name: &str) -> ValueId {
        let id = self.add_value(name, Some(Binding::Input));
        self.input = id;
        id
    }

    /// Adds a named parameter value.
    pub fn param(&mut self, path: &str, optional: bool) -> ValueId {
        self.add_value(path, Some(Binding::Param { path: path.to_string(), optional }))
    }

    /// Adds a deterministic-table value (looked up by `name` at bind time).
    pub fn positional(&mut self, name: &str) -> ValueId {
        self.add_value(name, Some(Binding::Positional))
    }

    fn add_value(&mut self, name: &str, binding: Option<Binding>) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(ValueInfo { name: name.to_string(), binding });
        id
    }

    /// Appends a node, creating its output value (named after the node).
    pub fn push(&mut self, id: &str, op: Op, inputs: Vec<ValueId>) -> ValueId {
        let output = self.add_value(id, None);
        self.nodes.push(Node { id: id.to_string(), op, inputs, output });
        output
    }

    /// Every parameter path the graph binds, with its optionality.
    pub fn param_paths(&self) -> Vec<(String, bool)> {
        self.values
            .iter()
            .filter_map(|v| match &v.binding {
                Some(Binding::Param { path, optional }) => Some((path.clone(), *optional)),
                _ => None,
            })
            .collect()
    }

    /// Index of the node producing each value, if any.
    fn producers(&self) -> Vec<Option<usize>> {
        let mut p = vec![None; self.values.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            p[n.output.0] = Some(i);
        }
        p
    }

    /// How many node inputs read each value.
    fn consumer_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.values.len()];
        for n in &self.nodes {
            for v in &n.inputs {
                c[v.0] += 1;
            }
        }
        c
    }

    /// Structural sanity: unique node IDs, unique producers, every read either bound
    /// or produced. Returns the first violation as a typed error — publish-path
    /// callers reject the graph; emission sites `debug_assert!` cleanliness.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut ids = HashSet::new();
        for n in &self.nodes {
            if !ids.insert(n.id.as_str()) {
                return Err(PlanError::DuplicateNode(n.id.clone()));
            }
        }
        let producers = self.producers();
        for n in &self.nodes {
            for v in &n.inputs {
                if self.values[v.0].binding.is_none() && producers[v.0].is_none() {
                    return Err(PlanError::UnknownInput {
                        node: n.id.clone(),
                        value: self.values[v.0].name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Kahn topological order, stable by node index so an already-topological
    /// emission order is preserved exactly.
    pub fn schedule(&self) -> Result<Vec<usize>, PlanError> {
        let producers = self.producers();
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for v in &node.inputs {
                if let Some(p) = producers[v.0] {
                    indegree[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            (0..n).filter(|&i| indegree[i] == 0).map(std::cmp::Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(std::cmp::Reverse(d));
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
            return Err(PlanError::Cycle(self.nodes[stuck].id.clone()));
        }
        Ok(order)
    }

    /// Drops optional parameters the checkpoint does not carry: an [`Op::AddBias`]
    /// whose bias is absent disappears (consumers rewire to its input), and fused ops
    /// shed their bias input. Run before [`Graph::peephole`] so fusion only sees
    /// parameters that exist.
    pub fn prune_missing_optional(&mut self, has: &dyn Fn(&str) -> bool) {
        let absent: Vec<bool> = self
            .values
            .iter()
            .map(|v| match &v.binding {
                Some(Binding::Param { path, optional: true }) => !has(path),
                _ => false,
            })
            .collect();
        let mut remap: Vec<ValueId> = (0..self.values.len()).map(ValueId).collect();
        let mut kept = Vec::with_capacity(self.nodes.len());
        for mut node in std::mem::take(&mut self.nodes) {
            for v in &mut node.inputs {
                *v = remap[v.0];
            }
            match node.op {
                Op::AddBias if absent[node.inputs[1].0] => {
                    remap[node.output.0] = node.inputs[0];
                }
                Op::Linear { bias: true } if absent[node.inputs[2].0] => {
                    node.op = Op::Linear { bias: false };
                    node.inputs.truncate(2);
                    kept.push(node);
                }
                Op::WindowEmbed { window, stride, bias: true } if absent[node.inputs[2].0] => {
                    node.op = Op::WindowEmbed { window, stride, bias: false };
                    node.inputs.truncate(2);
                    kept.push(node);
                }
                _ => kept.push(node),
            }
        }
        self.nodes = kept;
        self.output = remap[self.output.0];
        self.encoder_output = remap[self.encoder_output.0];
    }

    /// The first fusion pass: folds `Matmul + AddBias` chains into [`Op::Linear`]
    /// nodes and `Unfold1d + Linear` chains into [`Op::WindowEmbed`] nodes, wherever
    /// the intermediate has exactly one consumer and is not a graph output. Returns
    /// the number of nodes fused away. Bit-identical: the fused executors run the same
    /// kernels in the same order, just with fewer nodes and arena slots.
    pub fn peephole(&mut self) -> usize {
        self.fuse_matmul_bias() + self.fuse_window_embed()
    }

    fn fusible(&self, intermediate: ValueId, consumers: &[usize]) -> bool {
        consumers[intermediate.0] == 1
            && intermediate != self.output
            && intermediate != self.encoder_output
    }

    fn fuse_matmul_bias(&mut self) -> usize {
        let producers = self.producers();
        let consumers = self.consumer_counts();
        let mut fused = 0usize;
        let mut removed = vec![false; self.nodes.len()];
        for j in 0..self.nodes.len() {
            if self.nodes[j].op != Op::AddBias {
                continue;
            }
            let y = self.nodes[j].inputs[0];
            let b = self.nodes[j].inputs[1];
            let Some(i) = producers[y.0] else { continue };
            let bias_is_param = matches!(self.values[b.0].binding, Some(Binding::Param { .. }));
            if self.nodes[i].op != Op::Matmul
                || removed[i]
                || !self.fusible(y, &consumers)
                || !bias_is_param
            {
                continue;
            }
            let out = self.nodes[j].output;
            let node = &mut self.nodes[i];
            node.op = Op::Linear { bias: true };
            node.inputs.push(b);
            node.output = out;
            if let Some(stripped) = node.id.strip_suffix(".matmul") {
                node.id = stripped.to_string();
            }
            removed[j] = true;
            fused += 1;
        }
        self.nodes = std::mem::take(&mut self.nodes)
            .into_iter()
            .zip(removed)
            .filter_map(|(n, r)| (!r).then_some(n))
            .collect();
        fused
    }

    fn fuse_window_embed(&mut self) -> usize {
        let producers = self.producers();
        let consumers = self.consumer_counts();
        let mut fused = 0usize;
        let mut removed = vec![false; self.nodes.len()];
        for j in 0..self.nodes.len() {
            let Op::Linear { bias } = self.nodes[j].op else { continue };
            let y = self.nodes[j].inputs[0];
            let Some(i) = producers[y.0] else { continue };
            let Op::Unfold1d { window, stride } = self.nodes[i].op else { continue };
            if removed[i] || !self.fusible(y, &consumers) {
                continue;
            }
            let mut inputs = vec![self.nodes[i].inputs[0]];
            inputs.extend(self.nodes[j].inputs[1..].iter().copied());
            let node = &mut self.nodes[j];
            node.op = Op::WindowEmbed { window, stride, bias };
            node.inputs = inputs;
            removed[i] = true;
            fused += 1;
        }
        self.nodes = std::mem::take(&mut self.nodes)
            .into_iter()
            .zip(removed)
            .filter_map(|(n, r)| (!r).then_some(n))
            .collect();
        fused
    }

    /// Compiles the graph for one input shape: schedules it, infers every value's
    /// shape (`lookup` supplies parameter and table shapes by name), computes last
    /// uses, and simulates the executor's allocate/recycle walk to produce the exact
    /// arena of buffer capacities the pass needs.
    pub fn compile(
        &self,
        input_shape: &[usize],
        lookup: &dyn Fn(&str) -> Option<Vec<usize>>,
    ) -> Result<Plan, PlanError> {
        let order = self.schedule()?;
        let consumers = self.consumer_counts();
        let mut shapes: Vec<Vec<usize>> = vec![Vec::new(); self.values.len()];
        let mut known = vec![false; self.values.len()];
        for (i, info) in self.values.iter().enumerate() {
            // Orphaned values (e.g. params left behind by pruning or fusion) are not
            // the plan's problem — only what the schedule actually reads must bind.
            if consumers[i] == 0 {
                continue;
            }
            match &info.binding {
                Some(Binding::Input) => {
                    shapes[i] = input_shape.to_vec();
                    known[i] = true;
                }
                Some(Binding::Param { path, .. }) => {
                    shapes[i] =
                        lookup(path).ok_or_else(|| PlanError::MissingParam(path.clone()))?;
                    known[i] = true;
                }
                Some(Binding::Positional) => {
                    shapes[i] = lookup(&info.name)
                        .ok_or_else(|| PlanError::MissingParam(info.name.clone()))?;
                    known[i] = true;
                }
                None => {}
            }
        }
        for &ni in &order {
            let node = &self.nodes[ni];
            let mut in_shapes = Vec::with_capacity(node.inputs.len());
            for v in &node.inputs {
                if !known[v.0] {
                    return Err(PlanError::UnknownInput {
                        node: node.id.clone(),
                        value: self.values[v.0].name.clone(),
                    });
                }
                in_shapes.push(shapes[v.0].as_slice());
            }
            let out = node
                .op
                .infer_shape(&in_shapes, input_shape)
                .map_err(|detail| PlanError::Shape { node: node.id.clone(), detail })?;
            shapes[node.output.0] = out;
            known[node.output.0] = true;
        }

        let mut last_use: Vec<Option<usize>> = vec![None; self.values.len()];
        for (pos, &ni) in order.iter().enumerate() {
            for v in &self.nodes[ni].inputs {
                last_use[v.0] = Some(pos);
            }
        }

        // Simulate the executor's allocate/recycle walk. `root` follows view aliases
        // to the value whose storage actually backs them; a slot frees only once every
        // value sharing it is past its last use — exactly the condition under which
        // the executor's `recycle` succeeds.
        let mut root: Vec<usize> = (0..self.values.len()).collect();
        let mut slot_of: Vec<Option<usize>> = vec![None; self.values.len()];
        let mut slots: Vec<usize> = Vec::new();
        let mut live: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for (pos, &ni) in order.iter().enumerate() {
            let node = &self.nodes[ni];
            let out = node.output.0;
            if let Some(k) = node.op.aliases_input() {
                let base = root[node.inputs[k].0];
                root[out] = base;
                if let Some(s) = slot_of[base] {
                    live[s] += 1;
                }
            } else {
                // Activations are f32 today; the arena is denominated in bytes so the
                // capacities stay meaningful once narrower dtypes flow through.
                let bytes: usize = 4 * shapes[out].iter().product::<usize>();
                let mut best: Option<(usize, usize)> = None;
                for (fi, &s) in free.iter().enumerate() {
                    if slots[s] >= bytes && best.is_none_or(|(_, c)| slots[s] < c) {
                        best = Some((fi, slots[s]));
                    }
                }
                let s = match best {
                    Some((fi, _)) => free.swap_remove(fi),
                    None => {
                        slots.push(bytes);
                        live.push(0);
                        slots.len() - 1
                    }
                };
                slot_of[out] = Some(s);
                live[s] += 1;
            }
            let mut seen = HashSet::new();
            for v in &node.inputs {
                if !seen.insert(v.0) || self.values[v.0].binding.is_some() {
                    continue;
                }
                if last_use[v.0] == Some(pos) {
                    if let Some(s) = slot_of[root[v.0]] {
                        live[s] -= 1;
                        if live[s] == 0 {
                            free.push(s);
                        }
                    }
                }
            }
        }

        Ok(Plan { order, shapes, last_use, arena: slots, input_shape: input_shape.to_vec() })
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy two-linear chain with a residual: input → linear1 → linear2 → add(input-ish).
    fn toy() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("input");
        let w1 = g.param("l1.weight", false);
        let b1 = g.param("l1.bias", true);
        let w2 = g.param("l2.weight", false);
        let b2 = g.param("l2.bias", true);
        let y1 = g.push("l1.matmul", Op::Matmul, vec![x, w1]);
        let y1b = g.push("l1.add_bias", Op::AddBias, vec![y1, b1]);
        let y2 = g.push("l2.matmul", Op::Matmul, vec![y1b, w2]);
        let y2b = g.push("l2.add_bias", Op::AddBias, vec![y2, b2]);
        let out = g.push("residual", Op::Add, vec![y1b, y2b]);
        g.output = out;
        g.encoder_output = out;
        g.validate().expect("toy graph is well-formed");
        g
    }

    fn toy_lookup(path: &str) -> Option<Vec<usize>> {
        match path {
            "l1.weight" | "l2.weight" => Some(vec![8, 8]),
            "l1.bias" | "l2.bias" => Some(vec![8]),
            _ => None,
        }
    }

    #[test]
    fn schedule_preserves_emission_order() {
        let g = toy();
        assert_eq!(g.schedule().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn compile_infers_shapes_and_lifetimes() {
        let g = toy();
        let plan = g.compile(&[2, 5, 8], &toy_lookup).unwrap();
        assert_eq!(plan.shapes[g.output.0], vec![2, 5, 8]);
        // y1b is read by l2.matmul (pos 2) and the residual (pos 4).
        let y1b = g.nodes[1].output;
        assert_eq!(plan.last_use[y1b.0], Some(4));
        // Five materialising nodes, but lifetimes overlap at most three deep.
        assert_eq!(plan.arena.len(), 3);
        assert!(plan.arena.iter().all(|&c| c == 4 * (2 * 5 * 8)), "slots are in bytes");
    }

    #[test]
    fn peephole_fuses_linear_chains_and_renames() {
        let mut g = toy();
        assert_eq!(g.peephole(), 2);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.nodes[0].id, "l1");
        assert_eq!(g.nodes[0].op, Op::Linear { bias: true });
        assert_eq!(g.nodes[0].inputs.len(), 3);
        // The fused graph still compiles and plans a smaller arena.
        let plan = g.compile(&[2, 5, 8], &toy_lookup).unwrap();
        assert_eq!(plan.shapes[g.output.0], vec![2, 5, 8]);
        assert_eq!(plan.arena.len(), 3);
    }

    #[test]
    fn missing_optional_bias_is_pruned_and_required_params_error() {
        let mut g = toy();
        g.prune_missing_optional(&|p| p != "l2.bias");
        // The l2 add-bias node disappeared; the residual now reads the raw matmul.
        assert_eq!(g.nodes.len(), 4);
        let plan =
            g.compile(&[2, 5, 8], &|p| if p == "l2.bias" { None } else { toy_lookup(p) }).unwrap();
        assert_eq!(plan.shapes[g.output.0], vec![2, 5, 8]);

        let err = toy().compile(&[2, 5, 8], &|_| None).unwrap_err();
        assert!(matches!(err, PlanError::MissingParam(_)));
    }

    #[test]
    fn wrong_parameter_shape_is_a_compile_error_not_a_panic() {
        let g = toy();
        let err = g
            .compile(&[2, 5, 8], &|p| {
                if p == "l2.weight" {
                    Some(vec![4, 8]) // malformed: inner dim mismatch
                } else {
                    toy_lookup(p)
                }
            })
            .unwrap_err();
        match err {
            PlanError::Shape { node, .. } => assert_eq!(node, "l2.matmul"),
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = Graph::new();
        let x = g.add_input("input");
        // Forge a cycle by hand: a reads b's output, b reads a's.
        let a_out = ValueId(g.values.len() + 1); // b's output, not yet created
        let _ = x;
        let a = g.push("a", Op::Gelu, vec![a_out]);
        let b = g.push("b", Op::Gelu, vec![a]);
        assert_eq!(b, a_out);
        assert!(matches!(g.schedule(), Err(PlanError::Cycle(_))));
    }

    #[test]
    fn aliased_views_keep_their_base_slot_live() {
        let mut g = Graph::new();
        let x = g.add_input("input");
        let w = g.param("l.weight", false);
        let y = g.push("l.matmul", Op::Matmul, vec![x, w]); // (2, 6, 8)
        let split = g.push("split", Op::SplitHeads { heads: 2 }, vec![y]);
        let merged = g.push("merge", Op::MergeHeads, vec![split]);
        g.output = merged;
        g.encoder_output = merged;
        let plan = g.compile(&[2, 6, 8], &|p| (p == "l.weight").then(|| vec![8, 8])).unwrap();
        // The split is a view: only matmul and merge allocate.
        assert_eq!(plan.arena.len(), 2);
        assert_eq!(plan.shapes[split.0], vec![2, 2, 6, 4]);
    }
}
