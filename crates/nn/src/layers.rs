//! Neural-network building blocks: linear projections, layer/batch normalisation,
//! dropout and the position-wise feed-forward block used by Transformer encoders.

use crate::var::Var;
use rand::Rng;
use rita_tensor::NdArray;

pub use crate::module::{BufferVisitor, BufferVisitorMut, Module, ParamPath, ParamVisitor};

/// Fully connected layer `y = x · W + b` applied to the last dimension.
#[derive(Clone)]
pub struct Linear {
    /// Weight of shape `(in_features, out_features)`.
    pub weight: Var,
    /// Bias of shape `(out_features,)`, absent when constructed with `new_no_bias`.
    pub bias: Option<Var>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight =
            Var::parameter(NdArray::kaiming(&[in_features, out_features], in_features, rng));
        let bias = Var::parameter(NdArray::zeros(&[out_features]));
        Self { weight, bias: Some(bias) }
    }

    /// Creates a linear layer without a bias term.
    pub fn new_no_bias(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight =
            Var::parameter(NdArray::kaiming(&[in_features, out_features], in_features, rng));
        Self { weight, bias: None }
    }

    /// Applies the layer to an input whose last dimension equals `in_features`.
    pub fn forward(&self, x: &Var) -> Var {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.leaf("weight", &self.weight);
        if let Some(b) = &self.bias {
            v.leaf("bias", b);
        }
    }
}

/// Layer normalisation over the last dimension, `y = (x - μ)/√(σ² + ε) · γ + β`.
#[derive(Clone)]
pub struct LayerNorm {
    /// Scale γ of shape `(d,)`.
    pub gamma: Var,
    /// Shift β of shape `(d,)`.
    pub beta: Var,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// The epsilon `new` installs — the single value the tape-free inference mirror
    /// must agree with (it is not checkpointed).
    pub const DEFAULT_EPS: f32 = 1e-5;

    /// Creates a layer norm over a last dimension of size `d`.
    pub fn new(d: usize) -> Self {
        Self {
            gamma: Var::parameter(NdArray::ones(&[d])),
            beta: Var::parameter(NdArray::zeros(&[d])),
            eps: Self::DEFAULT_EPS,
        }
    }

    /// Normalises the last dimension of `x`.
    pub fn forward(&self, x: &Var) -> Var {
        let last = x.shape().len() - 1;
        let mean = x.mean_axis(last);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(last);
        let denom = var.add_scalar(self.eps).sqrt();
        centered.div(&denom).mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.leaf("gamma", &self.gamma);
        v.leaf("beta", &self.beta);
    }
}

/// Batch normalisation over the feature (last) dimension, computed across every other
/// dimension of the mini-batch. Used by the TST baseline, which the RITA paper notes is
/// biased when long series force tiny batches.
pub struct BatchNorm1d {
    /// Scale γ of shape `(d,)`.
    pub gamma: Var,
    /// Shift β of shape `(d,)`.
    pub beta: Var,
    /// Exponential-moving-average mean used at evaluation time.
    pub running_mean: NdArray,
    /// Exponential-moving-average variance used at evaluation time.
    pub running_var: NdArray,
    /// EMA momentum.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNorm1d {
    /// Creates a batch norm over a feature dimension of size `d`.
    pub fn new(d: usize) -> Self {
        Self {
            gamma: Var::parameter(NdArray::ones(&[d])),
            beta: Var::parameter(NdArray::zeros(&[d])),
            running_mean: NdArray::zeros(&[d]),
            running_var: NdArray::ones(&[d]),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Applies batch normalisation. In training mode batch statistics are used and the
    /// running statistics are updated; in evaluation mode the running statistics are used.
    pub fn forward(&mut self, x: &Var, training: bool) -> Var {
        let shape = x.shape();
        let d = *shape.last().expect("batch norm needs at least 1-D input");
        let rows: usize = shape[..shape.len() - 1].iter().product::<usize>().max(1);
        if training {
            let flat = x.reshape(&[rows, d]);
            let mean = flat.mean_axis(0); // (1, d)
            let centered = flat.sub(&mean);
            let var = centered.square().mean_axis(0); // (1, d)
                                                      // update running stats from detached values
            let mean_a = mean.to_array().reshape(&[d]).expect("bn mean shape");
            let var_a = var.to_array().reshape(&[d]).expect("bn var shape");
            self.running_mean = self
                .running_mean
                .scale(1.0 - self.momentum)
                .add(&mean_a.scale(self.momentum))
                .expect("bn ema");
            self.running_var = self
                .running_var
                .scale(1.0 - self.momentum)
                .add(&var_a.scale(self.momentum))
                .expect("bn ema");
            let denom = var.add_scalar(self.eps).sqrt();
            let normalised = centered.div(&denom);
            normalised.mul(&self.gamma).add(&self.beta).reshape(&shape)
        } else {
            let mean = Var::constant(self.running_mean.clone());
            let std = Var::constant(self.running_var.add_scalar(self.eps).sqrt());
            x.sub(&mean).div(&std).mul(&self.gamma).add(&self.beta)
        }
    }
}

impl Module for BatchNorm1d {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.leaf("gamma", &self.gamma);
        v.leaf("beta", &self.beta);
    }

    fn visit_buffers(&self, v: &mut BufferVisitor<'_>) {
        v.leaf("running_mean", &self.running_mean);
        v.leaf("running_var", &self.running_var);
    }

    fn visit_buffers_mut(&mut self, v: &mut BufferVisitorMut<'_>) {
        v.leaf("running_mean", &mut self.running_mean);
        v.leaf("running_var", &mut self.running_var);
    }
}

/// Inverted dropout: at training time zeroes activations with probability `p` and rescales
/// the survivors by `1/(1-p)`; at evaluation time it is the identity.
#[derive(Clone, Copy)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Self { p }
    }

    /// Applies dropout.
    pub fn forward(&self, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        if !training || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = NdArray::bernoulli(&x.shape(), keep, rng).scale(1.0 / keep);
        x.mul_mask(&mask)
    }
}

/// The position-wise feed-forward block of a Transformer layer:
/// `Linear(d→hidden) → GELU → Linear(hidden→d)`.
pub struct FeedForward {
    /// Expansion projection.
    pub fc1: Linear,
    /// Contraction projection.
    pub fc2: Linear,
    /// Dropout applied after the activation.
    pub dropout: Dropout,
}

impl FeedForward {
    /// Creates a feed-forward block.
    pub fn new(d_model: usize, hidden: usize, dropout: f32, rng: &mut impl Rng) -> Self {
        Self {
            fc1: Linear::new(d_model, hidden, rng),
            fc2: Linear::new(hidden, d_model, rng),
            dropout: Dropout::new(dropout),
        }
    }

    /// Applies the block.
    pub fn forward(&self, x: &Var, training: bool, rng: &mut impl Rng) -> Var {
        let h = self.fc1.forward(x).gelu();
        let h = self.dropout.forward(&h, training, rng);
        self.fc2.forward(&h)
    }
}

impl Module for FeedForward {
    fn visit_params(&self, v: &mut ParamVisitor<'_>) {
        v.scope("fc1", |v| self.fc1.visit_params(v));
        v.scope("fc2", |v| self.fc2.visit_params(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rita_tensor::allclose;

    fn rng() -> rita_tensor::SeedableRng64 {
        use rand::SeedableRng;
        rita_tensor::SeedableRng64::seed_from_u64(0)
    }

    #[test]
    fn linear_shapes_and_params() {
        let mut r = rng();
        let lin = Linear::new(4, 3, &mut r);
        assert_eq!(lin.in_features(), 4);
        assert_eq!(lin.out_features(), 3);
        assert_eq!(lin.num_parameters(), 4 * 3 + 3);
        let x = Var::constant(NdArray::ones(&[2, 5, 4]));
        let y = lin.forward(&x);
        assert_eq!(y.shape(), vec![2, 5, 3]);
        let nb = Linear::new_no_bias(4, 3, &mut r);
        assert_eq!(nb.num_parameters(), 12);
    }

    #[test]
    fn linear_gradients_flow_to_weight_and_bias() {
        let mut r = rng();
        let lin = Linear::new(3, 2, &mut r);
        let x = Var::constant(NdArray::ones(&[4, 3]));
        lin.forward(&x).sum_all().backward();
        let gw = lin.weight.grad().unwrap();
        let gb = lin.bias.as_ref().unwrap().grad().unwrap();
        assert!(gw.as_slice().iter().all(|&g| (g - 4.0).abs() < 1e-5));
        assert!(gb.as_slice().iter().all(|&g| (g - 4.0).abs() < 1e-5));
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let ln = LayerNorm::new(8);
        let mut r = rng();
        let x = Var::constant(NdArray::randn(&[3, 5, 8], 4.0, &mut r).add_scalar(7.0));
        let y = ln.forward(&x);
        let v = y.to_array();
        // every row of the last dim should have ~0 mean and ~1 variance (γ=1, β=0 at init)
        for row in 0..15 {
            let slice = &v.as_slice()[row * 8..(row + 1) * 8];
            let mean: f32 = slice.iter().sum::<f32>() / 8.0;
            let var: f32 = slice.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index drives the perturbed coordinate
    fn layer_norm_gradcheck() {
        let ln = LayerNorm::new(4);
        let x0 =
            NdArray::from_vec(vec![0.5, -1.0, 2.0, 0.1, 1.0, 3.0, -2.0, 0.7], &[2, 4]).unwrap();
        let w = NdArray::from_vec(vec![1.0, -0.5, 2.0, 0.3, -1.0, 0.8, 0.2, 1.5], &[2, 4]).unwrap();
        let x = Var::parameter(x0.clone());
        ln.forward(&x).mul(&Var::constant(w.clone())).sum_all().backward();
        let analytic = x.grad().unwrap();
        let eps = 1e-2f32;
        let mut numeric = vec![0.0f32; x0.len()];
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp =
                ln.forward(&Var::constant(plus)).mul(&Var::constant(w.clone())).sum_all().item();
            let fm =
                ln.forward(&Var::constant(minus)).mul(&Var::constant(w.clone())).sum_all().item();
            numeric[i] = (fp - fm) / (2.0 * eps);
        }
        assert!(
            allclose(analytic.as_slice(), &numeric, 3e-2, 3e-2),
            "{:?} vs {numeric:?}",
            analytic.as_slice()
        );
    }

    #[test]
    fn batch_norm_train_vs_eval() {
        let mut bn = BatchNorm1d::new(4);
        let mut r = rng();
        let x = Var::constant(NdArray::randn(&[16, 4], 3.0, &mut r).add_scalar(5.0));
        let y = bn.forward(&x, true);
        let v = y.to_array();
        // Feature-wise statistics of the training-mode output are ~N(0,1).
        for f in 0..4 {
            let col: Vec<f32> = (0..16).map(|i| v.as_slice()[i * 4 + f]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-3);
        }
        // Running stats moved away from their initial values.
        assert!(bn.running_mean.as_slice().iter().any(|&m| m.abs() > 0.1));
        // Eval mode uses running stats and still produces the right shape.
        let y_eval = bn.forward(&x, false);
        assert_eq!(y_eval.shape(), vec![16, 4]);
    }

    #[test]
    fn dropout_scales_and_is_identity_in_eval() {
        let mut r = rng();
        let d = Dropout::new(0.5);
        let x = Var::constant(NdArray::ones(&[1000]));
        let y_eval = d.forward(&x, false, &mut r);
        assert!(allclose(y_eval.value().as_slice(), x.value().as_slice(), 1e-6, 1e-6));
        let y_train = d.forward(&x, true, &mut r);
        let v = y_train.to_array();
        // surviving entries are scaled to 2.0; roughly half survive; expectation preserved
        assert!(v.as_slice().iter().all(|&e| e == 0.0 || (e - 2.0).abs() < 1e-6));
        let mean = v.mean_all();
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_rejects_invalid_p() {
        let _ = Dropout::new(1.5);
    }

    #[test]
    fn feed_forward_shapes_and_grads() {
        let mut r = rng();
        let ff = FeedForward::new(8, 16, 0.0, &mut r);
        assert_eq!(ff.parameters().len(), 4);
        let x = Var::parameter(NdArray::randn(&[2, 4, 8], 1.0, &mut r));
        let y = ff.forward(&x, true, &mut r);
        assert_eq!(y.shape(), vec![2, 4, 8]);
        y.sum_all().backward();
        assert!(x.grad().is_some());
        assert!(ff.fc1.weight.grad().is_some());
        assert!(ff.fc2.weight.grad().is_some());
    }
}
