//! # rita-nn
//!
//! Reverse-mode automatic differentiation and neural-network building blocks for the
//! RITA timeseries-analytics stack, built on [`rita_tensor`].
//!
//! The crate provides:
//!
//! * [`Var`] — a node in a dynamically recorded computation graph, with a full set of
//!   differentiable operations (arithmetic, activations, batched matmul, softmax, window
//!   unfold/fold, reductions, shape ops).
//! * [`layers`] — `Linear`, `LayerNorm`, `BatchNorm1d`, `Dropout`, `FeedForward` and the
//!   [`Module`] trait.
//! * [`graph`] — a static forward-graph IR (nodes with stable parameter-path IDs,
//!   topological scheduling, ahead-of-time shape/lifetime planning) that downstream
//!   crates emit from module trees and interpret.
//! * [`optim`] — `Sgd` and `AdamW` optimisers plus gradient clipping.
//! * [`loss`] — cross entropy, MSE and masked MSE (the cloze-pretraining loss).
//! * [`gradcheck`] — finite-difference gradient verification used by the test-suites of
//!   every downstream crate.
//!
//! ```
//! use rita_nn::{Var, layers::{Linear, Module}, optim::{AdamW, Optimizer}, loss::mse};
//! use rita_tensor::NdArray;
//! use rand::SeedableRng;
//!
//! let mut rng = rita_tensor::SeedableRng64::seed_from_u64(0);
//! let layer = Linear::new(2, 1, &mut rng);
//! let mut opt = AdamW::new(layer.parameters(), 0.05, 0.0);
//! let x = NdArray::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2]).unwrap();
//! let y = NdArray::from_vec(vec![3.0, -1.0], &[2, 1]).unwrap();
//! for _ in 0..200 {
//!     opt.zero_grad();
//!     let loss = mse(&layer.forward(&Var::constant(x.clone())), &y);
//!     loss.backward();
//!     opt.step();
//! }
//! let final_loss = mse(&layer.forward(&Var::constant(x)), &y).item();
//! assert!(final_loss < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod gradcheck;
pub mod graph;
pub mod layers;
pub mod loss;
pub mod module;
mod ops_attention;
mod ops_basic;
mod ops_matrix;
mod ops_segment;
pub mod optim;
mod var;

pub use module::{BufferVisitor, BufferVisitorMut, Module, ParamPath, ParamVisitor};
pub use var::{is_grad_enabled, no_grad, Var};
