//! Loss functions used by the RITA downstream tasks: cross entropy for classification
//! (Appendix A.7.1), mean squared error and masked MSE for imputation / forecasting /
//! the cloze pretraining task (Appendix A.7.2).

use crate::var::Var;
use rita_tensor::NdArray;

/// Cross-entropy loss from raw logits.
///
/// `logits` has shape `(batch, classes)`; `targets` holds one class index per row.
/// Returns the mean negative log-likelihood as a scalar [`Var`]. The gradient is the
/// classic `(softmax − one-hot) / batch`, implemented as a single fused backward for
/// numerical stability.
pub fn cross_entropy_logits(logits: &Var, targets: &[usize]) -> Var {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "cross entropy expects (batch, classes) logits, got {shape:?}");
    let (batch, classes) = (shape[0], shape[1]);
    assert_eq!(batch, targets.len(), "logits batch {batch} != targets {}", targets.len());
    assert!(targets.iter().all(|&t| t < classes), "target class out of range");

    let log_probs = logits.value().log_softmax_last().expect("log softmax");
    let mut nll = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        nll -= log_probs.as_slice()[i * classes + t];
    }
    let value = NdArray::scalar(nll / batch as f32);
    let targets_owned = targets.to_vec();
    Var::from_op(
        value,
        vec![logits.clone()],
        Box::new(move |g, parents| {
            let logits_val = parents[0].value();
            let mut grad = logits_val.softmax_last().expect("softmax in ce backward");
            {
                let gs = grad.as_mut_slice();
                for (i, &t) in targets_owned.iter().enumerate() {
                    gs[i * classes + t] -= 1.0;
                }
            }
            vec![grad.scale(g.item() / batch as f32)]
        }),
    )
}

/// Mean squared error between a prediction and a constant target.
pub fn mse(pred: &Var, target: &NdArray) -> Var {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    pred.sub(&Var::constant(target.clone())).square().mean_all()
}

/// Mean squared error restricted to positions where `mask == 1`
/// (the loss of the paper's mask-and-predict pretraining and imputation tasks:
/// `L = 1/|M| Σ_{(i,j)∈M} (Y − T)²`).
pub fn masked_mse(pred: &Var, target: &NdArray, mask: &NdArray) -> Var {
    assert_eq!(pred.shape(), target.shape(), "masked_mse: pred/target shape mismatch");
    assert_eq!(pred.shape(), mask.shape().to_vec(), "masked_mse: mask shape mismatch");
    let count = mask.sum_all().max(1.0);
    let diff = pred.sub(&Var::constant(target.clone()));
    diff.square().mul_mask(mask).sum_all().scale(1.0 / count)
}

/// Classification accuracy of logits against integer targets (evaluation helper).
pub fn accuracy(logits: &NdArray, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let pred = logits.argmax_last();
    let correct = pred.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rita_tensor::allclose;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Var::constant(
            NdArray::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], &[2, 3]).unwrap(),
        );
        let loss = cross_entropy_logits(&logits, &[0, 1]);
        assert!(loss.item() < 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_c() {
        let logits = Var::constant(NdArray::zeros(&[4, 5]));
        let loss = cross_entropy_logits(&logits, &[0, 1, 2, 3]);
        assert!((loss.item() - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_softmax_minus_onehot() {
        let x0 = NdArray::from_vec(vec![0.5, -0.2, 1.0, 0.0, 2.0, -1.0], &[2, 3]).unwrap();
        let logits = Var::parameter(x0.clone());
        cross_entropy_logits(&logits, &[2, 0]).backward();
        let g = logits.grad().unwrap();
        let sm = x0.softmax_last().unwrap();
        let mut expect = sm.clone();
        expect.as_mut_slice()[2] -= 1.0;
        expect.as_mut_slice()[3] -= 1.0;
        let expect = expect.scale(0.5);
        assert!(allclose(g.as_slice(), expect.as_slice(), 1e-5, 1e-5));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let x0 =
            NdArray::from_vec(vec![0.3, -0.7, 0.2, 1.4, -0.1, 0.0, 0.9, -2.0], &[2, 4]).unwrap();
        let targets = [3usize, 1usize];
        let logits = Var::parameter(x0.clone());
        cross_entropy_logits(&logits, &targets).backward();
        let g = logits.grad().unwrap();
        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = cross_entropy_logits(&Var::constant(plus), &targets).item();
            let fm = cross_entropy_logits(&Var::constant(minus), &targets).item();
            assert!((g.as_slice()[i] - (fp - fm) / (2.0 * eps)).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_targets() {
        let logits = Var::constant(NdArray::zeros(&[1, 3]));
        let _ = cross_entropy_logits(&logits, &[3]);
    }

    #[test]
    fn mse_is_zero_for_identical_inputs() {
        let target = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        let pred = Var::constant(target.clone());
        assert_eq!(mse(&pred, &target).item(), 0.0);
        let pred2 = Var::constant(NdArray::from_slice(&[2.0, 2.0, 3.0]));
        assert!((mse(&pred2, &target).item() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn masked_mse_ignores_unmasked_positions() {
        let target = NdArray::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let pred = Var::constant(NdArray::from_slice(&[0.0, 2.0, 0.0, 4.0]));
        // only positions 0 and 1 are in the mask; error only at position 0
        let mask = NdArray::from_slice(&[1.0, 1.0, 0.0, 0.0]);
        let loss = masked_mse(&pred, &target, &mask);
        assert!((loss.item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_mse_gradient_only_on_masked_positions() {
        let target = NdArray::zeros(&[4]);
        let mask = NdArray::from_slice(&[1.0, 0.0, 1.0, 0.0]);
        let pred = Var::parameter(NdArray::from_slice(&[1.0, 1.0, 1.0, 1.0]));
        masked_mse(&pred, &target, &mask).backward();
        let g = pred.grad().unwrap();
        assert_eq!(g.as_slice()[1], 0.0);
        assert_eq!(g.as_slice()[3], 0.0);
        assert!(g.as_slice()[0] > 0.0);
    }

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits = NdArray::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
        assert_eq!(accuracy(&NdArray::zeros(&[0, 2]), &[]), 0.0);
    }
}
