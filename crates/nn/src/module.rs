//! The named module tree: parameter paths, visitors, and the [`Module`] trait.
//!
//! Every trainable component implements [`Module::visit_params`], reporting its
//! parameters depth-first under dot-separated paths (`"encoder.layers.0.q_proj.weight"`).
//! Everything else — flat parameter lists for optimisers, named lists for checkpoints,
//! parameter counting — is derived from that single visitor.
//!
//! ## Path grammar
//!
//! A path is a sequence of dot-separated segments. Segments are either field names
//! (`weight`, `q_proj`) or decimal indices for homogeneous collections (`layers.0`).
//! Segments never contain dots. Paths are stable across process restarts for the same
//! architecture: they are derived from the module structure, not from construction order
//! counters or node ids, which is what makes them usable as checkpoint keys.
//!
//! ## Visitor invariants
//!
//! * A module visits **all** of its trainable parameters, in a deterministic order.
//! * A parameter shared between two sites (tied weights) is reported at *every* site —
//!   deduplication by node identity is the consumer's job (the optimisers dedupe so a
//!   tied weight is stepped once; checkpoints store one copy per path, which round-trips
//!   because every path is written and re-assigned).
//! * Non-trainable state that must survive a checkpoint round-trip (Performer's random
//!   feature matrix, batch-norm running statistics) is reported through
//!   [`Module::visit_buffers`] / [`Module::visit_buffers_mut`] instead.

use std::fmt;

use crate::var::Var;
use rita_tensor::NdArray;

/// A dot-separated path identifying one parameter within a module tree.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamPath(String);

impl ParamPath {
    /// The empty root path.
    pub fn root() -> Self {
        Self(String::new())
    }

    /// Builds a path directly from its string form (used when deserialising).
    pub fn new(path: impl Into<String>) -> Self {
        Self(path.into())
    }

    /// Returns the path extended by one segment.
    pub fn join(&self, segment: &str) -> Self {
        debug_assert!(!segment.contains('.'), "path segments must not contain dots: {segment}");
        if self.0.is_empty() {
            Self(segment.to_string())
        } else {
            Self(format!("{}.{segment}", self.0))
        }
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ParamPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ParamPath {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Depth-first visitor over a module tree's trainable parameters.
///
/// Modules receive a visitor in [`Module::visit_params`] and either report leaves
/// ([`ParamVisitor::leaf`]) or descend into children under a path segment
/// ([`ParamVisitor::scope`]).
pub struct ParamVisitor<'a> {
    path: ParamPath,
    f: &'a mut dyn FnMut(&ParamPath, &Var),
}

impl<'a> ParamVisitor<'a> {
    /// Creates a visitor rooted at the empty path.
    pub fn new(f: &'a mut dyn FnMut(&ParamPath, &Var)) -> Self {
        Self { path: ParamPath::root(), f }
    }

    /// Reports one parameter under `name`.
    pub fn leaf(&mut self, name: &str, var: &Var) {
        let path = self.path.join(name);
        (self.f)(&path, var);
    }

    /// Visits a child module under the path segment `name`.
    pub fn scope(&mut self, name: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.path.clone();
        self.path = self.path.join(name);
        f(self);
        self.path = saved;
    }

    /// Visits an indexed child (`name.i`), for homogeneous collections.
    pub fn scope_indexed(&mut self, name: &str, index: usize, f: impl FnOnce(&mut Self)) {
        self.scope(name, |v| v.scope(&index.to_string(), f));
    }
}

/// Read-only visitor over a module tree's non-trainable buffers (checkpoint save side).
pub struct BufferVisitor<'a> {
    path: ParamPath,
    f: &'a mut dyn FnMut(&ParamPath, &NdArray),
}

impl<'a> BufferVisitor<'a> {
    /// Creates a visitor rooted at the empty path.
    pub fn new(f: &'a mut dyn FnMut(&ParamPath, &NdArray)) -> Self {
        Self { path: ParamPath::root(), f }
    }

    /// Reports one buffer under `name`.
    pub fn leaf(&mut self, name: &str, buffer: &NdArray) {
        let path = self.path.join(name);
        (self.f)(&path, buffer);
    }

    /// Visits a child module under the path segment `name`.
    pub fn scope(&mut self, name: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.path.clone();
        self.path = self.path.join(name);
        f(self);
        self.path = saved;
    }

    /// Visits an indexed child (`name.i`).
    pub fn scope_indexed(&mut self, name: &str, index: usize, f: impl FnOnce(&mut Self)) {
        self.scope(name, |v| v.scope(&index.to_string(), f));
    }
}

/// Mutable visitor over non-trainable buffers (checkpoint restore side).
pub struct BufferVisitorMut<'a> {
    path: ParamPath,
    f: &'a mut dyn FnMut(&ParamPath, &mut NdArray),
}

impl<'a> BufferVisitorMut<'a> {
    /// Creates a visitor rooted at the empty path.
    pub fn new(f: &'a mut dyn FnMut(&ParamPath, &mut NdArray)) -> Self {
        Self { path: ParamPath::root(), f }
    }

    /// Reports one buffer under `name` for in-place replacement.
    pub fn leaf(&mut self, name: &str, buffer: &mut NdArray) {
        let path = self.path.join(name);
        (self.f)(&path, buffer);
    }

    /// Visits a child module under the path segment `name`.
    pub fn scope(&mut self, name: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.path.clone();
        self.path = self.path.join(name);
        f(self);
        self.path = saved;
    }

    /// Visits an indexed child (`name.i`).
    pub fn scope_indexed(&mut self, name: &str, index: usize, f: impl FnOnce(&mut Self)) {
        self.scope(name, |v| v.scope(&index.to_string(), f));
    }
}

/// A trainable component that exposes its parameters as a named tree.
pub trait Module {
    /// Visits every trainable parameter depth-first (see the module-level invariants).
    fn visit_params(&self, visitor: &mut ParamVisitor<'_>);

    /// Visits non-trainable state that checkpoints must persist (default: none).
    fn visit_buffers(&self, _visitor: &mut BufferVisitor<'_>) {}

    /// Mutable counterpart of [`Module::visit_buffers`], used on checkpoint restore.
    fn visit_buffers_mut(&mut self, _visitor: &mut BufferVisitorMut<'_>) {}

    /// All trainable parameters of this module (and its children), in visitor order.
    /// Shared parameters appear once per site; consumers that must not double-count
    /// dedupe by [`Var::id`].
    fn parameters(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut f = |_: &ParamPath, var: &Var| out.push(var.clone());
        self.visit_params(&mut ParamVisitor::new(&mut f));
        out
    }

    /// All `(path, parameter)` pairs of this module, in visitor order.
    fn named_parameters(&self) -> Vec<(ParamPath, Var)> {
        let mut out = Vec::new();
        let mut f = |path: &ParamPath, var: &Var| out.push((path.clone(), var.clone()));
        self.visit_params(&mut ParamVisitor::new(&mut f));
        out
    }

    /// All `(path, buffer)` pairs of this module, in visitor order.
    fn named_buffers(&self) -> Vec<(ParamPath, NdArray)> {
        let mut out = Vec::new();
        let mut f = |path: &ParamPath, buf: &NdArray| out.push((path.clone(), buf.clone()));
        self.visit_buffers(&mut BufferVisitor::new(&mut f));
        out
    }

    /// Total number of scalar parameters (shared parameters counted once).
    fn num_parameters(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        let mut f = |_: &ParamPath, var: &Var| {
            if seen.insert(var.id()) {
                total += var.len();
            }
        };
        self.visit_params(&mut ParamVisitor::new(&mut f));
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tied {
        w: Var,
    }

    impl Module for Tied {
        fn visit_params(&self, v: &mut ParamVisitor<'_>) {
            v.scope("embed", |v| v.leaf("weight", &self.w));
            v.scope("decode", |v| v.leaf("weight", &self.w));
        }
    }

    #[test]
    fn paths_join_and_display() {
        let p = ParamPath::root().join("encoder").join("layers").join("0").join("weight");
        assert_eq!(p.as_str(), "encoder.layers.0.weight");
        assert_eq!(p.to_string(), "encoder.layers.0.weight");
        assert_eq!(ParamPath::from("a.b"), ParamPath::new("a.b"));
        assert!(ParamPath::root().as_str().is_empty());
    }

    #[test]
    fn visitor_scopes_nest_and_restore() {
        let w = Var::parameter(NdArray::ones(&[2]));
        let mut paths = Vec::new();
        let mut f = |p: &ParamPath, _: &Var| paths.push(p.to_string());
        let mut v = ParamVisitor::new(&mut f);
        v.scope("outer", |v| {
            v.leaf("a", &w);
            v.scope_indexed("items", 3, |v| v.leaf("b", &w));
            v.leaf("c", &w);
        });
        v.leaf("top", &w);
        assert_eq!(paths, vec!["outer.a", "outer.items.3.b", "outer.c", "top"]);
    }

    #[test]
    fn tied_weights_appear_per_site_but_count_once() {
        let tied = Tied { w: Var::parameter(NdArray::ones(&[4])) };
        assert_eq!(tied.parameters().len(), 2);
        let named = tied.named_parameters();
        assert_eq!(named[0].0.as_str(), "embed.weight");
        assert_eq!(named[1].0.as_str(), "decode.weight");
        assert_eq!(named[0].1.id(), named[1].1.id());
        assert_eq!(tied.num_parameters(), 4, "shared weight counted once");
    }
}
