//! The fused streaming-attention autograd op.
//!
//! Wraps [`rita_tensor::fused_attention`]: the forward runs the tiled online-softmax
//! kernel (no `(b, h, n, m)` score tensor is ever materialised), and the recorded
//! backward calls [`rita_tensor::fused_attention_backward`], which **recomputes** each
//! score tile from `q`/`k` using the saved per-row log-sum-exp instead of storing the
//! probability matrix. The only residuals kept alive by the graph are the output and the
//! `(b, h, n)` log-sum-exp — activation memory for attention drops from `O(n·m)` to
//! `O(n)` per head.

use crate::var::Var;
use rita_tensor::{fused_attention, fused_attention_backward, NdArray};

impl Var {
    /// Fused scaled-dot-product attention: `softmax(scale · self · kᵀ) · v` with `self`
    /// as the queries, computed tile by tile (flash-attention style) so the `n × n`
    /// score matrix never exists. Shapes: `self` `(b, h, n, d)`, `k` `(b, h, m, d)`,
    /// `v` `(b, h, m, d_v)`.
    pub fn fused_attention(&self, k: &Var, v: &Var, scale: f32) -> Var {
        self.fused_attention_impl(k, v, scale, None)
    }

    /// Fused **group** attention (§4.2 of the RITA paper): like
    /// [`Var::fused_attention`], but each key's exponential is weighted by `weights`
    /// (the group member counts, shape `(b, h, m)`) in the softmax denominator, while
    /// the numerator streams the unweighted exponentials against the aggregated values.
    /// The counts come from a discrete clustering, so no gradient flows through them.
    pub fn fused_group_attention(&self, k: &Var, v: &Var, scale: f32, weights: NdArray) -> Var {
        self.fused_attention_impl(k, v, scale, Some(weights))
    }

    fn fused_attention_impl(&self, k: &Var, v: &Var, scale: f32, weights: Option<NdArray>) -> Var {
        let result =
            fused_attention(&self.value(), &k.value(), &v.value(), scale, weights.as_ref())
                .expect("fused_attention: incompatible shapes");
        // The backward residuals: output (for Dᵢ = gᵢ·outᵢ) and per-row log-sum-exp (to
        // restore probabilities per tile). Cloning an NdArray shares storage, so this
        // keeps no extra buffers alive.
        let out_saved = result.out.clone();
        let lse = result.lse;
        Var::from_op(
            result.out,
            vec![self.clone(), k.clone(), v.clone()],
            Box::new(move |g, parents| {
                let (dq, dk, dv) = fused_attention_backward(
                    &parents[0].value(),
                    &parents[1].value(),
                    &parents[2].value(),
                    weights.as_ref(),
                    scale,
                    &out_saved,
                    &lse,
                    g,
                )
                .expect("fused_attention backward");
                vec![dq, dk, dv]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::gradcheck;
    use rand::SeedableRng;
    use rita_tensor::{allclose, NdArray, SeedableRng64};

    fn rng(seed: u64) -> SeedableRng64 {
        SeedableRng64::seed_from_u64(seed)
    }

    /// The unfused chain the fused op must match: `softmax(scale·q·kᵀ)·v` for the plain
    /// case, and the explicit count-weighted group softmax otherwise.
    fn unfused(q: &Var, k: &Var, v: &Var, scale: f32, weights: Option<&NdArray>) -> Var {
        let scores = q.matmul_nt_scaled(k, scale);
        match weights {
            None => scores.softmax_last().matmul(v),
            Some(w) => {
                let shape = scores.shape();
                let (b, h, m) = (shape[0], shape[1], shape[3]);
                let counts = Var::constant(w.reshape(&[b, h, 1, m]).unwrap());
                let row_max = scores.to_array().max_axis(3, true).expect("row max");
                let exp = scores.sub(&Var::constant(row_max)).exp();
                let denom = exp.mul(&counts).sum_axis(3);
                exp.div(&denom).matmul(v)
            }
        }
    }

    #[test]
    fn fused_matches_unfused_forward_and_gradients() {
        for &(b, h, n, m, d, weighted) in &[
            (1usize, 1usize, 6usize, 6usize, 4usize, false),
            (2, 2, 9, 9, 3, false),
            (1, 2, 11, 4, 5, true),
            (2, 1, 7, 3, 1, true),
        ] {
            let mut r = rng(23 + (n * m * d) as u64);
            let q0 = NdArray::randn(&[b, h, n, d], 0.8, &mut r);
            let k0 = NdArray::randn(&[b, h, m, d], 0.8, &mut r);
            let v0 = NdArray::randn(&[b, h, m, d], 0.8, &mut r);
            let w = weighted.then(|| {
                NdArray::from_vec(
                    (0..b * h * m).map(|i| 1.0 + (i % 4) as f32).collect(),
                    &[b, h, m],
                )
                .unwrap()
            });
            let scale = 1.0 / (d as f32).sqrt();

            let (qf, kf, vf) = (
                Var::parameter(q0.clone()),
                Var::parameter(k0.clone()),
                Var::parameter(v0.clone()),
            );
            let fused = match &w {
                Some(w) => qf.fused_group_attention(&kf, &vf, scale, w.clone()),
                None => qf.fused_attention(&kf, &vf, scale),
            };
            fused.sum_all().backward();

            let (qu, ku, vu) =
                (Var::parameter(q0.clone()), Var::parameter(k0.clone()), Var::parameter(v0));
            let reference = unfused(&qu, &ku, &vu, scale, w.as_ref());
            reference.sum_all().backward();

            assert!(
                allclose(fused.value().as_slice(), reference.value().as_slice(), 1e-4, 1e-4),
                "forward mismatch (b={b}, h={h}, n={n}, m={m}, d={d}, weighted={weighted})"
            );
            for (name, fp, up) in [("q", &qf, &qu), ("k", &kf, &ku), ("v", &vf, &vu)] {
                let gf = fp.grad().expect("fused grad");
                let gu = up.grad().expect("unfused grad");
                assert!(
                    allclose(gf.as_slice(), gu.as_slice(), 1e-4, 1e-4),
                    "{name} gradient mismatch (n={n}, m={m}, d={d}, weighted={weighted})"
                );
            }
        }
    }

    #[test]
    fn fused_consumes_strided_parents() {
        // Head-split-style permuted views as direct parents: gradients must come back in
        // the views' logical shapes and match the materialized run.
        let (b, h, n, d) = (1usize, 2usize, 8usize, 3usize);
        let mut r = rng(77);
        let base = NdArray::randn(&[b, n, h, d], 1.0, &mut r);
        let q = Var::parameter(base.clone());
        let k = Var::parameter(NdArray::randn(&[b, n, h, d], 1.0, &mut r));
        let v = Var::parameter(NdArray::randn(&[b, n, h, d], 1.0, &mut r));
        let (qs, ks, vs) =
            (q.permute(&[0, 2, 1, 3]), k.permute(&[0, 2, 1, 3]), v.permute(&[0, 2, 1, 3]));
        let out = qs.fused_attention(&ks, &vs, 0.5);
        assert_eq!(out.shape(), vec![b, h, n, d]);
        out.sum_all().backward();

        let (qm, km, vm) = (
            Var::parameter(q.to_array().permute(&[0, 2, 1, 3]).unwrap().materialize()),
            Var::parameter(k.to_array().permute(&[0, 2, 1, 3]).unwrap().materialize()),
            Var::parameter(v.to_array().permute(&[0, 2, 1, 3]).unwrap().materialize()),
        );
        qm.fused_attention(&km, &vm, 0.5).sum_all().backward();
        // Compare the view-parent gradients (logical (b, n, h, d)) against the
        // materialized ones permuted back.
        for (p, pm) in [(&q, &qm), (&k, &km), (&v, &vm)] {
            let got = p.grad().unwrap();
            let expect = pm.grad().unwrap().permute(&[0, 2, 1, 3]).unwrap().materialize();
            assert!(allclose(got.as_slice(), expect.as_slice(), 1e-5, 1e-5));
        }
    }

    #[test]
    fn gradcheck_fused_attention_recompute_backward() {
        // Finite-difference check of the recomputation backward through each input in
        // turn, plain and weighted.
        let (b, h, n, m, d) = (1usize, 1usize, 4usize, 3usize, 2usize);
        let mut r = rng(91);
        let q0 = NdArray::randn(&[b, h, n, d], 0.6, &mut r);
        let k0 = NdArray::randn(&[b, h, m, d], 0.6, &mut r);
        let v0 = NdArray::randn(&[b, h, m, d], 0.6, &mut r);
        let w = NdArray::from_vec(vec![1.0, 3.0, 2.0], &[b, h, m]).unwrap();
        let scale = 1.0 / (d as f32).sqrt();
        for weights in [None, Some(&w)] {
            let attn = |q: &Var, k: &Var, v: &Var| match weights {
                Some(w) => q.fused_group_attention(k, v, scale, w.clone()),
                None => q.fused_attention(k, v, scale),
            };
            let (k1, v1) = (Var::constant(k0.clone()), Var::constant(v0.clone()));
            let rq = gradcheck(|x| attn(x, &k1, &v1).sum_all(), &q0, 1e-2);
            assert!(rq.passes(1e-2, 1e-2), "q gradcheck: {rq:?}");
            let (q1, v2) = (Var::constant(q0.clone()), Var::constant(v0.clone()));
            let rk = gradcheck(|x| attn(&q1, x, &v2).sum_all(), &k0, 1e-2);
            assert!(rk.passes(1e-2, 1e-2), "k gradcheck: {rk:?}");
            let (q2, k2) = (Var::constant(q0.clone()), Var::constant(k0.clone()));
            let rv = gradcheck(|x| attn(&q2, &k2, x).sum_all(), &v0, 1e-2);
            assert!(rv.passes(1e-2, 1e-2), "v gradcheck: {rv:?}");
        }
    }

    #[test]
    fn no_grad_skips_graph_construction() {
        let mut r = rng(5);
        let q = Var::parameter(NdArray::randn(&[1, 1, 4, 2], 1.0, &mut r));
        let k = Var::parameter(NdArray::randn(&[1, 1, 4, 2], 1.0, &mut r));
        let v = Var::parameter(NdArray::randn(&[1, 1, 4, 2], 1.0, &mut r));
        let out = crate::no_grad(|| q.fused_attention(&k, &v, 0.7));
        assert!(!out.requires_grad());
    }
}
