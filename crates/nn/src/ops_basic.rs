//! Elementwise arithmetic, activations, reductions and shape operations on [`Var`].
//!
//! Every operation builds the forward value eagerly and registers a backward closure
//! that maps the output gradient to per-parent gradients. Broadcasting in the forward
//! pass is undone in the backward pass with [`NdArray::reduce_to_shape`].

use crate::var::Var;
use rita_tensor::NdArray;

impl Var {
    // ------------------------------------------------------------------ binary arithmetic

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value()).expect("add: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, _| {
                vec![
                    g.reduce_to_shape(&sa).expect("add backward"),
                    g.reduce_to_shape(&sb).expect("add backward"),
                ]
            }),
        )
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value()).expect("sub: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, _| {
                vec![
                    g.reduce_to_shape(&sa).expect("sub backward"),
                    g.neg().reduce_to_shape(&sb).expect("sub backward"),
                ]
            }),
        )
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let value = self.value().mul(&other.value()).expect("mul: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                vec![
                    g.mul(&b).expect("mul backward").reduce_to_shape(&sa).expect("mul backward"),
                    g.mul(&a).expect("mul backward").reduce_to_shape(&sb).expect("mul backward"),
                ]
            }),
        )
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let value = self.value().div(&other.value()).expect("div: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                let ga = g.div(&b).expect("div backward");
                // gb = -g * a / b^2
                let gb = g
                    .mul(&a)
                    .expect("div backward")
                    .div(&b.mul(&b).expect("div backward"))
                    .expect("div backward")
                    .neg();
                vec![
                    ga.reduce_to_shape(&sa).expect("div backward"),
                    gb.reduce_to_shape(&sb).expect("div backward"),
                ]
            }),
        )
    }

    // ------------------------------------------------------------------ unary / scalar ops

    /// Multiplies by a scalar.
    pub fn scale(&self, s: f32) -> Var {
        Var::from_op(
            self.value().scale(s),
            vec![self.clone()],
            Box::new(move |g, _| vec![g.scale(s)]),
        )
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        Var::from_op(
            self.value().add_scalar(s),
            vec![self.clone()],
            Box::new(move |g, _| vec![g.clone()]),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        Var::from_op(
            self.value().map(|x| x * x),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                vec![g.mul(&x.scale(2.0)).expect("square backward")]
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let y = self.value().exp();
        let y_saved = y.clone();
        Var::from_op(
            y,
            vec![self.clone()],
            Box::new(move |g, _| vec![g.mul(&y_saved).expect("exp backward")]),
        )
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        Var::from_op(
            self.value().ln(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                vec![g.div(&x).expect("ln backward")]
            }),
        )
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let y = self.value().sqrt();
        let y_saved = y.clone();
        Var::from_op(
            y,
            vec![self.clone()],
            Box::new(move |g, _| {
                // d sqrt(x)/dx = 0.5 / sqrt(x)
                vec![g.mul(&y_saved.map(|v| 0.5 / v.max(1e-12))).expect("sqrt backward")]
            }),
        )
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let y = self.value().tanh();
        let y_saved = y.clone();
        Var::from_op(
            y,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![g.mul(&y_saved.map(|v| 1.0 - v * v)).expect("tanh backward")]
            }),
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let y = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        let y_saved = y.clone();
        Var::from_op(
            y,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![g.mul(&y_saved.map(|v| v * (1.0 - v))).expect("sigmoid backward")]
            }),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        Var::from_op(
            self.value().map(|x| x.max(0.0)),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                vec![g.mul(&mask).expect("relu backward")]
            }),
        )
    }

    /// Gaussian error linear unit (tanh approximation, as in BERT / the RITA reference).
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let forward = |x: f32| 0.5 * x * (1.0 + (C * (x + A * x * x * x)).tanh());
        let value = self.value().map(forward);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                let dx = x.map(|v| {
                    let inner = C * (v + A * v * v * v);
                    let t = inner.tanh();
                    let sech2 = 1.0 - t * t;
                    0.5 * (1.0 + t) + 0.5 * v * sech2 * C * (1.0 + 3.0 * A * v * v)
                });
                vec![g.mul(&dx).expect("gelu backward")]
            }),
        )
    }

    // ------------------------------------------------------------------ reductions

    /// Sum of all elements, producing a scalar.
    pub fn sum_all(&self) -> Var {
        let shape = self.shape();
        Var::from_op(
            NdArray::scalar(self.value().sum_all()),
            vec![self.clone()],
            Box::new(move |g, _| vec![NdArray::full(&shape, g.item())]),
        )
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean_all(&self) -> Var {
        let shape = self.shape();
        let n: usize = shape.iter().product::<usize>().max(1);
        Var::from_op(
            NdArray::scalar(self.value().mean_all()),
            vec![self.clone()],
            Box::new(move |g, _| vec![NdArray::full(&shape, g.item() / n as f32)]),
        )
    }

    /// Sum along `axis` (always keeps the dimension with size 1 so the result broadcasts
    /// back against the input).
    pub fn sum_axis(&self, axis: usize) -> Var {
        let value = self.value().sum_axis(axis, true).expect("sum_axis");
        let shape = self.shape();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![NdArray::zeros(&shape).add(g).expect("sum_axis backward broadcast")]
            }),
        )
    }

    /// Mean along `axis`, keeping the reduced dimension.
    pub fn mean_axis(&self, axis: usize) -> Var {
        let n = self.shape()[axis].max(1) as f32;
        self.sum_axis(axis).scale(1.0 / n)
    }

    // ------------------------------------------------------------------ shape ops

    /// Reshape (element count preserved).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let value = self.value().reshape(shape).expect("reshape");
        let orig = self.shape();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![g.reshape(&orig).expect("reshape backward")]),
        )
    }

    /// Swap the last two dimensions.
    pub fn transpose_last2(&self) -> Var {
        let value = self.value().transpose_last2().expect("transpose_last2");
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![g.transpose_last2().expect("transpose backward")]),
        )
    }

    /// Permute dimensions.
    pub fn permute(&self, axes: &[usize]) -> Var {
        let value = self.value().permute(axes).expect("permute");
        // inverse permutation
        let mut inverse = vec![0usize; axes.len()];
        for (i, &a) in axes.iter().enumerate() {
            inverse[a] = i;
        }
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![g.permute(&inverse).expect("permute backward")]),
        )
    }

    /// Concatenates along `axis`.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero Vars");
        let values: Vec<NdArray> = parts.iter().map(|p| p.to_array()).collect();
        let refs: Vec<&NdArray> = values.iter().collect();
        let value = NdArray::concat(&refs, axis).expect("concat");
        let sizes: Vec<usize> = parts.iter().map(|p| p.shape()[axis]).collect();
        Var::from_op(
            value,
            parts.to_vec(),
            Box::new(move |g, _| {
                let mut grads = Vec::with_capacity(sizes.len());
                let mut start = 0usize;
                for &s in &sizes {
                    grads.push(g.slice_axis(axis, start, start + s).expect("concat backward"));
                    start += s;
                }
                grads
            }),
        )
    }

    /// Slices the half-open range `[start, end)` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Var {
        let value = self.value().slice_axis(axis, start, end).expect("slice_axis");
        let parent_shape = self.shape();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![scatter_slice_axis(g, &parent_shape, axis, start)]),
        )
    }

    /// Numerically stable softmax over the last dimension.
    pub fn softmax_last(&self) -> Var {
        let y = self.value().softmax_last().expect("softmax");
        let y_saved = y.clone();
        Var::from_op(
            y,
            vec![self.clone()],
            Box::new(move |g, _| {
                // dx = y * (g - sum(g * y, last, keepdim))
                let gy = g.mul(&y_saved).expect("softmax backward");
                let last = y_saved.ndim() - 1;
                let s = gy.sum_axis(last, true).expect("softmax backward");
                let dx =
                    y_saved.mul(&g.sub(&s).expect("softmax backward")).expect("softmax backward");
                vec![dx]
            }),
        )
    }

    /// Multiplies by a constant mask (no gradient flows to the mask).
    pub fn mul_mask(&self, mask: &NdArray) -> Var {
        let mask_owned = mask.clone();
        let value = self.value().mul(mask).expect("mul_mask");
        let shape = self.shape();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![g
                    .mul(&mask_owned)
                    .expect("mul_mask backward")
                    .reduce_to_shape(&shape)
                    .expect("mul_mask backward")]
            }),
        )
    }
}

/// Places `g` (the gradient of a slice) back into a zero array of `parent_shape` at
/// offset `start` along `axis`.
fn scatter_slice_axis(g: &NdArray, parent_shape: &[usize], axis: usize, start: usize) -> NdArray {
    let mut out = NdArray::zeros(parent_shape);
    let outer: usize = parent_shape[..axis].iter().product::<usize>().max(1);
    let inner: usize = parent_shape[axis + 1..].iter().product::<usize>().max(1);
    let parent_axis = parent_shape[axis];
    let slice_axis_len = g.shape()[axis];
    let g = g.materialize(); // the incoming gradient may be a strided view
    let gdata = g.as_slice();
    let odata = out.as_mut_slice();
    for o in 0..outer {
        for a in 0..slice_axis_len {
            let src = (o * slice_axis_len + a) * inner;
            let dst = (o * parent_axis + start + a) * inner;
            odata[dst..dst + inner].copy_from_slice(&gdata[src..src + inner]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rita_tensor::allclose;

    #[test]
    fn arithmetic_gradients() {
        let a = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        let b = Var::parameter(NdArray::from_slice(&[3.0, 4.0]));
        // y = sum(a*b + a/b - b)
        let y = a.mul(&b).add(&a.div(&b)).sub(&b).sum_all();
        y.backward();
        // dy/da = b + 1/b ; dy/db = a - a/b^2 - 1
        let ga = a.grad().unwrap();
        let gb = b.grad().unwrap();
        assert!(allclose(ga.as_slice(), &[3.0 + 1.0 / 3.0, 4.25], 1e-5, 1e-5));
        assert!(allclose(
            gb.as_slice(),
            &[1.0 - 1.0 / 9.0 - 1.0, 2.0 - 2.0 / 16.0 - 1.0],
            1e-5,
            1e-5
        ));
    }

    #[test]
    fn broadcast_backward_reduces() {
        // (2,3) + (3,) bias
        let x = Var::parameter(NdArray::ones(&[2, 3]));
        let bias = Var::parameter(NdArray::zeros(&[3]));
        let y = x.add(&bias).sum_all();
        y.backward();
        assert_eq!(bias.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
        assert_eq!(x.grad().unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn activation_gradients_match_finite_difference() {
        // Avoid exact 0.0: ReLU's kink makes finite differences disagree there.
        let x0 = NdArray::from_slice(&[-1.5, -0.3, 0.05, 0.4, 2.0]);
        for (name, f) in [
            ("exp", Box::new(|v: &Var| v.exp()) as Box<dyn Fn(&Var) -> Var>),
            ("tanh", Box::new(|v: &Var| v.tanh())),
            ("sigmoid", Box::new(|v: &Var| v.sigmoid())),
            ("relu", Box::new(|v: &Var| v.relu())),
            ("gelu", Box::new(|v: &Var| v.gelu())),
            ("square", Box::new(|v: &Var| v.square())),
        ] {
            let x = Var::parameter(x0.clone());
            f(&x).sum_all().backward();
            let analytic = x.grad().unwrap();
            // central finite differences
            let eps = 1e-3f32;
            let mut numeric = Vec::new();
            for i in 0..x0.len() {
                let mut plus = x0.clone();
                plus.as_mut_slice()[i] += eps;
                let mut minus = x0.clone();
                minus.as_mut_slice()[i] -= eps;
                let fp = f(&Var::constant(plus)).sum_all().item();
                let fm = f(&Var::constant(minus)).sum_all().item();
                numeric.push((fp - fm) / (2.0 * eps));
            }
            assert!(
                allclose(analytic.as_slice(), &numeric, 2e-2, 2e-2),
                "{name}: {:?} vs {:?}",
                analytic.as_slice(),
                numeric
            );
        }
    }

    #[test]
    fn ln_sqrt_gradients() {
        let x = Var::parameter(NdArray::from_slice(&[0.5, 2.0, 4.0]));
        x.ln().sum_all().backward();
        assert!(allclose(x.grad().unwrap().as_slice(), &[2.0, 0.5, 0.25], 1e-5, 1e-5));
        let y = Var::parameter(NdArray::from_slice(&[4.0, 9.0]));
        y.sqrt().sum_all().backward();
        assert!(allclose(y.grad().unwrap().as_slice(), &[0.25, 1.0 / 6.0], 1e-5, 1e-5));
    }

    #[test]
    fn reduction_gradients() {
        let x = Var::parameter(NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap());
        x.mean_all().backward();
        assert!(x.grad().unwrap().as_slice().iter().all(|&g| (g - 1.0 / 6.0).abs() < 1e-6));
        x.zero_grad();
        // sum over axis 1, then weight rows differently via mul by constant
        let w = Var::constant(NdArray::from_vec(vec![1.0, 10.0], &[2, 1]).unwrap());
        x.sum_axis(1).mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(&g.as_slice()[..3], &[1.0, 1.0, 1.0]);
        assert_eq!(&g.as_slice()[3..], &[10.0, 10.0, 10.0]);
    }

    #[test]
    fn shape_op_gradients() {
        let x = Var::parameter(NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap());
        let y = x.reshape(&[3, 2]).transpose_last2().sum_all();
        y.backward();
        assert!(x.grad().unwrap().as_slice().iter().all(|&g| g == 1.0));

        let z = Var::parameter(NdArray::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap());
        // weight only a slice
        z.slice_axis(1, 1, 3).scale(2.0).sum_all().backward();
        let g = z.grad().unwrap();
        assert_eq!(g.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(g.get(&[0, 1, 0]).unwrap(), 2.0);
        assert_eq!(g.get(&[1, 2, 3]).unwrap(), 2.0);
    }

    #[test]
    fn permute_gradient_roundtrips() {
        let x = Var::parameter(NdArray::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap());
        let w = Var::constant(NdArray::arange(0.0, 0.1, 24).reshape(&[4, 2, 3]).unwrap());
        x.permute(&[2, 0, 1]).mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        // gradient of x[i,j,k] is w[k,i,j]
        assert!((g.get(&[1, 2, 3]).unwrap() - w.value().get(&[3, 1, 2]).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn concat_gradient_splits() {
        let a = Var::parameter(NdArray::ones(&[2, 2]));
        let b = Var::parameter(NdArray::ones(&[2, 3]));
        let c = Var::concat(&[a.clone(), b.clone()], 1);
        assert_eq!(c.shape(), vec![2, 5]);
        let w = Var::constant(NdArray::arange(0.0, 1.0, 10).reshape(&[2, 5]).unwrap());
        c.mul(&w).sum_all().backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 1.0, 5.0, 6.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 3.0, 4.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let x0 = NdArray::from_vec(vec![0.2, -0.5, 1.0, 0.0, 0.3, -1.0], &[2, 3]).unwrap();
        let w = NdArray::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]).unwrap();
        let x = Var::parameter(x0.clone());
        x.softmax_last().mul(&Var::constant(w.clone())).sum_all().backward();
        let analytic = x.grad().unwrap();
        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp =
                Var::constant(plus).softmax_last().mul(&Var::constant(w.clone())).sum_all().item();
            let fm =
                Var::constant(minus).softmax_last().mul(&Var::constant(w.clone())).sum_all().item();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic.as_slice()[i] - numeric).abs() < 2e-3,
                "softmax grad {i}: {} vs {numeric}",
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn mask_blocks_gradient_where_zero() {
        let x = Var::parameter(NdArray::ones(&[4]));
        let mask = NdArray::from_slice(&[1.0, 0.0, 1.0, 0.0]);
        x.mul_mask(&mask).sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 0.0, 1.0, 0.0]);
    }
}
