//! Matrix-product operations on [`Var`]: batched matmul, the `Q·Kᵀ` convenience form,
//! and the window unfold/fold pair used by the time-aware convolution.

use crate::var::Var;
#[allow(unused_imports)] // doc links only
use rita_tensor::NdArray;

impl Var {
    /// Batched matrix product (see [`NdArray::matmul`] for the broadcasting rules).
    pub fn matmul(&self, other: &Var) -> Var {
        let value = self.value().matmul(&other.value()).expect("matmul: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // dA = g · Bᵀ, dB = Aᵀ · g  (then undo batch broadcasting)
                let da = g
                    .matmul(&b.transpose_last2().expect("matmul backward"))
                    .expect("matmul backward");
                let db = a
                    .transpose_last2()
                    .expect("matmul backward")
                    .matmul(g)
                    .expect("matmul backward");
                vec![
                    da.reduce_to_shape(&sa).expect("matmul backward reduce"),
                    db.reduce_to_shape(&sb).expect("matmul backward reduce"),
                ]
            }),
        )
    }

    /// `self · otherᵀ` over the last two dimensions (attention's `Q·Kᵀ`).
    pub fn matmul_nt(&self, other: &Var) -> Var {
        self.matmul_nt_scaled(other, 1.0)
    }

    /// `alpha · self · otherᵀ` in one kernel pass — attention's scaled score product
    /// `Q · Kᵀ / √d` without the scaled `(…, n, n)` temporary that a separate
    /// [`Var::scale`] would materialise. The backward applies the same fused scaling to
    /// both parent gradients.
    pub fn matmul_nt_scaled(&self, other: &Var, alpha: f32) -> Var {
        let value = self
            .value()
            .matmul_nt_scaled(&other.value(), alpha)
            .expect("matmul_nt_scaled: incompatible shapes");
        let (sa, sb) = (self.shape(), other.shape());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // y = alpha · A · Bᵀ ⇒ dA = alpha · g · B, dB = alpha · gᵀ · A — both
                // through the scaled kernel, so the backward allocates no scaled copies
                // either.
                let da = g.matmul_scaled(&b, alpha).expect("matmul_nt_scaled backward");
                let db = g
                    .transpose_last2()
                    .expect("matmul_nt_scaled backward")
                    .matmul_scaled(&a, alpha)
                    .expect("matmul_nt_scaled backward");
                vec![
                    da.reduce_to_shape(&sa).expect("matmul_nt_scaled backward reduce"),
                    db.reduce_to_shape(&sb).expect("matmul_nt_scaled backward reduce"),
                ]
            }),
        )
    }

    /// Unfolds a `(batch, channels, length)` signal into `(batch, n_windows, channels * width)`
    /// windows of size `width` taken every `stride` steps.
    ///
    /// This is the im2col step of the time-aware convolution: a subsequent [`Var::matmul`]
    /// with a `(channels * width, d_model)` weight realises the convolution, exactly as the
    /// RITA paper's input layer chunks a timeseries into windows and embeds each window.
    pub fn unfold1d(&self, width: usize, stride: usize) -> Var {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "unfold1d expects (batch, channels, length), got {shape:?}");
        let (c, l) = (shape[1], shape[2]);
        assert!(
            width > 0 && stride > 0 && l >= width,
            "invalid unfold1d width/stride for length {l}"
        );
        let value = self.value().unfold1d(width, stride).expect("unfold1d");
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![g.fold1d(c, width, stride, l).expect("unfold1d backward")]),
        )
    }

    /// Folds `(batch, n_windows, channels * width)` windows back into a
    /// `(batch, channels, length)` signal by summing overlapping contributions —
    /// the transpose-convolution-style decoder used by the imputation/forecasting heads.
    ///
    /// With `stride == width` (non-overlapping windows) this is an exact inverse of
    /// [`Var::unfold1d`].
    pub fn fold1d(&self, channels: usize, width: usize, stride: usize, length: usize) -> Var {
        let shape = self.shape();
        assert_eq!(shape.len(), 3, "fold1d expects (batch, n, channels*width), got {shape:?}");
        let (_, n, cw) = (shape[0], shape[1], shape[2]);
        assert_eq!(cw, channels * width, "fold1d: last dim {cw} != channels*width");
        assert!((n - 1) * stride + width <= length, "fold1d: windows exceed target length");
        let value = self.value().fold1d(channels, width, stride, length).expect("fold1d");
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                // The adjoint gathers exactly the `n` windows the forward scattered.
                // When `length` leaves slack past the last window, unfolding the
                // gradient yields *extra* trailing windows — keep only the first `n`
                // or the leaf would receive a wrong-shaped gradient.
                let u = g.unfold1d(width, stride).expect("fold1d backward");
                let grad =
                    if u.shape()[1] == n { u } else { u.slice_axis(1, 0, n).expect("fold slice") };
                vec![grad]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rita_tensor::{allclose, NdArray};

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let a0 = NdArray::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.5, -0.7], &[2, 3]).unwrap();
        let b0 = NdArray::from_vec(vec![1.0, 0.2, -0.4, 0.9, 0.0, 1.1], &[3, 2]).unwrap();
        let a = Var::parameter(a0.clone());
        let b = Var::parameter(b0.clone());
        a.matmul(&b).sum_all().backward();
        let ga = a.grad().unwrap();
        let gb = b.grad().unwrap();

        let eps = 1e-3f32;
        for i in 0..a0.len() {
            let mut plus = a0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = a0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = plus.matmul(&b0).unwrap().sum_all();
            let fm = minus.matmul(&b0).unwrap().sum_all();
            assert!((ga.as_slice()[i] - (fp - fm) / (2.0 * eps)).abs() < 1e-2);
        }
        for i in 0..b0.len() {
            let mut plus = b0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = b0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = a0.matmul(&plus).unwrap().sum_all();
            let fm = a0.matmul(&minus).unwrap().sum_all();
            assert!((gb.as_slice()[i] - (fp - fm) / (2.0 * eps)).abs() < 1e-2);
        }
    }

    #[test]
    fn batched_matmul_gradient_shapes() {
        let a = Var::parameter(NdArray::ones(&[4, 3, 2]));
        let w = Var::parameter(NdArray::ones(&[2, 5]));
        let y = a.matmul(&w);
        assert_eq!(y.shape(), vec![4, 3, 5]);
        y.sum_all().backward();
        assert_eq!(a.grad().unwrap().shape(), &[4, 3, 2]);
        // Broadcast weight gradient accumulates over the batch: each entry = 4*3 = 12
        let gw = w.grad().unwrap();
        assert_eq!(gw.shape(), &[2, 5]);
        assert!(gw.as_slice().iter().all(|&g| (g - 12.0).abs() < 1e-5));
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let q = Var::parameter(NdArray::arange(0.0, 0.1, 24).reshape(&[2, 3, 4]).unwrap());
        let k = Var::parameter(NdArray::arange(0.5, -0.05, 40).reshape(&[2, 5, 4]).unwrap());
        let a = q.matmul_nt(&k);
        let b = q.matmul(&k.transpose_last2());
        assert!(allclose(a.value().as_slice(), b.value().as_slice(), 1e-6, 1e-6));
    }

    #[test]
    fn unfold_nonoverlapping_is_chunking() {
        // 1 batch, 2 channels, length 6, width 3, stride 3 -> 2 windows
        let x = NdArray::from_vec((0..12).map(|v| v as f32).collect(), &[1, 2, 6]).unwrap();
        let v = Var::constant(x);
        let u = v.unfold1d(3, 3);
        assert_eq!(u.shape(), vec![1, 2, 6]);
        // window 0: channel0 [0,1,2], channel1 [6,7,8]
        assert_eq!(&u.value().as_slice()[..6], &[0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        // window 1: channel0 [3,4,5], channel1 [9,10,11]
        assert_eq!(&u.value().as_slice()[6..], &[3.0, 4.0, 5.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn unfold_overlapping_counts_contributions_in_grad() {
        // length 5, width 3, stride 1 -> 3 windows; middle elements appear in more windows
        let x = Var::parameter(NdArray::ones(&[1, 1, 5]));
        x.unfold1d(3, 1).sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 2.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn fold_inverts_unfold_for_nonoverlapping_windows() {
        let x0 = NdArray::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let x = Var::parameter(x0.clone());
        let u = x.unfold1d(2, 2);
        let f = u.fold1d(3, 2, 2, 4);
        assert!(allclose(f.value().as_slice(), x0.as_slice(), 1e-6, 1e-6));
        // Gradient through the roundtrip is the identity.
        f.sum_all().backward();
        assert!(x.grad().unwrap().as_slice().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }

    /// Regression: with slack between the last window and `length` (here one window of
    /// width 2 folded into length 5), the backward used to unfold the full-length
    /// gradient into *more* windows than the input had, accumulating a wrong-shaped
    /// gradient silently in release builds.
    #[test]
    fn fold_backward_with_length_slack_keeps_input_window_count() {
        let w = Var::parameter(NdArray::ones(&[1, 1, 2]));
        let folded = w.fold1d(1, 2, 2, 5);
        assert_eq!(folded.shape(), vec![1, 1, 5]);
        folded.sum_all().backward();
        let g = w.grad().unwrap();
        assert_eq!(g.shape(), &[1, 1, 2], "gradient must match the parameter shape");
        assert!(g.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn fold_gradient_matches_unfold_forward() {
        let w = Var::parameter(NdArray::ones(&[1, 2, 4]));
        // fold (1, 2, 1*4)? use channels=2, width=2, stride=2, length=4
        let folded = w.fold1d(2, 2, 2, 4);
        assert_eq!(folded.shape(), vec![1, 2, 4]);
        folded.sum_all().backward();
        assert!(w.grad().unwrap().as_slice().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }
}
