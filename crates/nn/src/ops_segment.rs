//! Sparse grouping operations on [`Var`]: batched segment-sum and row gathering.
//!
//! These wrap [`rita_tensor::NdArray::segment_sum`] / [`rita_tensor::NdArray::gather_rows_batched`] as autograd
//! ops. The two are adjoint, which makes the backward rules one line each:
//!
//! * `segment_sum` backward — each input row contributed to exactly one segment, so its
//!   gradient is that segment's upstream gradient: a **gather** with the same assignments.
//! * `gather_rows_batched` backward — each source row was read by zero or more outputs,
//!   so its gradient is the sum of their upstream gradients: a **scatter-add**, i.e. a
//!   segment sum with the gather indices as the assignments.
//!
//! The group-attention pipeline in `rita-core` uses `segment_sum` for both the
//! representative keys (`S · K` = segment sum / group size) and the aggregated values
//! (`M · V` = segment sum), eliminating the dense `(batch, heads, N, n)` constant
//! matrices the matmul formulation required.

use std::sync::Arc;

use crate::var::Var;

impl Var {
    /// Batched segment sum over the second-to-last axis (see [`rita_tensor::NdArray::segment_sum`]).
    ///
    /// `segments` assigns every `(block, row)` pair of the `(..., n, d)` input to a
    /// segment in `0..n_segments`, flattened block-major; the result has shape
    /// `(..., n_segments, d)`. Gradient rule: the upstream gradient is gathered back to
    /// the rows that were summed. Accepts a plain slice (copied once into the backward
    /// closure) or an `Arc<[usize]>` — hot paths applying the same assignment list to
    /// several tensors (group attention's K and V) share one allocation that way.
    pub fn segment_sum(&self, segments: impl Into<Arc<[usize]>>, n_segments: usize) -> Var {
        let segments: Arc<[usize]> = segments.into();
        let value = self.value().segment_sum(&segments, n_segments).expect("segment_sum");
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![g.gather_rows_batched(&segments).expect("segment_sum backward")]
            }),
        )
    }

    /// Batched row gather over the second-to-last axis (see
    /// [`rita_tensor::NdArray::gather_rows_batched`]).
    ///
    /// `indices` selects one source row per output row within each batch block,
    /// flattened block-major (slice or shared `Arc<[usize]>`, as for
    /// [`Var::segment_sum`]). Gradient rule: upstream gradients are scatter-added onto
    /// the source rows (a segment sum keyed by the same indices).
    pub fn gather_rows_batched(&self, indices: impl Into<Arc<[usize]>>) -> Var {
        let indices: Arc<[usize]> = indices.into();
        let value = self.value().gather_rows_batched(&indices[..]).expect("gather_rows_batched");
        let shape = self.shape();
        let m = shape[shape.len() - 2];
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![g.segment_sum(&indices, m).expect("gather_rows_batched backward")]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::gradcheck;
    use rita_tensor::NdArray;

    #[test]
    fn segment_sum_forward_matches_tensor_kernel() {
        let x0 = NdArray::arange(0.0, 1.0, 2 * 3 * 2).reshape(&[2, 3, 2]).unwrap();
        let segments = [1usize, 0, 1, 0, 0, 1];
        let v = Var::constant(x0.clone()).segment_sum(&segments[..], 2);
        assert_eq!(v.to_array(), x0.segment_sum(&segments[..], 2).unwrap());
    }

    #[test]
    fn segment_sum_gradient_is_gather() {
        // y = <w, segment_sum(x)>: dy/dx_i = w[segment(i)].
        let x = Var::parameter(NdArray::ones(&[4, 2]));
        let w = NdArray::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[2, 2]).unwrap();
        let segments = [1usize, 0, 1, 1];
        x.segment_sum(&segments[..], 2).mul(&Var::constant(w)).sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.as_slice(), &[10.0, 20.0, 1.0, 2.0, 10.0, 20.0, 10.0, 20.0]);
    }

    #[test]
    fn gather_gradient_is_scatter_add() {
        // Rows read twice accumulate two upstream gradients; unread rows get zero.
        let x = Var::parameter(NdArray::ones(&[3, 2]));
        x.gather_rows_batched(&[2usize, 2, 0][..]).sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn segment_sum_gradcheck() {
        let x0 = NdArray::from_vec(
            vec![0.3, -0.8, 1.2, 0.05, -0.4, 0.7, 0.9, -1.1, 0.2, 0.6, -0.3, 0.15],
            &[2, 3, 2],
        )
        .unwrap();
        let segments = [0usize, 1, 0, 1, 1, 0];
        let report = gradcheck(|x| x.segment_sum(&segments[..], 2).square().sum_all(), &x0, 1e-2);
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn gather_rows_gradcheck() {
        let x0 = NdArray::from_vec(vec![0.3, -0.8, 1.2, 0.05, -0.4, 0.7, 0.9, -1.1], &[2, 2, 2])
            .unwrap();
        let indices = [1usize, 0, 0, 0, 1, 1];
        let report =
            gradcheck(|x| x.gather_rows_batched(&indices[..]).square().sum_all(), &x0, 1e-2);
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn composed_pipeline_gradcheck() {
        // The group-attention usage: representatives = segment_sum(K) / counts, then a
        // product with Q — checks the gather/scatter pair composes under matmul.
        let x0 =
            NdArray::from_vec(vec![0.5, -0.2, 0.8, 0.1, -0.6, 0.4, 0.3, 0.9], &[1, 4, 2]).unwrap();
        let segments = [0usize, 1, 0, 1];
        let inv_counts = NdArray::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[1, 2, 2]).unwrap();
        let q = NdArray::from_vec(vec![0.7, -0.3, 0.2, 1.1, -0.5, 0.6], &[1, 3, 2]).unwrap();
        let report = gradcheck(
            |x| {
                let reps = x.segment_sum(&segments[..], 2).mul(&Var::constant(inv_counts.clone()));
                Var::constant(q.clone()).matmul_nt(&reps).square().sum_all()
            },
            &x0,
            1e-2,
        );
        assert!(report.passes(2e-2, 2e-2), "{report:?}");
    }
}
