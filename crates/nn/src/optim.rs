//! Optimisers: SGD (with momentum) and AdamW (decoupled weight decay), plus global
//! gradient-norm clipping. The RITA experiments use AdamW with lr = 1e-4 and weight
//! decay = 1e-4, matching the paper's configuration (Appendix A.1).
//!
//! Both optimisers manage a set of **named, deduplicated** parameter slots: moment state
//! is keyed by the parameter's [`ParamPath`] (so it can round-trip through checkpoints),
//! and a `Var` appearing under several paths (tied weights) is collapsed — by node
//! identity — into one slot, so it is stepped and weight-decayed exactly once per
//! [`Optimizer::step`] no matter how many modules share it.

use std::collections::HashSet;

use crate::module::{Module, ParamPath};
use crate::var::Var;
use rita_tensor::NdArray;

/// A first-order optimiser over a fixed set of parameters.
pub trait Optimizer {
    /// Applies one update step from the currently accumulated gradients.
    fn step(&mut self);
    /// Clears gradients of all managed parameters.
    fn zero_grad(&self);
    /// The (deduplicated) parameters managed by this optimiser.
    fn parameters(&self) -> Vec<Var>;
}

/// Deduplicates `(path, var)` pairs by node identity: the first path a shared `Var`
/// appears under wins, later occurrences are dropped.
fn dedupe_named(named: Vec<(ParamPath, Var)>) -> Vec<(ParamPath, Var)> {
    let mut seen: HashSet<usize> = HashSet::with_capacity(named.len());
    named.into_iter().filter(|(_, var)| seen.insert(var.id())).collect()
}

/// Wraps anonymous parameters in positional paths (`param.0`, `param.1`, …) so the
/// plain-`Vec<Var>` constructors keep working for ad-hoc use.
fn positional_named(params: Vec<Var>) -> Vec<(ParamPath, Var)> {
    params
        .into_iter()
        .enumerate()
        .map(|(i, var)| (ParamPath::root().join("param").join(&i.to_string()), var))
        .collect()
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    slots: Vec<SgdSlot>,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
}

struct SgdSlot {
    #[allow(dead_code)] // the key exists for symmetry with AdamW / future state export
    path: ParamPath,
    var: Var,
    velocity: NdArray,
}

impl Sgd {
    /// Creates an SGD optimiser over anonymous parameters (deduplicated by identity).
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        Self::with_named(positional_named(params), lr, momentum)
    }

    /// Creates an SGD optimiser over a module's named parameter tree.
    pub fn for_module(module: &(impl Module + ?Sized), lr: f32, momentum: f32) -> Self {
        Self::with_named(module.named_parameters(), lr, momentum)
    }

    /// Creates an SGD optimiser over named parameters (deduplicated by identity).
    pub fn with_named(named: Vec<(ParamPath, Var)>, lr: f32, momentum: f32) -> Self {
        let slots = dedupe_named(named)
            .into_iter()
            .map(|(path, var)| {
                let velocity = NdArray::zeros(&var.shape());
                SgdSlot { path, var, velocity }
            })
            .collect();
        Self { slots, lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for slot in &mut self.slots {
            let Some(g) = slot.var.grad() else { continue };
            if self.momentum > 0.0 {
                slot.velocity = slot.velocity.scale(self.momentum).add(&g).expect("sgd momentum");
                let v = &slot.velocity;
                slot.var.update_value(|w| w.axpy(-self.lr, v).expect("sgd step"));
            } else {
                slot.var.update_value(|w| w.axpy(-self.lr, &g).expect("sgd step"));
            }
        }
    }

    fn zero_grad(&self) {
        for slot in &self.slots {
            slot.var.zero_grad();
        }
    }

    fn parameters(&self) -> Vec<Var> {
        self.slots.iter().map(|s| s.var.clone()).collect()
    }
}

/// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter, 2017).
pub struct AdamW {
    slots: Vec<AdamSlot>,
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    t: usize,
}

struct AdamSlot {
    path: ParamPath,
    var: Var,
    m: NdArray,
    v: NdArray,
}

/// Serialisable snapshot of an [`AdamW`]'s moment state, keyed by parameter path —
/// what a checkpoint stores so that resumed training continues step-for-step.
#[derive(Debug, Clone)]
pub struct AdamWState {
    /// Number of steps taken.
    pub steps: usize,
    /// Learning rate at capture time.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    /// Per-parameter `(path, first moment, second moment)` triples.
    pub moments: Vec<(ParamPath, NdArray, NdArray)>,
}

impl AdamW {
    /// Creates an AdamW optimiser over anonymous parameters (deduplicated by identity)
    /// with the paper's defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(params: Vec<Var>, lr: f32, weight_decay: f32) -> Self {
        Self::with_named(positional_named(params), lr, weight_decay)
    }

    /// Creates an AdamW optimiser over a module's named parameter tree, so the moment
    /// state is keyed by stable paths (checkpointable) and tied weights collapse into
    /// one slot.
    pub fn for_module(module: &(impl Module + ?Sized), lr: f32, weight_decay: f32) -> Self {
        Self::with_named(module.named_parameters(), lr, weight_decay)
    }

    /// Creates an AdamW optimiser over named parameters (deduplicated by identity).
    pub fn with_named(named: Vec<(ParamPath, Var)>, lr: f32, weight_decay: f32) -> Self {
        let slots = dedupe_named(named)
            .into_iter()
            .map(|(path, var)| {
                let m = NdArray::zeros(&var.shape());
                let v = NdArray::zeros(&var.shape());
                AdamSlot { path, var, m, v }
            })
            .collect();
        Self { slots, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// Snapshots the moment state (for checkpoints).
    pub fn state(&self) -> AdamWState {
        AdamWState {
            steps: self.t,
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            moments: self
                .slots
                .iter()
                .map(|s| (s.path.clone(), s.m.clone(), s.v.clone()))
                .collect(),
        }
    }

    /// Restores moment state captured by [`AdamW::state`]. Slots are matched by path;
    /// every managed slot must be present in `state` with a matching shape.
    pub fn load_state(&mut self, state: &AdamWState) -> Result<(), String> {
        let by_path: std::collections::HashMap<&str, (&NdArray, &NdArray)> =
            state.moments.iter().map(|(p, m, v)| (p.as_str(), (m, v))).collect();
        if by_path.len() > self.slots.len() {
            let known: std::collections::HashSet<&str> =
                self.slots.iter().map(|s| s.path.as_str()).collect();
            let extra: Vec<&str> = by_path.keys().copied().filter(|p| !known.contains(p)).collect();
            return Err(format!(
                "optimizer state holds moments for unknown parameters {extra:?} \
                 (architecture drift)"
            ));
        }
        for slot in &mut self.slots {
            let Some((m, v)) = by_path.get(slot.path.as_str()) else {
                return Err(format!("optimizer state missing moments for '{}'", slot.path));
            };
            if m.shape() != slot.var.shape() || v.shape() != slot.var.shape() {
                return Err(format!(
                    "optimizer moment shape mismatch for '{}': parameter {:?} vs state {:?}/{:?}",
                    slot.path,
                    slot.var.shape(),
                    m.shape(),
                    v.shape()
                ));
            }
            slot.m = (*m).clone();
            slot.v = (*v).clone();
        }
        self.t = state.steps;
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.weight_decay = state.weight_decay;
        Ok(())
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for slot in &mut self.slots {
            let Some(g) = slot.var.grad() else { continue };
            slot.m = slot.m.scale(self.beta1).add(&g.scale(1.0 - self.beta1)).expect("adamw m");
            slot.v = slot
                .v
                .scale(self.beta2)
                .add(&g.mul(&g).expect("adamw g^2").scale(1.0 - self.beta2))
                .expect("adamw v");
            let m_hat = slot.m.scale(1.0 / bc1);
            let v_hat = slot.v.scale(1.0 / bc2);
            let eps = self.eps;
            let update = m_hat.div(&v_hat.sqrt().add_scalar(eps)).expect("adamw update");
            let lr = self.lr;
            let wd = self.weight_decay;
            slot.var.update_value(|w| {
                if wd > 0.0 {
                    // decoupled weight decay: w ← w − lr · wd · w
                    let decayed = w.scale(1.0 - lr * wd);
                    *w = decayed;
                }
                w.axpy(-lr, &update).expect("adamw step");
            });
        }
    }

    fn zero_grad(&self) {
        for slot in &self.slots {
            slot.var.zero_grad();
        }
    }

    fn parameters(&self) -> Vec<Var> {
        self.slots.iter().map(|s| s.var.clone()).collect()
    }
}

/// Rescales all gradients so their global L2 norm does not exceed `max_norm`.
/// Returns the pre-clipping norm.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.sq_norm();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(Some(g.scale(scale)));
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ParamVisitor;

    /// Minimises f(w) = ||w - target||² and checks convergence.
    fn quadratic_converges(mut opt: impl Optimizer, w: Var, target: NdArray, iters: usize) -> f32 {
        for _ in 0..iters {
            opt.zero_grad();
            let diff = w.sub(&Var::constant(target.clone()));
            let loss = diff.square().sum_all();
            loss.backward();
            opt.step();
        }
        let diff = w.to_array().sub(&target).unwrap();
        diff.norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Var::parameter(NdArray::zeros(&[4]));
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        let opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let err = quadratic_converges(opt, w, target, 100);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let target = NdArray::from_slice(&[2.0, -1.0]);
        let w1 = Var::parameter(NdArray::zeros(&[2]));
        let plain =
            quadratic_converges(Sgd::new(vec![w1.clone()], 0.01, 0.0), w1, target.clone(), 50);
        let w2 = Var::parameter(NdArray::zeros(&[2]));
        let momentum = quadratic_converges(Sgd::new(vec![w2.clone()], 0.01, 0.9), w2, target, 50);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let w = Var::parameter(NdArray::zeros(&[4]));
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        let opt = AdamW::new(vec![w.clone()], 0.05, 0.0);
        let err = quadratic_converges(opt, w, target, 300);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        // With zero gradient signal, weight decay alone should shrink the weights.
        let w = Var::parameter(NdArray::full(&[4], 10.0));
        let mut opt = AdamW::new(vec![w.clone()], 0.1, 0.5);
        for _ in 0..10 {
            opt.zero_grad();
            // loss independent of w: gradient is 0 but a grad entry must exist for the step
            let loss = w.mul(&Var::constant(NdArray::zeros(&[4]))).sum_all();
            loss.backward();
            opt.step();
        }
        assert!(w.to_array().as_slice().iter().all(|&x| x < 10.0 && x > 0.0));
        assert_eq!(opt.steps(), 10);
    }

    #[test]
    fn skips_params_without_gradients() {
        let used = Var::parameter(NdArray::ones(&[2]));
        let unused = Var::parameter(NdArray::ones(&[2]));
        let mut opt = Sgd::new(vec![used.clone(), unused.clone()], 0.5, 0.0);
        opt.zero_grad();
        used.scale(2.0).sum_all().backward();
        opt.step();
        assert_eq!(unused.to_array().as_slice(), &[1.0, 1.0]);
        assert_ne!(used.to_array().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn clip_grad_norm_bounds_global_norm() {
        let a = Var::parameter(NdArray::ones(&[2]));
        let b = Var::parameter(NdArray::ones(&[2]));
        a.scale(3.0).sum_all().backward();
        b.scale(4.0).sum_all().backward();
        // grads: [3,3] and [4,4]; global norm = sqrt(9+9+16+16) = sqrt(50)
        let pre = clip_grad_norm(&[a.clone(), b.clone()], 1.0);
        assert!((pre - 50.0f32.sqrt()).abs() < 1e-4);
        let mut total = 0.0;
        for p in [&a, &b] {
            total += p.grad().unwrap().sq_norm();
        }
        assert!((total.sqrt() - 1.0).abs() < 1e-4);
    }

    /// A module reporting the same `Var` under two paths — the tied-weight setting.
    struct TiedModule {
        w: Var,
    }

    impl Module for TiedModule {
        fn visit_params(&self, v: &mut ParamVisitor<'_>) {
            v.scope("embed", |v| v.leaf("weight", &self.w));
            v.scope("decode", |v| v.leaf("weight", &self.w));
        }
    }

    /// Regression: a tied weight used to be stepped (and weight-decayed) once per
    /// occurrence in `parameters()`. The deduplicated registry must step it exactly once.
    #[test]
    fn tied_weights_are_stepped_once() {
        let tied = TiedModule { w: Var::parameter(NdArray::full(&[3], 2.0)) };
        let mut opt = AdamW::for_module(&tied, 0.1, 0.5);
        assert_eq!(opt.parameters().len(), 1, "tied weight must occupy one slot");

        // Reference: the same initial weight managed once, same gradient.
        let reference = Var::parameter(NdArray::full(&[3], 2.0));
        let mut ref_opt = AdamW::new(vec![reference.clone()], 0.1, 0.5);

        for _ in 0..3 {
            opt.zero_grad();
            ref_opt.zero_grad();
            tied.w.scale(3.0).sum_all().backward();
            reference.scale(3.0).sum_all().backward();
            opt.step();
            ref_opt.step();
        }
        assert_eq!(
            tied.w.to_array().as_slice(),
            reference.to_array().as_slice(),
            "tied weight must receive exactly one update (and one decay) per step"
        );
    }

    #[test]
    fn tied_weights_dedupe_in_sgd_too() {
        let tied = TiedModule { w: Var::parameter(NdArray::full(&[2], 1.0)) };
        let mut opt = Sgd::for_module(&tied, 0.5, 0.0);
        assert_eq!(opt.parameters().len(), 1);
        opt.zero_grad();
        tied.w.scale(2.0).sum_all().backward();
        opt.step();
        // grad = 2 per element; one step of lr 0.5 → 1 - 1.0 = 0.0 (not -1.0).
        assert_eq!(tied.w.to_array().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn adamw_state_roundtrips_by_path() {
        let tied = TiedModule { w: Var::parameter(NdArray::full(&[2], 5.0)) };
        let mut opt = AdamW::for_module(&tied, 0.05, 0.01);
        for _ in 0..4 {
            opt.zero_grad();
            tied.w.square().sum_all().backward();
            opt.step();
        }
        let state = opt.state();
        assert_eq!(state.steps, 4);
        assert_eq!(state.moments.len(), 1);
        assert_eq!(state.moments[0].0.as_str(), "embed.weight");

        // A fresh optimiser over a structurally identical module accepts the state.
        let clone = TiedModule { w: Var::parameter(tied.w.to_array()) };
        let mut resumed = AdamW::for_module(&clone, 0.05, 0.01);
        resumed.load_state(&state).unwrap();
        assert_eq!(resumed.steps(), 4);

        // Both take one more identical step and agree bit-for-bit.
        opt.zero_grad();
        resumed.zero_grad();
        tied.w.square().sum_all().backward();
        clone.w.square().sum_all().backward();
        opt.step();
        resumed.step();
        assert_eq!(tied.w.to_array().as_slice(), clone.w.to_array().as_slice());
    }

    #[test]
    fn load_state_rejects_missing_and_mismatched_paths() {
        let tied = TiedModule { w: Var::parameter(NdArray::zeros(&[2])) };
        let opt = AdamW::for_module(&tied, 0.1, 0.0);
        let mut other = AdamW::new(vec![Var::parameter(NdArray::zeros(&[2]))], 0.1, 0.0);
        let err = other.load_state(&opt.state()).unwrap_err();
        assert!(err.contains("missing moments"), "{err}");

        let mut bad_state = opt.state();
        bad_state.moments[0].1 = NdArray::zeros(&[3]);
        let mut resumed = AdamW::for_module(&tied, 0.1, 0.0);
        let err = resumed.load_state(&bad_state).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");

        // State from a *larger* model (extra paths) must be rejected, not silently
        // truncated — symmetric with the checkpoint loader's leftover-tensor check.
        let mut oversized = opt.state();
        oversized.moments.push((
            ParamPath::new("ghost.weight"),
            NdArray::zeros(&[2]),
            NdArray::zeros(&[2]),
        ));
        let mut resumed = AdamW::for_module(&tied, 0.1, 0.0);
        let err = resumed.load_state(&oversized).unwrap_err();
        assert!(err.contains("unknown parameters"), "{err}");
    }
}
