//! Optimisers: SGD (with momentum) and AdamW (decoupled weight decay), plus global
//! gradient-norm clipping. The RITA experiments use AdamW with lr = 1e-4 and weight
//! decay = 1e-4, matching the paper's configuration (Appendix A.1).

use crate::var::Var;
use rita_tensor::NdArray;

/// A first-order optimiser over a fixed set of parameters.
pub trait Optimizer {
    /// Applies one update step from the currently accumulated gradients.
    fn step(&mut self);
    /// Clears gradients of all managed parameters.
    fn zero_grad(&self);
    /// The parameters managed by this optimiser.
    fn parameters(&self) -> &[Var];
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Var>,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<NdArray>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        Self { params, lr, momentum, velocity }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            if self.momentum > 0.0 {
                *v = v.scale(self.momentum).add(&g).expect("sgd momentum");
                p.update_value(|w| w.axpy(-self.lr, v).expect("sgd step"));
            } else {
                p.update_value(|w| w.axpy(-self.lr, &g).expect("sgd step"));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter, 2017).
pub struct AdamW {
    params: Vec<Var>,
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    m: Vec<NdArray>,
    v: Vec<NdArray>,
    t: usize,
}

impl AdamW {
    /// Creates an AdamW optimiser with the paper's defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(params: Vec<Var>, lr: f32, weight_decay: f32) -> Self {
        let m = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        Self { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, m, v, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1)).expect("adamw m");
            *v = v
                .scale(self.beta2)
                .add(&g.mul(&g).expect("adamw g^2").scale(1.0 - self.beta2))
                .expect("adamw v");
            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            let eps = self.eps;
            let update = m_hat.div(&v_hat.sqrt().add_scalar(eps)).expect("adamw update");
            let lr = self.lr;
            let wd = self.weight_decay;
            p.update_value(|w| {
                if wd > 0.0 {
                    // decoupled weight decay: w ← w − lr · wd · w
                    let decayed = w.scale(1.0 - lr * wd);
                    *w = decayed;
                }
                w.axpy(-lr, &update).expect("adamw step");
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// Rescales all gradients so their global L2 norm does not exceed `max_norm`.
/// Returns the pre-clipping norm.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.sq_norm();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(Some(g.scale(scale)));
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(w) = ||w - target||² and checks convergence.
    fn quadratic_converges(mut opt: impl Optimizer, w: Var, target: NdArray, iters: usize) -> f32 {
        for _ in 0..iters {
            opt.zero_grad();
            let diff = w.sub(&Var::constant(target.clone()));
            let loss = diff.square().sum_all();
            loss.backward();
            opt.step();
        }
        let diff = w.to_array().sub(&target).unwrap();
        diff.norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Var::parameter(NdArray::zeros(&[4]));
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        let opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let err = quadratic_converges(opt, w, target, 100);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let target = NdArray::from_slice(&[2.0, -1.0]);
        let w1 = Var::parameter(NdArray::zeros(&[2]));
        let plain =
            quadratic_converges(Sgd::new(vec![w1.clone()], 0.01, 0.0), w1, target.clone(), 50);
        let w2 = Var::parameter(NdArray::zeros(&[2]));
        let momentum = quadratic_converges(Sgd::new(vec![w2.clone()], 0.01, 0.9), w2, target, 50);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let w = Var::parameter(NdArray::zeros(&[4]));
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        let opt = AdamW::new(vec![w.clone()], 0.05, 0.0);
        let err = quadratic_converges(opt, w, target, 300);
        assert!(err < 1e-2, "err {err}");
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        // With zero gradient signal, weight decay alone should shrink the weights.
        let w = Var::parameter(NdArray::full(&[4], 10.0));
        let mut opt = AdamW::new(vec![w.clone()], 0.1, 0.5);
        for _ in 0..10 {
            opt.zero_grad();
            // loss independent of w: gradient is 0 but a grad entry must exist for the step
            let loss = w.mul(&Var::constant(NdArray::zeros(&[4]))).sum_all();
            loss.backward();
            opt.step();
        }
        assert!(w.to_array().as_slice().iter().all(|&x| x < 10.0 && x > 0.0));
        assert_eq!(opt.steps(), 10);
    }

    #[test]
    fn skips_params_without_gradients() {
        let used = Var::parameter(NdArray::ones(&[2]));
        let unused = Var::parameter(NdArray::ones(&[2]));
        let mut opt = Sgd::new(vec![used.clone(), unused.clone()], 0.5, 0.0);
        opt.zero_grad();
        used.scale(2.0).sum_all().backward();
        opt.step();
        assert_eq!(unused.to_array().as_slice(), &[1.0, 1.0]);
        assert_ne!(used.to_array().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn clip_grad_norm_bounds_global_norm() {
        let a = Var::parameter(NdArray::ones(&[2]));
        let b = Var::parameter(NdArray::ones(&[2]));
        a.scale(3.0).sum_all().backward();
        b.scale(4.0).sum_all().backward();
        // grads: [3,3] and [4,4]; global norm = sqrt(9+9+16+16) = sqrt(50)
        let pre = clip_grad_norm(&[a.clone(), b.clone()], 1.0);
        assert!((pre - 50.0f32.sqrt()).abs() < 1e-4);
        let mut total = 0.0;
        for p in [&a, &b] {
            total += p.grad().unwrap().sq_norm();
        }
        assert!((total.sqrt() - 1.0).abs() < 1e-4);
    }
}
