//! The reverse-mode automatic-differentiation engine.
//!
//! A [`Var`] is a cheaply clonable handle (an `Rc`) to a node in a dynamically built
//! computation graph. Every operation on `Var`s records its inputs and a backward closure;
//! calling [`Var::backward`] performs a topological sweep and accumulates gradients into
//! every node with `requires_grad == true`.
//!
//! The engine is single-threaded by design (training loops in this workspace parallelise
//! *inside* tensor kernels, not across graph nodes), which keeps the implementation small
//! and easy to audit.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use rita_tensor::NdArray;

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Returns whether gradient recording is currently enabled on this thread.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// Runs a closure with gradient recording disabled (inference / evaluation mode).
///
/// Operations executed inside the closure produce leaf `Var`s that carry no graph edges,
/// so large evaluation batches do not retain activation memory.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    GRAD_ENABLED.with(|g| {
        let prev = g.get();
        g.set(false);
        let out = f();
        g.set(prev);
        out
    })
}

/// Gradient function: given the gradient flowing into a node and the node's parents,
/// produce one gradient per parent (same shapes as the parents' values).
pub(crate) type BackwardFn = Box<dyn Fn(&NdArray, &[Var]) -> Vec<NdArray>>;

pub(crate) struct VarNode {
    pub(crate) id: usize,
    pub(crate) value: RefCell<NdArray>,
    pub(crate) grad: RefCell<Option<NdArray>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Var>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A node in the autograd graph: a value, an optional gradient, and the recipe for
/// propagating gradients to its parents.
#[derive(Clone)]
pub struct Var(pub(crate) Rc<VarNode>);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &self.shape())
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Var {
    /// Creates a constant (no gradient) from an array.
    pub fn constant(value: NdArray) -> Self {
        Self::leaf(value, false)
    }

    /// Creates a trainable parameter (gradient accumulated on backward).
    pub fn parameter(value: NdArray) -> Self {
        Self::leaf(value, true)
    }

    /// Creates a leaf node.
    pub fn leaf(value: NdArray, requires_grad: bool) -> Self {
        Var(Rc::new(VarNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Creates a scalar constant.
    pub fn scalar(value: f32) -> Self {
        Self::constant(NdArray::scalar(value))
    }

    /// Internal constructor for op results.
    pub(crate) fn from_op(value: NdArray, parents: Vec<Var>, backward: BackwardFn) -> Self {
        let grad_enabled = is_grad_enabled();
        let requires_grad = grad_enabled && parents.iter().any(|p| p.0.requires_grad);
        if !requires_grad {
            return Self::leaf(value, false);
        }
        Var(Rc::new(VarNode {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward: Some(backward),
        }))
    }

    /// Unique node id (useful for debugging graphs).
    pub fn id(&self) -> usize {
        self.0.id
    }

    /// Whether this node accumulates a gradient.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrow the value.
    pub fn value(&self) -> Ref<'_, NdArray> {
        self.0.value.borrow()
    }

    /// Clones the value out of the node.
    pub fn to_array(&self) -> NdArray {
        self.0.value.borrow().clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.0.value.borrow().shape().to_vec()
    }

    /// Number of elements in the value.
    pub fn len(&self) -> usize {
        self.0.value.borrow().len()
    }

    /// `true` if the value holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar value of a single-element node.
    pub fn item(&self) -> f32 {
        self.0.value.borrow().item()
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Replaces the accumulated gradient wholesale (gradient clipping, manual seeding).
    /// Unlike the accumulation performed by [`Var::backward`], this overwrites whatever
    /// was stored; pass `None` to clear (equivalent to [`Var::zero_grad`]).
    pub fn set_grad(&self, grad: Option<NdArray>) {
        if let Some(g) = &grad {
            debug_assert_eq!(g.shape(), self.0.value.borrow().shape(), "set_grad shape mismatch");
        }
        *self.0.grad.borrow_mut() = grad;
    }

    /// Replaces the value in place (used by optimisers; does not touch the graph).
    pub fn set_value(&self, value: NdArray) {
        *self.0.value.borrow_mut() = value;
    }

    /// Applies an in-place update `f(&mut value)` (used by optimisers).
    pub fn update_value(&self, f: impl FnOnce(&mut NdArray)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// Returns a new leaf that shares this node's current value but is detached from the
    /// graph (no gradient will flow through it).
    pub fn detach(&self) -> Var {
        Var::leaf(self.to_array(), false)
    }

    /// Runs reverse-mode differentiation from this node.
    ///
    /// The node must hold a single element (a scalar loss). Gradients are *accumulated*
    /// into every reachable node with `requires_grad`; call [`Var::zero_grad`] (or
    /// `Optimizer::zero_grad`) between steps.
    pub fn backward(&self) {
        let seed = NdArray::ones(self.0.value.borrow().shape());
        assert_eq!(
            seed.len(),
            1,
            "backward() requires a scalar output, got shape {:?}",
            self.shape()
        );
        self.backward_with(seed);
    }

    /// Runs reverse-mode differentiation seeding the output gradient with `seed`
    /// (must match this node's shape). Useful for Jacobian-vector products in tests.
    pub fn backward_with(&self, seed: NdArray) {
        assert_eq!(seed.shape(), self.0.value.borrow().shape(), "backward seed shape mismatch");
        // Topological order via iterative post-order DFS.
        let order = topo_order(self);

        // Seed this node.
        accumulate(self, &seed);

        // Propagate in reverse topological order.
        for node in order.iter().rev() {
            if node.0.backward.is_none() {
                continue;
            }
            let grad_out = match node.0.grad.borrow().clone() {
                Some(g) => g,
                None => continue, // no gradient reached this node
            };
            let backward = node.0.backward.as_ref().expect("checked above");
            let parent_grads = backward(&grad_out, &node.0.parents);
            debug_assert_eq!(parent_grads.len(), node.0.parents.len());
            for (parent, pgrad) in node.0.parents.iter().zip(parent_grads) {
                if parent.0.requires_grad {
                    debug_assert_eq!(
                        pgrad.shape(),
                        parent.0.value.borrow().shape(),
                        "backward produced gradient with wrong shape"
                    );
                    accumulate(parent, &pgrad);
                }
            }
            // Free intermediate gradients (non-leaf nodes won't be read again).
            if node.0.backward.is_some() && node.0.id != self.0.id {
                *node.0.grad.borrow_mut() = None;
            }
        }
    }
}

fn accumulate(node: &Var, grad: &NdArray) {
    let mut slot = node.0.grad.borrow_mut();
    match slot.as_mut() {
        Some(existing) => {
            // add_assign is stride-aware in `grad` and copy-on-write in `existing`, so a
            // gradient that is a view aliasing some forward value is accumulated safely.
            existing.add_assign(grad).expect("gradient accumulation shape mismatch");
        }
        // Store gradients contiguously: optimisers and user code read them with
        // as_slice(), and views produced by backward closures (permute/transpose of the
        // output gradient) may alias graph intermediates we do not want to retain.
        None => *slot = Some(grad.materialize()),
    }
}

/// Iterative post-order DFS producing a topological ordering of the graph rooted at `root`
/// (parents appear before children in the returned vector).
fn topo_order(root: &Var) -> Vec<Var> {
    let mut order = Vec::new();
    let mut visited: HashSet<usize> = HashSet::new();
    // stack of (node, parents_pushed)
    let mut stack: Vec<(Var, bool)> = vec![(root.clone(), false)];
    while let Some((node, expanded)) = stack.pop() {
        if expanded {
            order.push(node);
            continue;
        }
        if visited.contains(&node.0.id) {
            continue;
        }
        visited.insert(node.0.id);
        stack.push((node.clone(), true));
        for p in &node.0.parents {
            if !visited.contains(&p.0.id) && p.0.requires_grad {
                stack.push((p.clone(), false));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_properties() {
        let c = Var::constant(NdArray::ones(&[2, 2]));
        assert!(!c.requires_grad());
        let p = Var::parameter(NdArray::ones(&[2, 2]));
        assert!(p.requires_grad());
        assert_eq!(p.shape(), vec![2, 2]);
        assert_eq!(p.len(), 4);
        assert!(p.grad().is_none());
    }

    #[test]
    fn backward_through_simple_chain() {
        // y = sum(2 * x) => dy/dx = 2 everywhere
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0, 3.0]));
        let y = x.scale(2.0).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_accumulates_across_backward_calls() {
        let x = Var::parameter(NdArray::from_slice(&[1.0]));
        let y = x.scale(3.0).sum_all();
        y.backward();
        let y2 = x.scale(3.0).sum_all();
        y2.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[6.0]);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = sum(x*x + x) ; dy/dx = 2x + 1
        let x = Var::parameter(NdArray::from_slice(&[2.0, -1.0]));
        let y = x.mul(&x).add(&x).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[5.0, -1.0]);
    }

    #[test]
    fn no_grad_skips_graph_construction() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        let y = no_grad(|| x.scale(2.0).sum_all());
        assert!(!y.requires_grad());
        assert!(is_grad_enabled());
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::parameter(NdArray::from_slice(&[3.0]));
        let y = x.detach().scale(2.0).sum_all();
        // Graph is disconnected from x; backward on a no-grad output is a no-op.
        if y.requires_grad() {
            y.backward();
        }
        assert!(x.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let x = Var::parameter(NdArray::ones(&[2]));
        let y = x.scale(1.0);
        y.backward();
    }

    #[test]
    fn set_grad_overwrites_and_clears() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        x.scale(2.0).sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[2.0, 2.0]);
        x.set_grad(Some(NdArray::from_slice(&[5.0, -1.0])));
        assert_eq!(x.grad().unwrap().as_slice(), &[5.0, -1.0]);
        x.set_grad(None);
        assert!(x.grad().is_none());
        // Subsequent backward accumulates from the cleared slot, not the overwritten one.
        x.scale(3.0).sum_all().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn backward_with_seed() {
        let x = Var::parameter(NdArray::from_slice(&[1.0, 2.0]));
        let y = x.scale(4.0);
        y.backward_with(NdArray::from_slice(&[1.0, 0.5]));
        assert_eq!(x.grad().unwrap().as_slice(), &[4.0, 2.0]);
    }
}
