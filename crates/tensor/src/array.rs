use crate::{Result, TensorError};

/// A dense, row-major, contiguous `f32` n-dimensional array.
///
/// `NdArray` is the value type that every higher layer of the RITA stack builds on. It is
/// intentionally simple: a shape and a `Vec<f32>`; all views are materialised. This keeps
/// aliasing rules trivial (important for the autograd layer) at the cost of some copies,
/// which profiling on the RITA workloads showed to be dominated by matmul anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    pub(crate) shape: Vec<usize>,
    pub(crate) data: Vec<f32>,
}

impl NdArray {
    // ---------------------------------------------------------------- constructors

    /// Creates an array from a flat buffer and a shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch { shape: shape.to_vec(), data_len: data.len() });
        }
        Ok(Self { shape: shape.to_vec(), data })
    }

    /// Creates a scalar (rank-0) array.
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![], data: vec![value] }
    }

    /// Creates an array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Creates an array of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates an array of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut a = Self::zeros(&[n, n]);
        for i in 0..n {
            a.data[i * n + i] = 1.0;
        }
        a
    }

    /// Creates a 1-D array from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self { shape: vec![data.len()], data: data.to_vec() }
    }

    /// Creates a 1-D array of evenly spaced values `[start, start + step, ...)` of length `n`.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Self { shape: vec![n], data }
    }

    // ---------------------------------------------------------------- accessors

    /// The shape of the array.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat, row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat, row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the array and returns the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The value of a rank-0 or single-element array.
    pub fn item(&self) -> f32 {
        debug_assert_eq!(self.data.len(), 1, "item() called on array with {} elements", self.data.len());
        self.data[0]
    }

    /// Row-major strides of the array.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.shape.len()];
        let mut acc = 1usize;
        for (i, &d) in self.shape.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Value at a multi-dimensional index. Panics (debug) on rank mismatch; returns an
    /// error on out-of-bounds indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.flat_index(index)?])
    }

    /// Sets the value at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    pub(crate) fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::InvalidArgument(format!(
                "index rank {} does not match array rank {}",
                index.len(),
                self.shape.len()
            )));
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(self.shape.iter()).zip(strides.iter()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    // ---------------------------------------------------------------- simple maps

    /// Applies `f` to every element, returning a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self) -> Self {
        self.map(f32::tanh)
    }

    /// Elementwise power with an integer exponent.
    pub fn powi(&self, n: i32) -> Self {
        self.map(|x| x.powi(n))
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// `true` when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Squared Euclidean (Frobenius) norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.ndim(), 2);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(&[1, 2]).unwrap(), 6.0);
        assert_eq!(a.strides(), vec![3, 1]);

        let z = NdArray::zeros(&[3, 3]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = NdArray::ones(&[4]);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));

        let e = NdArray::eye(3);
        assert_eq!(e.get(&[1, 1]).unwrap(), 1.0);
        assert_eq!(e.get(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_rejects_mismatch() {
        assert!(matches!(
            NdArray::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn index_out_of_bounds() {
        let a = NdArray::zeros(&[2, 2]);
        assert!(matches!(a.get(&[2, 0]), Err(TensorError::IndexOutOfBounds { .. })));
        assert!(a.get(&[0]).is_err());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut a = NdArray::zeros(&[2, 3, 4]);
        a.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 7.5);
        assert_eq!(a.as_slice()[1 * 12 + 2 * 4 + 3], 7.5);
    }

    #[test]
    fn scalar_and_item() {
        let s = NdArray::scalar(3.25);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 3.25);
    }

    #[test]
    fn arange_and_maps() {
        let a = NdArray::arange(0.0, 0.5, 5);
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.add_scalar(1.0).as_slice()[0], 1.0);
        let b = NdArray::from_slice(&[-1.0, 4.0]);
        assert_eq!(b.abs().as_slice(), &[1.0, 4.0]);
        assert_eq!(b.powi(2).as_slice(), &[1.0, 16.0]);
        assert_eq!(b.clamp(0.0, 2.0).as_slice(), &[0.0, 2.0]);
        assert!((b.sq_norm() - 17.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = NdArray::ones(&[3]);
        assert!(!a.has_non_finite());
        a.set(&[1], f32::NAN).unwrap();
        assert!(a.has_non_finite());
    }
}
