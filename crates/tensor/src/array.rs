use std::sync::Arc;

use crate::{Result, TensorError};

/// A dense, row-major-by-default `f32` n-dimensional array with shared-buffer views.
///
/// `NdArray` is the value type that every higher layer of the RITA stack builds on. Since
/// the zero-copy refactor it is a *view*: an [`Arc`]-shared flat buffer plus
/// `(shape, strides, offset)` metadata. Shape operations — `reshape` on contiguous data,
/// `permute`, `transpose_last2`, `slice_axis`, `index_axis0`, `squeeze` / `unsqueeze`,
/// `broadcast_to` — are O(1) metadata edits that alias the same storage; compute kernels
/// are stride-aware and only compact (`materialize`) when they need contiguity.
///
/// Mutation goes through copy-on-write: `as_mut_slice`, `set` and the in-place update
/// helpers first ensure the storage is uniquely owned and contiguous, so aliased views
/// are never observably mutated through another handle.
#[derive(Clone)]
pub struct NdArray {
    pub(crate) storage: Arc<Vec<f32>>,
    pub(crate) shape: Vec<usize>,
    pub(crate) strides: Vec<usize>,
    pub(crate) offset: usize,
}

/// Row-major (C-order) strides for `shape`.
pub(crate) fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for (i, &d) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= d;
    }
    strides
}

/// Advances a multi-index by one step in C order, updating `offset` by stride deltas
/// (the shared carry loop of [`OffsetIter`] and [`LaneIter`]).
#[inline]
fn advance_index(shape: &[usize], strides: &[usize], index: &mut [usize], offset: &mut usize) {
    for d in (0..shape.len()).rev() {
        index[d] += 1;
        if index[d] < shape[d] {
            *offset += strides[d];
            return;
        }
        index[d] = 0;
        *offset -= strides[d] * (shape[d] - 1);
    }
}

/// Iterator over the storage offsets of a view's elements in logical (C) order.
///
/// Amortised O(1) per element: the multi-index is advanced incrementally and the offset
/// updated by stride deltas, never recomputed from scratch.
pub(crate) struct OffsetIter<'a> {
    shape: &'a [usize],
    strides: &'a [usize],
    index: Vec<usize>,
    offset: usize,
    remaining: usize,
}

impl<'a> OffsetIter<'a> {
    pub(crate) fn new(shape: &'a [usize], strides: &'a [usize], offset: usize) -> Self {
        let remaining = shape.iter().product();
        Self { shape, strides, index: vec![0; shape.len()], offset, remaining }
    }
}

impl Iterator for OffsetIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.offset;
        self.remaining -= 1;
        advance_index(self.shape, self.strides, &mut self.index, &mut self.offset);
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Iterator over the `(base_offset, lane_length, lane_stride)` of every 1-D lane along
/// one axis of a view, in C-order of the remaining axes.
///
/// This is what makes reductions and softmax run directly on strided views: each lane is
/// walked with a single stride, and the enumeration order of lanes matches the contiguous
/// layout of the reduced output.
pub(crate) struct LaneIter {
    rest_shape: Vec<usize>,
    rest_strides: Vec<usize>,
    index: Vec<usize>,
    offset: usize,
    remaining: usize,
    pub(crate) lane_len: usize,
    pub(crate) lane_stride: usize,
}

impl LaneIter {
    pub(crate) fn new(a: &NdArray, axis: usize) -> Self {
        debug_assert!(axis < a.shape.len());
        let mut rest_shape = a.shape.clone();
        let mut rest_strides = a.strides.clone();
        let lane_len = rest_shape.remove(axis);
        let lane_stride = rest_strides.remove(axis);
        let remaining = rest_shape.iter().product::<usize>();
        Self {
            index: vec![0; rest_shape.len()],
            rest_shape,
            rest_strides,
            offset: a.offset,
            remaining,
            lane_len,
            lane_stride,
        }
    }
}

impl Iterator for LaneIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.offset;
        self.remaining -= 1;
        advance_index(&self.rest_shape, &self.rest_strides, &mut self.index, &mut self.offset);
        Some(current)
    }
}

impl NdArray {
    // ---------------------------------------------------------------- constructors

    /// Internal constructor wrapping a freshly built buffer (no validation).
    pub(crate) fn from_buffer(data: Vec<f32>, shape: &[usize]) -> Self {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>());
        Self {
            storage: Arc::new(data),
            strides: contiguous_strides(shape),
            shape: shape.to_vec(),
            offset: 0,
        }
    }

    /// Internal constructor for a view over existing storage (no validation).
    pub(crate) fn view(
        storage: Arc<Vec<f32>>,
        shape: Vec<usize>,
        strides: Vec<usize>,
        offset: usize,
    ) -> Self {
        Self { storage, shape, strides, offset }
    }

    /// Creates an array from a flat buffer and a shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Self::from_buffer(data, shape))
    }

    /// Creates a scalar (rank-0) array.
    pub fn scalar(value: f32) -> Self {
        Self::from_buffer(vec![value], &[])
    }

    /// Creates an array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self::from_buffer(vec![value; n], shape)
    }

    /// Creates an array of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates an array of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self::from_buffer(data, &[n, n])
    }

    /// Creates a 1-D array from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self::from_buffer(data.to_vec(), &[data.len()])
    }

    /// Creates a 1-D array of evenly spaced values `[start, start + step, ...)` of length `n`.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Self::from_buffer(data, &[n])
    }

    // ---------------------------------------------------------------- view metadata

    /// The shape of the array.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of (logical) elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element strides of this view (in units of `f32`, 0 for broadcast dimensions).
    pub fn strides(&self) -> Vec<usize> {
        self.strides.clone()
    }

    /// Offset of the first logical element into the shared storage.
    pub fn storage_offset(&self) -> usize {
        self.offset
    }

    /// `true` when the view's elements are laid out contiguously in row-major order
    /// starting at `storage_offset()` (size-1 dimensions may carry any stride).
    pub fn is_contiguous(&self) -> bool {
        let mut acc = 1usize;
        for (&d, &s) in self.shape.iter().zip(self.strides.iter()).rev() {
            if d == 0 {
                return true; // empty arrays are trivially contiguous
            }
            if d != 1 {
                if s != acc {
                    return false;
                }
                acc *= d;
            }
        }
        true
    }

    /// An opaque identifier of the underlying storage buffer: two arrays with equal ids
    /// alias the same allocation. Used by the zero-copy regression tests.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.storage) as usize
    }

    /// `true` when `self` and `other` share one storage allocation (`Arc::ptr_eq`).
    pub fn shares_storage(&self, other: &NdArray) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Returns a contiguous array with the same logical contents.
    ///
    /// Cheap (an `Arc` clone of the metadata) when the view is already contiguous;
    /// otherwise the elements are compacted into a fresh buffer. This is the single
    /// choke-point kernels use when they require contiguity.
    pub fn materialize(&self) -> NdArray {
        if self.is_contiguous() {
            return self.clone();
        }
        let mut data = Vec::with_capacity(self.len());
        for off in self.offsets() {
            data.push(self.storage[off]);
        }
        NdArray::from_buffer(data, &self.shape)
    }

    /// Iterator over storage offsets of elements in logical order.
    pub(crate) fn offsets(&self) -> OffsetIter<'_> {
        OffsetIter::new(&self.shape, &self.strides, self.offset)
    }

    /// Iterator over the contiguous trailing-dimension lanes ("rows") of the view, in
    /// logical order. Requires `stride[-1] == 1` (or a trailing dimension of size ≤ 1);
    /// use [`NdArray::with_contiguous_rows`] first for arbitrary views.
    ///
    /// This is how stride-aware consumers (k-means grouping, per-row statistics) read a
    /// head-split or sliced tensor without any copy.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        assert!(self.ndim() >= 1, "rows() requires rank >= 1");
        let last = self.ndim() - 1;
        let len = self.shape[last];
        assert!(
            len <= 1 || self.strides[last] == 1,
            "rows() requires a contiguous trailing dimension (strides {:?})",
            self.strides
        );
        LaneIter::new(self, last).map(move |base| &self.storage[base..base + len])
    }

    /// Contiguous row `i` of a 2-D view whose trailing dimension is contiguous.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D array");
        let (n, d) = (self.shape[0], self.shape[1]);
        assert!(i < n, "row {i} out of bounds for {n} rows");
        assert!(
            d <= 1 || self.strides[1] == 1,
            "row() requires a contiguous trailing dimension (strides {:?})",
            self.strides
        );
        let base = self.offset + i * self.strides[0];
        &self.storage[base..base + d]
    }

    /// Returns an equivalent array whose trailing dimension is contiguous: `self` (cheap
    /// clone) when it already is, otherwise a compacted copy.
    pub fn with_contiguous_rows(&self) -> NdArray {
        if self.ndim() == 0 {
            return self.clone();
        }
        let last = self.ndim() - 1;
        if self.shape[last] <= 1 || self.strides[last] == 1 {
            self.clone()
        } else {
            self.materialize()
        }
    }

    /// Iterator over element values in logical order.
    pub(crate) fn values(&self) -> impl Iterator<Item = f32> + '_ {
        self.offsets().map(move |o| self.storage[o])
    }

    /// Makes the storage uniquely owned and the layout contiguous, compacting if needed.
    /// Every in-place mutation funnels through here, which is what gives views
    /// copy-on-write semantics.
    pub(crate) fn ensure_unique_contiguous(&mut self) {
        if !self.is_contiguous() {
            *self = self.compact();
            return;
        }
        if Arc::get_mut(&mut self.storage).is_none() {
            *self = self.compact();
        }
    }

    /// Unconditionally copies the logical contents into a fresh, uniquely owned buffer.
    fn compact(&self) -> NdArray {
        let mut data = Vec::with_capacity(self.len());
        if self.is_contiguous() {
            data.extend_from_slice(&self.storage[self.offset..self.offset + self.len()]);
        } else {
            for off in self.offsets() {
                data.push(self.storage[off]);
            }
        }
        NdArray::from_buffer(data, &self.shape)
    }

    // ---------------------------------------------------------------- accessors

    /// Immutable view of the flat, row-major buffer.
    ///
    /// # Panics
    /// Panics when the view is not contiguous; call [`NdArray::materialize`] first for
    /// arbitrary views.
    pub fn as_slice(&self) -> &[f32] {
        assert!(
            self.is_contiguous(),
            "as_slice() on a non-contiguous view (shape {:?}, strides {:?}); materialize() first",
            self.shape,
            self.strides
        );
        &self.storage[self.offset..self.offset + self.len()]
    }

    /// Mutable view of the flat, row-major buffer (copy-on-write: compacts the view and
    /// unshares the storage first when necessary).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.ensure_unique_contiguous();
        let (offset, len) = (self.offset, self.len());
        let storage = Arc::get_mut(&mut self.storage).expect("storage unique after CoW");
        &mut storage[offset..offset + len]
    }

    /// Consumes the array and returns the flat buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        self.ensure_unique_contiguous();
        if self.offset == 0 && self.len() == self.storage.len() {
            match Arc::try_unwrap(self.storage) {
                Ok(v) => v,
                Err(arc) => arc[..].to_vec(),
            }
        } else {
            self.storage[self.offset..self.offset + self.len()].to_vec()
        }
    }

    /// The value of a rank-0 or single-element array.
    pub fn item(&self) -> f32 {
        debug_assert_eq!(self.len(), 1, "item() called on array with {} elements", self.len());
        self.storage[self.offset]
    }

    /// Value at a multi-dimensional index. Panics (debug) on rank mismatch; returns an
    /// error on out-of-bounds indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.storage[self.flat_offset(index)?])
    }

    /// Sets the value at a multi-dimensional index (copy-on-write).
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        // Validate the index against the *current* layout before any compaction.
        self.flat_offset(index)?;
        self.ensure_unique_contiguous();
        let flat = self.flat_offset(index)?;
        let storage = Arc::get_mut(&mut self.storage).expect("storage unique after CoW");
        storage[flat] = value;
        Ok(())
    }

    /// Storage offset of a multi-dimensional index in this view.
    pub(crate) fn flat_offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::InvalidArgument(format!(
                "index rank {} does not match array rank {}",
                index.len(),
                self.shape.len()
            )));
        }
        let mut flat = self.offset;
        for ((&i, &d), &s) in index.iter().zip(self.shape.iter()).zip(self.strides.iter()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    // ---------------------------------------------------------------- simple maps

    /// Applies `f` to every element, returning a new (contiguous) array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = crate::pool::alloc_for_extend(self.len());
        if self.is_contiguous() {
            data.extend(self.storage[self.offset..self.offset + self.len()].iter().map(|&x| f(x)));
        } else {
            data.extend(self.values().map(&f));
        }
        Self::from_buffer(data, &self.shape)
    }

    /// Applies `f` to every element in place (copy-on-write).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self) -> Self {
        self.map(f32::tanh)
    }

    /// Elementwise power with an integer exponent.
    pub fn powi(&self, n: i32) -> Self {
        self.map(|x| x.powi(n))
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// `true` when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        if self.is_contiguous() {
            return self.storage[self.offset..self.offset + self.len()]
                .iter()
                .any(|x| !x.is_finite());
        }
        self.values().any(|x| !x.is_finite())
    }

    /// Squared Euclidean (Frobenius) norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        if self.is_contiguous() {
            return self.storage[self.offset..self.offset + self.len()]
                .iter()
                .map(|&x| x * x)
                .sum();
        }
        self.values().map(|x| x * x).sum()
    }

    /// Euclidean norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }
}

impl PartialEq for NdArray {
    /// Logical equality: same shape and elementwise-equal values, regardless of layout
    /// (a permuted view equals its materialised copy).
    fn eq(&self, other: &NdArray) -> bool {
        self.shape == other.shape && self.values().zip(other.values()).all(|(a, b)| a == b)
    }
}

impl std::fmt::Debug for NdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NdArray")
            .field("shape", &self.shape)
            .field("strides", &self.strides)
            .field("offset", &self.offset)
            .field("data", &self.values().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.ndim(), 2);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(&[1, 2]).unwrap(), 6.0);
        assert_eq!(a.strides(), vec![3, 1]);

        let z = NdArray::zeros(&[3, 3]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = NdArray::ones(&[4]);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));

        let e = NdArray::eye(3);
        assert_eq!(e.get(&[1, 1]).unwrap(), 1.0);
        assert_eq!(e.get(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_rejects_mismatch() {
        assert!(matches!(
            NdArray::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn index_out_of_bounds() {
        let a = NdArray::zeros(&[2, 2]);
        assert!(matches!(a.get(&[2, 0]), Err(TensorError::IndexOutOfBounds { .. })));
        assert!(a.get(&[0]).is_err());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut a = NdArray::zeros(&[2, 3, 4]);
        a.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 7.5);
        assert_eq!(a.as_slice()[12 + 2 * 4 + 3], 7.5);
    }

    #[test]
    fn scalar_and_item() {
        let s = NdArray::scalar(3.25);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 3.25);
    }

    #[test]
    fn arange_and_maps() {
        let a = NdArray::arange(0.0, 0.5, 5);
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.add_scalar(1.0).as_slice()[0], 1.0);
        let b = NdArray::from_slice(&[-1.0, 4.0]);
        assert_eq!(b.abs().as_slice(), &[1.0, 4.0]);
        assert_eq!(b.powi(2).as_slice(), &[1.0, 16.0]);
        assert_eq!(b.clamp(0.0, 2.0).as_slice(), &[0.0, 2.0]);
        assert!((b.sq_norm() - 17.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = NdArray::ones(&[3]);
        assert!(!a.has_non_finite());
        a.set(&[1], f32::NAN).unwrap();
        assert!(a.has_non_finite());
    }

    #[test]
    fn clone_shares_storage_and_set_copies_on_write() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut b = a.clone();
        assert!(a.shares_storage(&b));
        b.set(&[0, 0], 9.0).unwrap();
        // The write detached b; a is untouched.
        assert!(!a.shares_storage(&b));
        assert_eq!(a.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(b.get(&[0, 0]).unwrap(), 9.0);
    }

    #[test]
    fn materialize_is_cheap_for_contiguous_views() {
        let a = NdArray::arange(0.0, 1.0, 6);
        let m = a.materialize();
        assert!(a.shares_storage(&m), "contiguous materialize must not copy");
    }

    #[test]
    fn map_on_strided_view_matches_contiguous() {
        let a = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let t = a.transpose_last2().unwrap();
        assert_eq!(t.map(|x| x * 2.0), t.materialize().map(|x| x * 2.0));
    }

    #[test]
    fn as_mut_slice_compacts_strided_views() {
        let a = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let mut t = a.transpose_last2().unwrap();
        assert!(!t.is_contiguous());
        let before = t.materialize();
        t.as_mut_slice()[0] += 0.0;
        assert!(t.is_contiguous());
        assert_eq!(t, before);
        // a is unaffected by the compaction.
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn as_slice_panics_on_strided_view() {
        let a = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let _ = a.transpose_last2().unwrap().as_slice();
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let a = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let t = a.transpose_last2().unwrap();
        assert_eq!(t, t.materialize());
        assert_ne!(a, t.materialize()); // different shapes
    }
}
