//! `bf16` — brain-float storage for memory-bound operands.
//!
//! A `bf16` value is the upper 16 bits of an IEEE-754 `f32`: same 8-bit exponent,
//! mantissa truncated from 23 to 7 bits. That makes conversion a shift (widening) or a
//! shift plus a rounding add (narrowing) — cheap enough to run inside a packing loop or
//! a micro-kernel without touching the FPU. The fused-attention tiles use it as a
//! *storage* format for K/V panels: operands live in memory at 2 bytes/element and are
//! widened to `f32` in registers, so every arithmetic result (softmax statistics,
//! accumulators) stays full precision — the policy the numerics section of DESIGN.md
//! pins down.
//!
//! Narrowing uses **round-to-nearest-even** (RNE), the IEEE default: the discarded
//! 16 bits round the kept mantissa up when they exceed half an ulp, and break exact
//! ties toward the even representation. NaNs are quietened rather than rounded — a NaN
//! whose payload lives entirely in the discarded bits must not collapse to infinity.

/// Narrows `x` to bf16 with round-to-nearest-even. NaN inputs stay NaN (the quiet bit
/// is forced so a payload living only in the low mantissa bits cannot produce an
/// infinity); everything else — normals, subnormals, zeros, infinities — rounds as
/// IEEE RNE on the 16 discarded bits.
#[inline(always)]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep sign + exponent + top mantissa bits, force a mantissa bit so the
        // result is still NaN even when the payload was entirely in the low bits.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // RNE: add 0x7FFF plus the lowest kept bit; exact halves then carry into the
    // kept mantissa only when it is odd. A mantissa carry that overflows into the
    // exponent is correct too (rounds up to the next binade or to infinity).
    let lsb = (bits >> 16) & 1;
    ((bits + 0x7FFF + lsb) >> 16) as u16
}

/// Widens a bf16 value back to `f32` — exact (bf16 is a subset of f32).
#[inline(always)]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Narrows a whole slice into `dst` (resized to match).
pub fn encode_bf16(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(src.iter().map(|&x| f32_to_bf16(x)));
}

/// Widens a whole slice into `dst` (resized to match).
pub fn decode_bf16(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(src.iter().map(|&b| bf16_to_f32(b)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(x: f32) -> f32 {
        bf16_to_f32(f32_to_bf16(x))
    }

    #[test]
    fn exactly_representable_values_round_trip_bit_exactly() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, -2.0, 1.5, 0.09375, f32::INFINITY] {
            assert_eq!(roundtrip(x).to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(f32_to_bf16(-0.0), 0x8000, "signed zero keeps its sign");
    }

    #[test]
    fn rounds_to_nearest() {
        // 1.0 + 2^-9 sits a quarter of a bf16 ulp above 1.0: rounds down.
        assert_eq!(roundtrip(1.0 + f32::powi(2.0, -9)), 1.0);
        // 1.0 + 3·2^-9 sits three quarters up: rounds to 1.0 + 2^-7.
        assert_eq!(roundtrip(1.0 + 3.0 * f32::powi(2.0, -9)), 1.0 + f32::powi(2.0, -7));
    }

    #[test]
    fn exact_ties_break_to_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 (even mantissa) and 1.0 + 2^-7
        // (odd mantissa): RNE keeps the even one.
        assert_eq!(roundtrip(1.0 + f32::powi(2.0, -8)), 1.0);
        // 1.0 + 2^-7 + 2^-8 is halfway between odd 1.0+2^-7 and even 1.0+2^-6.
        let x = 1.0 + f32::powi(2.0, -7) + f32::powi(2.0, -8);
        assert_eq!(roundtrip(x), 1.0 + f32::powi(2.0, -6));
        // The negative mirror ties the same way (rounding acts on magnitude bits).
        assert_eq!(roundtrip(-(1.0 + f32::powi(2.0, -8))), -1.0);
    }

    #[test]
    fn mantissa_carry_can_ride_into_the_exponent() {
        // The largest f32 below 2.0 rounds up across the binade boundary.
        assert_eq!(roundtrip(1.9999999), 2.0);
        // The largest finite f32 rounds up to infinity (its top mantissa bits are
        // all ones, so RNE carries out of the mantissa and past the max exponent).
        assert_eq!(roundtrip(f32::MAX), f32::INFINITY);
        assert_eq!(roundtrip(-f32::MAX), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_round_like_any_other_bit_pattern() {
        // f32 subnormals have exponent 0; bf16 keeps the top 7 mantissa bits of the
        // subnormal field with the same RNE rule. The smallest f32 subnormal rounds
        // to zero; one with a high mantissa bit set survives as a bf16 subnormal.
        assert_eq!(roundtrip(f32::from_bits(1)), 0.0);
        let sub = f32::from_bits(0x0040_0000); // subnormal, highest mantissa bit set
        assert_eq!(roundtrip(sub).to_bits(), sub.to_bits());
        // Sign of an underflowing negative subnormal is preserved (-0.0).
        assert_eq!(roundtrip(-f32::from_bits(1)).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn nan_payloads_stay_nan() {
        assert!(roundtrip(f32::NAN).is_nan());
        // A signalling-style NaN whose payload is entirely in the discarded low
        // bits must not round to infinity.
        let low_payload_nan = f32::from_bits(0x7F80_0001);
        assert!(low_payload_nan.is_nan());
        assert!(roundtrip(low_payload_nan).is_nan());
        // Sign bit of a NaN is preserved.
        let neg_nan = f32::from_bits(0xFF80_0001);
        assert!(roundtrip(neg_nan).is_nan());
        assert_eq!(roundtrip(neg_nan).to_bits() >> 31, 1);
    }

    #[test]
    fn narrowing_error_is_within_half_an_ulp() {
        // Property sweep: for a spread of magnitudes, |x - bf16(x)| ≤ 2^-8 · |x|
        // (half of the 7-bit mantissa's ulp).
        let mut x = 1.1754944e-38f32; // smallest normal
        while x < 1.0e38 {
            for sign in [1.0f32, -1.0] {
                let v = sign * x * 1.337; // avoid exactly-representable powers of two
                let err = (roundtrip(v) - v).abs();
                assert!(err <= v.abs() * f32::powi(2.0, -8), "{v}: err {err}");
            }
            x *= 7.3;
        }
    }

    #[test]
    fn slice_encode_decode_round_trip() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.37).collect();
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        encode_bf16(&src, &mut enc);
        decode_bf16(&enc, &mut dec);
        for (a, b) in src.iter().zip(&dec) {
            assert!((a - b).abs() <= a.abs() * f32::powi(2.0, -8));
        }
    }
}
