//! NumPy-style broadcasting and elementwise binary operations.
//!
//! All operations here are stride-aware: operands may be arbitrary views (permuted,
//! sliced, broadcast) and are walked through their own strides without compaction.
//! [`NdArray::broadcast_to`] exposes broadcasting itself as an O(1) stride-0 view.

use crate::array::OffsetIter;
use crate::{NdArray, Result, TensorError};

/// Computes the broadcast shape of two shapes following NumPy rules
/// (right-aligned; a dimension of 1 stretches to match the other operand).
pub(crate) fn broadcast_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let ndim = lhs.len().max(rhs.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let l = if i < ndim - lhs.len() { 1 } else { lhs[i - (ndim - lhs.len())] };
        let r = if i < ndim - rhs.len() { 1 } else { rhs[i - (ndim - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Maps a view's own strides into the coordinate system of `out_shape`: missing leading
/// dimensions and size-1 dimensions get stride 0, every other dimension keeps the view's
/// stride, so indexing with the *output* multi-index walks the source correctly.
pub(crate) fn effective_strides(a: &NdArray, out_shape: &[usize]) -> Vec<usize> {
    let offset = out_shape.len() - a.shape.len();
    let mut strides = vec![0usize; out_shape.len()];
    for i in 0..a.shape.len() {
        if a.shape[i] != 1 {
            strides[i + offset] = a.strides[i];
        }
    }
    strides
}

impl NdArray {
    /// Returns a zero-copy view of `self` broadcast to `shape` (stride 0 on stretched
    /// dimensions). Errors when `self`'s shape does not broadcast to `shape`.
    pub fn broadcast_to(&self, shape: &[usize]) -> Result<NdArray> {
        let merged = broadcast_shape(&self.shape, shape)?;
        if merged != shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: shape.to_vec(),
            });
        }
        let strides = effective_strides(self, shape);
        Ok(NdArray::view(self.storage.clone(), shape.to_vec(), strides, self.offset))
    }

    /// Applies an elementwise binary operation with broadcasting.
    pub fn zip_with(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> Result<NdArray> {
        // Fast path: identical shapes, both contiguous.
        if self.shape == other.shape && self.is_contiguous() && other.is_contiguous() {
            let mut data = crate::pool::alloc_for_extend(self.len());
            data.extend(
                self.as_slice().iter().zip(other.as_slice().iter()).map(|(&a, &b)| f(a, b)),
            );
            return NdArray::from_vec(data, &self.shape);
        }
        // Fast path: rhs is a scalar.
        if other.len() == 1 {
            let b = other.item();
            return Ok(self.map(|a| f(a, b)));
        }
        // Fast path: lhs is a scalar.
        if self.len() == 1 {
            let a = self.item();
            return Ok(other.map(|b| f(a, b)));
        }

        // General strided broadcast: walk both operands with output-aligned strides.
        let out_shape = broadcast_shape(&self.shape, &other.shape)?;
        let n: usize = out_shape.iter().product();
        let ls = effective_strides(self, &out_shape);
        let rs = effective_strides(other, &out_shape);
        let mut data = crate::pool::alloc_for_extend(n);
        let liter = OffsetIter::new(&out_shape, &ls, self.offset);
        let riter = OffsetIter::new(&out_shape, &rs, other.offset);
        data.extend(liter.zip(riter).map(|(li, ri)| f(self.storage[li], other.storage[ri])));
        NdArray::from_vec(data, &out_shape)
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, f32::min)
    }

    /// Adds `other` into `self` in place (copy-on-write). Shapes must match exactly;
    /// `other` may be any view.
    pub fn add_assign(&mut self, other: &NdArray) -> Result<()> {
        self.zip_apply(other, |a, b| *a += b)
    }

    /// Adds `scale * other` into `self` in place (axpy, copy-on-write). Shapes must match
    /// exactly; `other` may be any view.
    pub fn axpy(&mut self, scale: f32, other: &NdArray) -> Result<()> {
        self.zip_apply(other, |a, b| *a += scale * b)
    }

    /// Shared implementation of exact-shape in-place updates.
    fn zip_apply(&mut self, other: &NdArray, f: impl Fn(&mut f32, f32)) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        // CoW note: when `self` and `other` alias the same storage, ensure_unique_contiguous
        // (inside as_mut_slice) detaches `self` first, so `other` reads stay consistent.
        if other.is_contiguous() {
            let rhs = other.clone(); // keep `other`'s storage alive across the CoW
            for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
                f(a, b);
            }
        } else {
            let rhs = other.clone();
            let lhs = self.as_mut_slice();
            for (a, off) in lhs.iter_mut().zip(rhs.offsets()) {
                f(a, rhs.storage[off]);
            }
        }
        Ok(())
    }

    /// Reduces (by summation) an array produced under broadcasting back to `target_shape`.
    ///
    /// This is the adjoint of broadcasting and is used by the autograd layer: if a forward
    /// op broadcast `x` from `target_shape` to `self.shape`, then the gradient flowing to
    /// `x` is `grad.reduce_to_shape(target_shape)`.
    pub fn reduce_to_shape(&self, target_shape: &[usize]) -> Result<NdArray> {
        if self.shape == target_shape {
            return Ok(self.clone());
        }
        // Validate that target broadcasts to self.
        let bshape = broadcast_shape(&self.shape, target_shape)?;
        if bshape != self.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: target_shape.to_vec(),
            });
        }
        let out_n: usize = target_shape.iter().product::<usize>().max(1);
        let mut out = vec![0.0f32; out_n];
        // Walk self through its own strides; accumulate into the target through the
        // target's (contiguous) strides aligned to self's shape.
        let own = crate::array::contiguous_strides(target_shape);
        let lead = self.shape.len() - target_shape.len();
        let mut tstrides = vec![0usize; self.shape.len()];
        for i in 0..target_shape.len() {
            if target_shape[i] != 1 {
                tstrides[i + lead] = own[i];
            }
        }
        let titer = OffsetIter::new(&self.shape, &tstrides, 0);
        for (soff, ti) in self.offsets().zip(titer) {
            out[ti] += self.storage[soff];
        }
        NdArray::from_vec(out, target_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shape(&[], &[5]).unwrap(), vec![5]);
        assert!(broadcast_shape(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn add_same_shape_and_scalar() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = NdArray::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        let s = NdArray::scalar(1.0);
        assert_eq!(a.add(&s).unwrap().as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.sub(&a).unwrap().as_slice(), &[0.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    fn suffix_broadcast_bias_add() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = NdArray::from_slice(&[10.0, 20.0, 30.0]);
        let c = a.add(&bias).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn general_broadcast_column_vs_row() {
        // (2,1) * (1,3) -> (2,3) outer product via broadcasting
        let col = NdArray::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let row = NdArray::from_vec(vec![1.0, 10.0, 100.0], &[1, 3]).unwrap();
        let c = col.mul(&row).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[2.0, 20.0, 200.0, 3.0, 30.0, 300.0]);
    }

    #[test]
    fn broadcast_to_is_a_zero_copy_view() {
        let bias = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        let b = bias.broadcast_to(&[4, 3]).unwrap();
        assert_eq!(b.shape(), &[4, 3]);
        assert!(bias.shares_storage(&b));
        assert_eq!(b.get(&[3, 2]).unwrap(), 3.0);
        assert_eq!(b.materialize().as_slice()[..3], [1.0, 2.0, 3.0]);
        assert!(bias.broadcast_to(&[4, 5]).is_err());
    }

    #[test]
    fn zip_with_on_strided_views_matches_materialized() {
        let a = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let t = a.transpose_last2().unwrap(); // (3, 2) view
        let b = NdArray::arange(5.0, -0.5, 6).reshape(&[3, 2]).unwrap();
        let via_view = t.add(&b).unwrap();
        let via_copy = t.materialize().add(&b).unwrap();
        assert_eq!(via_view, via_copy);
    }

    #[test]
    fn division_and_minmax() {
        let a = NdArray::from_slice(&[2.0, 8.0]);
        let b = NdArray::from_slice(&[4.0, 2.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.5, 4.0]);
        assert_eq!(a.maximum(&b).unwrap().as_slice(), &[4.0, 8.0]);
        assert_eq!(a.minimum(&b).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = NdArray::ones(&[3]);
        let b = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.5, 4.0, 5.5]);
        let c = NdArray::ones(&[4]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn add_assign_from_strided_view_and_alias() {
        let base = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let t = base.transpose_last2().unwrap().materialize().transpose_last2().unwrap();
        // t is a non-contiguous view logically equal to base.
        let mut acc = NdArray::zeros(&[2, 3]);
        acc.add_assign(&t).unwrap();
        assert_eq!(acc, base);

        // Self-aliasing: accumulate a view of the same storage into itself.
        let mut x = NdArray::arange(0.0, 1.0, 4).reshape(&[2, 2]).unwrap();
        let alias = x.clone();
        x.add_assign(&alias).unwrap();
        assert_eq!(x.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(alias.as_slice(), &[0.0, 1.0, 2.0, 3.0], "CoW must protect the alias");
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        // Broadcast a bias over rows then reduce back: should sum over rows.
        let g = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let r = g.reduce_to_shape(&[3]).unwrap();
        assert_eq!(r.as_slice(), &[5.0, 7.0, 9.0]);
        let r2 = g.reduce_to_shape(&[2, 1]).unwrap();
        assert_eq!(r2.as_slice(), &[6.0, 15.0]);
        let r3 = g.reduce_to_shape(&[]).unwrap();
        assert_eq!(r3.item(), 21.0);
        // Already matching shape is a no-op clone.
        assert_eq!(g.reduce_to_shape(&[2, 3]).unwrap(), g);
    }

    #[test]
    fn reduce_to_shape_of_strided_view() {
        let g = NdArray::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let t = g.transpose_last2().unwrap(); // (3, 2)
        let r = t.reduce_to_shape(&[2]).unwrap();
        let r_copy = t.materialize().reduce_to_shape(&[2]).unwrap();
        assert_eq!(r, r_copy);
    }

    #[test]
    fn reduce_to_shape_rejects_non_broadcastable() {
        let g = NdArray::zeros(&[2, 3]);
        assert!(g.reduce_to_shape(&[4]).is_err());
    }
}
