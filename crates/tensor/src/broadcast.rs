//! NumPy-style broadcasting and elementwise binary operations.

use crate::{NdArray, Result, TensorError};

/// Computes the broadcast shape of two shapes following NumPy rules
/// (right-aligned; a dimension of 1 stretches to match the other operand).
pub(crate) fn broadcast_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let ndim = lhs.len().max(rhs.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let l = if i < ndim - lhs.len() { 1 } else { lhs[i - (ndim - lhs.len())] };
        let r = if i < ndim - rhs.len() { 1 } else { rhs[i - (ndim - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Row-major strides for `shape`, with stride 0 for broadcast (size-1 or missing) dims so
/// that indexing with the *output* shape walks the source correctly.
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let offset = out_shape.len() - shape.len();
    let mut strides = vec![0usize; out_shape.len()];
    let mut acc = 1usize;
    for i in (0..shape.len()).rev() {
        if shape[i] != 1 {
            strides[i + offset] = acc;
        }
        acc *= shape[i];
    }
    strides
}

impl NdArray {
    /// Applies an elementwise binary operation with broadcasting.
    pub fn zip_with(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> Result<NdArray> {
        // Fast path: identical shapes.
        if self.shape == other.shape {
            let data =
                self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect::<Vec<_>>();
            return NdArray::from_vec(data, &self.shape);
        }
        // Fast path: rhs is a scalar.
        if other.data.len() == 1 {
            let b = other.data[0];
            return NdArray::from_vec(self.data.iter().map(|&a| f(a, b)).collect(), &self.shape);
        }
        // Fast path: lhs is a scalar.
        if self.data.len() == 1 {
            let a = self.data[0];
            return NdArray::from_vec(other.data.iter().map(|&b| f(a, b)).collect(), &other.shape);
        }
        // Fast path: rhs broadcasts over the trailing dimension(s) as a contiguous block,
        // i.e. rhs.shape is a suffix of lhs.shape. Very common: bias adds, per-row scaling.
        if self.shape.len() >= other.shape.len()
            && self.shape[self.shape.len() - other.shape.len()..] == other.shape[..]
        {
            let block = other.data.len();
            let mut data = Vec::with_capacity(self.data.len());
            for (i, &a) in self.data.iter().enumerate() {
                data.push(f(a, other.data[i % block]));
            }
            return NdArray::from_vec(data, &self.shape);
        }

        // General strided broadcast.
        let out_shape = broadcast_shape(&self.shape, &other.shape)?;
        let n: usize = out_shape.iter().product();
        let ls = broadcast_strides(&self.shape, &out_shape);
        let rs = broadcast_strides(&other.shape, &out_shape);
        let mut data = Vec::with_capacity(n);
        let mut index = vec![0usize; out_shape.len()];
        for _ in 0..n {
            let mut li = 0usize;
            let mut ri = 0usize;
            for (d, &idx) in index.iter().enumerate() {
                li += idx * ls[d];
                ri += idx * rs[d];
            }
            data.push(f(self.data[li], other.data[ri]));
            // increment multi-index
            for d in (0..out_shape.len()).rev() {
                index[d] += 1;
                if index[d] < out_shape[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        NdArray::from_vec(data, &out_shape)
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &NdArray) -> Result<NdArray> {
        self.zip_with(other, f32::min)
    }

    /// Adds `other` into `self` in place. Shapes must match exactly.
    pub fn add_assign(&mut self, other: &NdArray) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` in place (axpy). Shapes must match exactly.
    pub fn axpy(&mut self, scale: f32, other: &NdArray) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Reduces (by summation) an array produced under broadcasting back to `target_shape`.
    ///
    /// This is the adjoint of broadcasting and is used by the autograd layer: if a forward
    /// op broadcast `x` from `target_shape` to `self.shape`, then the gradient flowing to
    /// `x` is `grad.reduce_to_shape(target_shape)`.
    pub fn reduce_to_shape(&self, target_shape: &[usize]) -> Result<NdArray> {
        if self.shape == target_shape {
            return Ok(self.clone());
        }
        // Validate that target broadcasts to self.
        let bshape = broadcast_shape(&self.shape, target_shape)?;
        if bshape != self.shape {
            return Err(TensorError::BroadcastMismatch {
                lhs: self.shape.clone(),
                rhs: target_shape.to_vec(),
            });
        }
        let out_n: usize = target_shape.iter().product::<usize>().max(1);
        let mut out = vec![0.0f32; out_n];
        let tstrides = broadcast_strides(target_shape, &self.shape);
        let mut index = vec![0usize; self.shape.len()];
        for &v in &self.data {
            let mut ti = 0usize;
            for (d, &idx) in index.iter().enumerate() {
                ti += idx * tstrides[d];
            }
            out[ti] += v;
            for d in (0..self.shape.len()).rev() {
                index[d] += 1;
                if index[d] < self.shape[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        NdArray::from_vec(out, target_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shape(&[], &[5]).unwrap(), vec![5]);
        assert!(broadcast_shape(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn add_same_shape_and_scalar() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = NdArray::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        let s = NdArray::scalar(1.0);
        assert_eq!(a.add(&s).unwrap().as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.sub(&a).unwrap().as_slice(), &[0.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    fn suffix_broadcast_bias_add() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = NdArray::from_slice(&[10.0, 20.0, 30.0]);
        let c = a.add(&bias).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn general_broadcast_column_vs_row() {
        // (2,1) * (1,3) -> (2,3) outer product via broadcasting
        let col = NdArray::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let row = NdArray::from_vec(vec![1.0, 10.0, 100.0], &[1, 3]).unwrap();
        let c = col.mul(&row).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[2.0, 20.0, 200.0, 3.0, 30.0, 300.0]);
    }

    #[test]
    fn division_and_minmax() {
        let a = NdArray::from_slice(&[2.0, 8.0]);
        let b = NdArray::from_slice(&[4.0, 2.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.5, 4.0]);
        assert_eq!(a.maximum(&b).unwrap().as_slice(), &[4.0, 8.0]);
        assert_eq!(a.minimum(&b).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = NdArray::ones(&[3]);
        let b = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.5, 4.0, 5.5]);
        let c = NdArray::ones(&[4]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        // Broadcast a bias over rows then reduce back: should sum over rows.
        let g = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let r = g.reduce_to_shape(&[3]).unwrap();
        assert_eq!(r.as_slice(), &[5.0, 7.0, 9.0]);
        let r2 = g.reduce_to_shape(&[2, 1]).unwrap();
        assert_eq!(r2.as_slice(), &[6.0, 15.0]);
        let r3 = g.reduce_to_shape(&[]).unwrap();
        assert_eq!(r3.item(), 21.0);
        // Already matching shape is a no-op clone.
        assert_eq!(g.reduce_to_shape(&[2, 3]).unwrap(), g);
    }

    #[test]
    fn reduce_to_shape_rejects_non_broadcastable() {
        let g = NdArray::zeros(&[2, 3]);
        assert!(g.reduce_to_shape(&[4]).is_err());
    }
}
