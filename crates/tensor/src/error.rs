use std::fmt;

/// Errors produced by shape-sensitive tensor operations.
///
/// The library validates shapes eagerly so that a mis-wired model fails with a precise
/// message at the offending operation instead of producing silently wrong numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the provided buffer.
    ShapeDataMismatch {
        /// Shape the caller requested.
        shape: Vec<usize>,
        /// Number of elements in the provided buffer.
        data_len: usize,
    },
    /// Two operands cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// Matrix multiplication inner dimensions disagree, or an operand is not at least 2-D.
    MatmulMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An axis index is out of range for the given rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The operand's rank.
        ndim: usize,
    },
    /// A reshape was requested to a shape with a different number of elements.
    ReshapeMismatch {
        /// Original shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// Concatenation operands disagree on the non-concatenated dimensions.
    ConcatMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// An index is out of bounds along some dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Length of the dimension being indexed.
        len: usize,
    },
    /// Generic invalid-argument error with a description.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} implies {} elements but buffer has {data_len}",
                shape.iter().product::<usize>()
            ),
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {lhs:?} and {rhs:?}")
            }
            TensorError::MatmulMismatch { lhs, rhs } => {
                write!(f, "cannot matrix-multiply shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, ndim } => {
                write!(f, "axis {axis} out of range for rank {ndim}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TensorError::ConcatMismatch { detail } => write!(f, "concat mismatch: {detail}"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of length {len}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::ShapeDataMismatch { shape: vec![2, 3], data_len: 5 };
        assert!(e.to_string().contains("6 elements"));
        let e = TensorError::MatmulMismatch { lhs: vec![2, 3], rhs: vec![4, 5] };
        assert!(e.to_string().contains("[2, 3]"));
        let e = TensorError::InvalidArgument("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
